//! E2 bench: the agent-splitting sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use legion_sim::experiments::e02_agent_load;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_agent_load");
    g.sample_size(10);
    g.bench_function("sweep", |b| {
        b.iter(|| black_box(e02_agent_load::run(1, 23)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
