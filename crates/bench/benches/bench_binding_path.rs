//! E1 bench: warm lookups through the full Fig. 17 path, plus the sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use legion_core::value::LegionValue;
use legion_naming::protocol::GET_BINDING;
use legion_sim::experiments::e01_binding_path;
use legion_sim::system::{agent_loid, LegionSystem, SystemConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_binding_path");
    g.bench_function("warm_agent_lookup", |b| {
        let mut sys = LegionSystem::build(SystemConfig::default());
        let (obj, _) = sys.objects[0];
        let agent = sys.leaf_agent_for(0);
        // Warm the caches once.
        sys.call_for_binding(
            agent.element(),
            agent_loid(0),
            GET_BINDING,
            vec![LegionValue::Loid(obj)],
        )
        .unwrap();
        b.iter(|| {
            black_box(
                sys.call_for_binding(
                    agent.element(),
                    agent_loid(0),
                    GET_BINDING,
                    vec![LegionValue::Loid(obj)],
                )
                .unwrap(),
            )
        });
    });
    g.sample_size(10);
    g.bench_function("full_sweep", |b| {
        b.iter(|| black_box(e01_binding_path::run(1, 13)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
