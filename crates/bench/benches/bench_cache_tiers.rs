//! E3 bench: BindingCache operations and the full cache-tier ablation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use legion_core::address::{ObjectAddress, ObjectAddressElement};
use legion_core::binding::Binding;
use legion_core::loid::Loid;
use legion_core::time::SimTime;
use legion_naming::cache::BindingCache;
use legion_sim::experiments::e03_cache_tiers;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_cache_tiers");
    g.bench_function("cache_insert_get", |b| {
        let mut cache = BindingCache::new(1024);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let loid = Loid::instance(16, i % 2048 + 1);
            cache.insert(Binding::forever(
                loid,
                ObjectAddress::single(ObjectAddressElement::sim(i)),
            ));
            black_box(cache.get(&loid, SimTime::ZERO))
        });
    });
    g.sample_size(10);
    g.bench_function("full_ablation_sweep", |b| {
        b.iter(|| black_box(e03_cache_tiers::run(1, 33)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
