//! E6 bench: model-level clone dispatch and the live cloning sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use legion_core::class::ClassKind;
use legion_core::clone::CloneSet;
use legion_core::model::ObjectModel;
use legion_core::wellknown::LEGION_CLASS;
use legion_sim::experiments::e06_class_cloning;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_class_cloning");
    g.bench_function("cloneset_create", |b| {
        let mut m = ObjectModel::bootstrap();
        let hot = m.derive(LEGION_CLASS, "Hot", ClassKind::NORMAL).unwrap();
        let mut set = CloneSet::new(hot);
        for _ in 0..3 {
            set.grow(&mut m).unwrap();
        }
        b.iter(|| black_box(set.create(&mut m).unwrap()));
    });
    g.sample_size(10);
    g.bench_function("live_sweep", |b| {
        b.iter(|| black_box(e06_class_cloning::run(16, 63)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
