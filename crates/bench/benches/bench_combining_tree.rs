//! E4 bench: forest vs k-ary combining tree.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use legion_sim::experiments::e04_combining_tree;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_combining_tree");
    g.sample_size(10);
    g.bench_function("sweep", |b| {
        b.iter(|| black_box(e04_combining_tree::run(1, 43)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
