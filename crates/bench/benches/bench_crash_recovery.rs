//! E15 bench: crash-recovery availability sweep (heartbeat detection +
//! automatic re-activation, `legion-ha`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use legion_sim::experiments::e15_crash_recovery;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_crash_recovery");
    g.sample_size(10);
    g.bench_function("sweep", |b| {
        b.iter(|| black_box(e15_crash_recovery::run(1, 23)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
