//! E5 bench: responsible-class location vs derivation depth.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use legion_core::metaclass::LegionClassAuthority;
use legion_core::wellknown::LEGION_CLASS;
use legion_sim::experiments::e05_find_class;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_find_class");
    g.bench_function("responsibility_chain", |b| {
        let mut auth = LegionClassAuthority::new();
        let mut cur = LEGION_CLASS;
        for _ in 0..10 {
            let (_, next) = auth.issue_class_id(cur).unwrap();
            cur = next;
        }
        b.iter(|| black_box(auth.responsibility_chain(&cur).unwrap()));
    });
    g.sample_size(10);
    g.bench_function("live_sweep", |b| {
        b.iter(|| black_box(e05_find_class::run(3, 53)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
