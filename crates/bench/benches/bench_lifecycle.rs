//! E7 bench: OPR encode/decode/storage micro-ops and the live lifecycle.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use legion_core::loid::Loid;
use legion_persist::opr::Opr;
use legion_persist::storage::JurisdictionStorage;
use legion_sim::experiments::e07_lifecycle;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_lifecycle");
    let opr = Opr::new(
        Loid::instance(16, 1),
        Loid::class_object(16),
        7,
        vec![0xAB; 4096],
    );
    g.bench_function("opr_encode", |b| b.iter(|| black_box(opr.encode())));
    let bytes = opr.encode();
    g.bench_function("opr_decode_verify", |b| {
        b.iter(|| black_box(Opr::decode(&bytes).unwrap()))
    });
    g.bench_function("storage_roundtrip", |b| {
        let mut s = JurisdictionStorage::new(0, 2, 1 << 30);
        b.iter(|| {
            let addr = s.store_opr(&opr).unwrap();
            let got = s.load_opr(&addr).unwrap();
            s.delete(&addr).unwrap();
            black_box(got)
        });
    });
    g.sample_size(10);
    g.bench_function("live_transitions", |b| {
        b.iter(|| black_box(e07_lifecycle::run(2, 73)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
