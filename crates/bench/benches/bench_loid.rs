//! E9 bench: LOID allocation, responsible-class derivation, parse.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use legion_core::loid::{ClassId, Loid, LoidAllocator};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_loid");
    g.bench_function("allocate", |b| {
        let mut alloc = LoidAllocator::new(ClassId(7));
        b.iter(|| black_box(alloc.next().unwrap()));
    });
    g.bench_function("class_loid", |b| {
        let l = Loid::instance(123, 456);
        b.iter(|| black_box(l.class_loid()));
    });
    g.bench_function("display_parse", |b| {
        let l = Loid::instance(123, 456);
        b.iter(|| {
            let s = l.to_string();
            let back: Loid = s.parse().unwrap();
            black_box(back)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
