//! E11 bench: Create/Derive/InheritFrom at the model layer.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use legion_core::class::ClassKind;
use legion_core::interface::{MethodSignature, ParamType};
use legion_core::model::ObjectModel;
use legion_core::wellknown::LEGION_CLASS;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_object_model");
    g.bench_function("create", |b| {
        let mut m = ObjectModel::bootstrap();
        let cl = m.derive(LEGION_CLASS, "C", ClassKind::NORMAL).unwrap();
        b.iter(|| black_box(m.create(cl).unwrap()));
    });
    g.bench_function("derive_plus_method", |b| {
        let mut m = ObjectModel::bootstrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let cl = m
                .derive(LEGION_CLASS, format!("C{i}"), ClassKind::NORMAL)
                .unwrap();
            m.define_method(
                cl,
                MethodSignature::new(format!("m{i}"), vec![], ParamType::Void),
            )
            .unwrap();
            black_box(cl)
        });
    });
    g.bench_function("inherit_from", |b| {
        let mut m = ObjectModel::bootstrap();
        let base = m.derive(LEGION_CLASS, "Base", ClassKind::NORMAL).unwrap();
        m.define_method(base, MethodSignature::new("f", vec![], ParamType::Void))
            .unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let cl = m
                .derive(LEGION_CLASS, format!("S{i}"), ClassKind::NORMAL)
                .unwrap();
            m.inherit_from(cl, base).unwrap();
            black_box(cl)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
