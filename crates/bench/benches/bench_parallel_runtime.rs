//! E14 bench: threaded actor-runtime throughput at 1/2/4 workers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use legion_sim::parallel::run_workload;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_parallel_runtime");
    g.sample_size(10);
    for workers in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| black_box(run_workload(w, 16, 200, 128, 4)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
