//! E10 bench: replication semantics under crashes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use legion_sim::experiments::e10_replication;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_replication");
    g.sample_size(10);
    g.bench_function("semantics_sweep", |b| {
        b.iter(|| black_box(e10_replication::run(4, 10, 93)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
