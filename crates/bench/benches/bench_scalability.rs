//! E12 bench: the distributed-systems-principle sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use legion_sim::experiments::e12_scalability;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_scalability");
    g.sample_size(10);
    g.bench_function("legion_vs_central", |b| {
        b.iter(|| black_box(e12_scalability::run(&[1, 2], 103)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
