//! E13 bench: MayI decision costs across the policy ladder.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use legion_core::env::InvocationEnv;
use legion_core::loid::Loid;
use legion_security::mayi::{AllOf, AllowAll, MayIPolicy, MethodAcl, ResponsibleAgentSet};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_security");
    let alice = Loid::instance(20, 1);
    let env = InvocationEnv::solo(alice);
    g.bench_function("allow_all", |b| {
        let p = AllowAll;
        b.iter(|| black_box(p.may_i(&env, "Ping").is_allowed()));
    });
    g.bench_function("method_acl", |b| {
        let mut p = MethodAcl::deny_by_default();
        p.grant("Ping", alice);
        b.iter(|| black_box(p.may_i(&env, "Ping").is_allowed()));
    });
    g.bench_function("composite", |b| {
        let mut acl = MethodAcl::deny_by_default();
        acl.grant("Ping", alice);
        let p = AllOf::new(vec![
            Box::new(acl),
            Box::new(ResponsibleAgentSet::new([alice])),
        ]);
        b.iter(|| black_box(p.may_i(&env, "Ping").is_allowed()));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
