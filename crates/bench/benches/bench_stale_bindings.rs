//! E8 bench: the churn sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use legion_sim::experiments::e08_stale_bindings;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_stale_bindings");
    g.sample_size(10);
    g.bench_function("churn_sweep", |b| {
        b.iter(|| black_box(e08_stale_bindings::run(1, 83)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
