//! A counting global allocator for allocation-budget measurements.
//!
//! Perf claims about the message hot path ("zero label allocations per
//! delivery") are only testable if the harness can *count* allocator
//! traffic. [`CountingAlloc`] wraps the system allocator and bumps two
//! process-wide atomics on every `alloc`/`realloc`. Register it in a
//! bench binary or integration-test binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: legion_bench::alloc_counter::CountingAlloc =
//!     legion_bench::alloc_counter::CountingAlloc;
//! ```
//!
//! then bracket the measured region with [`counts`] and subtract. The
//! counters are monotone (frees are not subtracted): the interesting
//! quantity is allocator *pressure*, not live bytes. When the allocator
//! is not registered the counters simply stay at zero, so library code
//! can read them unconditionally.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Allocator wrapper counting every allocation and allocated byte.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is new allocator pressure for the grown size (the old
        // block is accounted already).
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Cumulative `(allocations, bytes)` since process start. Zero unless a
/// [`CountingAlloc`] is registered as the global allocator.
pub fn counts() -> (u64, u64) {
    (
        ALLOCATIONS.load(Ordering::Relaxed),
        ALLOCATED_BYTES.load(Ordering::Relaxed),
    )
}

/// Is a [`CountingAlloc`] actually registered? Detected by allocating a
/// small box and checking that the counter moved — lets tests assert the
/// harness is wired rather than silently measuring zeros.
pub fn is_counting() -> bool {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let probe = Box::new([0u8; 32]);
    std::hint::black_box(&probe);
    ALLOCATIONS.load(Ordering::Relaxed) > before
}
