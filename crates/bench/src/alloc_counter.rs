//! A counting global allocator for allocation-budget measurements.
//!
//! Perf claims about the message hot path ("zero label allocations per
//! delivery") are only testable if the harness can *count* allocator
//! traffic. [`CountingAlloc`] wraps the system allocator and reports
//! every `alloc`/`realloc` to the process-wide atomics in
//! [`legion_core::allocs`] — the counters live in core so lower layers
//! (the kernel profiler) can read them without depending on this
//! harness crate, while the `unsafe` allocator impl stays here (core
//! forbids unsafe code). Register it in a bench binary or
//! integration-test binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: legion_bench::alloc_counter::CountingAlloc =
//!     legion_bench::alloc_counter::CountingAlloc;
//! ```
//!
//! then bracket the measured region with [`counts`] and subtract.

use std::alloc::{GlobalAlloc, Layout, System};

pub use legion_core::allocs::{counts, is_counting};

/// Allocator wrapper counting every allocation and allocated byte.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        legion_core::allocs::on_alloc(layout.size() as u64);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is new allocator pressure for the grown size (the old
        // block is accounted already).
        legion_core::allocs::on_alloc(new_size as u64);
        System.realloc(ptr, layout, new_size)
    }
}
