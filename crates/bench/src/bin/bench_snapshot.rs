//! `bench-snapshot` — the runner behind `tools/bench_snapshot.sh`.
//!
//! Produces and checks `BENCH_CORE.json`, the committed machine-readable
//! perf snapshot: Criterion medians (parsed from a `cargo bench` log),
//! the E12 steady-state loop's allocations-per-message (from the
//! counting allocator registered in this binary), and messages/sec.
//!
//! Subcommands:
//!
//! * `measure [--sweep 1,2,4]` — run the steady-state measurement and
//!   print its JSON to stdout (used to capture a "pre" point before a
//!   hot-path change).
//! * `emit --out BENCH_CORE.json [--criterion-log F] [--pre F] [--mode m]`
//!   — run the measurement, merge the bench log and the optional "pre"
//!   measurement, and write the snapshot.
//! * `check --against BENCH_CORE.json [--criterion-log F]` — re-measure
//!   and fail (exit 1) if `allocs_per_message` regressed >5% or any
//!   tracked Criterion median regressed >20% against the committed
//!   snapshot. Wall-clock metrics (`messages_per_sec`) are reported but
//!   never gated: they depend on the machine.

use legion_bench::alloc_counter::{self, CountingAlloc};
use legion_bench::measure;
use serde::Value;
use std::process::ExitCode;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Headline steady-state point: 2 jurisdictions (8 hosts, 8 clients) —
/// the smallest system with real remote traffic.
const HEADLINE_J: u32 = 2;

fn steady_value(s: &measure::SteadyStats) -> Value {
    Value::Object(vec![
        ("jurisdictions".into(), Value::U64(s.jurisdictions as u64)),
        ("messages".into(), Value::U64(s.messages)),
        ("lookups".into(), Value::U64(s.lookups)),
        ("allocs".into(), Value::U64(s.allocs)),
        ("alloc_bytes".into(), Value::U64(s.alloc_bytes)),
        (
            "allocs_per_message".into(),
            Value::F64(round2(s.allocs_per_message())),
        ),
        (
            "bytes_per_message".into(),
            Value::F64(round2(s.bytes_per_message())),
        ),
        (
            "messages_per_sec".into(),
            Value::F64(s.messages_per_sec().round()),
        ),
    ])
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// The E17 kernel-scale campaign row (full million-LOID point, or the
/// `LEGION_E17_QUICK` variant — `loids` records which).
fn e17_value(r: &measure::E17Row) -> Value {
    Value::Object(vec![
        ("loids".into(), Value::U64(r.loids)),
        ("agents".into(), Value::U64(r.agents as u64)),
        ("clients".into(), Value::U64(r.clients as u64)),
        ("lookups".into(), Value::U64(r.lookups)),
        ("messages".into(), Value::U64(r.messages)),
        ("events".into(), Value::U64(r.events)),
        ("queue_peak".into(), Value::U64(r.queue_peak as u64)),
        (
            "allocs_per_message".into(),
            Value::F64(round2(r.allocs_per_message)),
        ),
        (
            "messages_per_sec".into(),
            Value::F64(r.messages_per_sec.round()),
        ),
        ("binds_per_sec".into(), Value::F64(r.binds_per_sec.round())),
        ("ns_per_event".into(), Value::F64(r.ns_per_event.round())),
    ])
}

/// The E18 overload campaign (full flash crowd, or the
/// `LEGION_E18_QUICK` variant — `offered` records which).
fn e18_value(s: &measure::E18Stats) -> Value {
    Value::Object(vec![
        ("offered".into(), Value::U64(s.offered)),
        ("ok".into(), Value::U64(s.ok)),
        ("shed".into(), Value::U64(s.shed)),
        ("clones".into(), Value::U64(s.clones)),
        ("messages".into(), Value::U64(s.messages)),
        ("allocs".into(), Value::U64(s.allocs)),
        (
            "allocs_per_message".into(),
            Value::F64(round2(s.allocs_per_message())),
        ),
    ])
}

/// Parse `bench <label> <ns> ns/iter` lines from a `cargo bench` log.
fn parse_criterion_log(text: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let mut it = line.split_whitespace();
        if it.next() != Some("bench") {
            continue;
        }
        let Some(label) = it.next() else { continue };
        let Some(ns) = it.next().and_then(|n| n.parse::<u64>().ok()) else {
            continue;
        };
        if it.next() == Some("ns/iter") {
            out.push((label.to_owned(), ns));
        }
    }
    out.sort();
    out
}

fn benches_value(benches: &[(String, u64)]) -> Value {
    Value::Object(
        benches
            .iter()
            .map(|(l, ns)| (l.clone(), Value::U64(*ns)))
            .collect(),
    )
}

struct Args {
    cmd: String,
    criterion_log: Option<String>,
    pre: Option<String>,
    out: Option<String>,
    against: Option<String>,
    mode: String,
    sweep: Vec<u32>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cmd: String::new(),
        criterion_log: None,
        pre: None,
        out: None,
        against: None,
        mode: "quick".into(),
        sweep: vec![1, 2, 4],
    };
    let mut it = std::env::args().skip(1);
    args.cmd = it.next().ok_or("missing subcommand (measure|emit|check)")?;
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--criterion-log" => args.criterion_log = Some(val("--criterion-log")?),
            "--pre" => args.pre = Some(val("--pre")?),
            "--out" => args.out = Some(val("--out")?),
            "--against" => args.against = Some(val("--against")?),
            "--mode" => args.mode = val("--mode")?,
            "--sweep" => {
                args.sweep = val("--sweep")?
                    .split(',')
                    .map(|p| p.trim().parse::<u32>().map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn run_measurement(
    sweep: &[u32],
) -> (
    measure::SteadyStats,
    measure::SteadyStats,
    Vec<measure::SteadyStats>,
    measure::E17Row,
    measure::E18Stats,
) {
    assert!(
        alloc_counter::is_counting(),
        "counting allocator not registered"
    );
    let headline = measure::e12_steady_state(HEADLINE_J, measure::SNAPSHOT_SEED);
    let journaled = measure::e12_steady_state_journaled(HEADLINE_J, measure::SNAPSHOT_SEED);
    let sweep = sweep
        .iter()
        .map(|&j| measure::e12_steady_state(j, measure::SNAPSHOT_SEED))
        .collect();
    let e17 = measure::e17_scale(measure::SNAPSHOT_SEED);
    let e18 = measure::e18_overload(measure::SNAPSHOT_SEED);
    (headline, journaled, sweep, e17, e18)
}

fn measurement_value(
    headline: &measure::SteadyStats,
    journaled: &measure::SteadyStats,
    sweep: &[measure::SteadyStats],
    e17: &measure::E17Row,
    e18: &measure::E18Stats,
) -> Value {
    Value::Object(vec![
        ("e12_steady".into(), steady_value(headline)),
        ("e12_steady_journaled".into(), steady_value(journaled)),
        (
            "e12_sweep".into(),
            Value::Array(sweep.iter().map(steady_value).collect()),
        ),
        ("e17_scale".into(), e17_value(e17)),
        ("e18_overload".into(), e18_value(e18)),
    ])
}

fn load_json(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde::json::from_str(&text).map_err(|e| format!("parse {path}: {e:?}"))
}

fn f64_at(v: &Value, path: &[&str]) -> Option<f64> {
    let mut cur = v;
    for k in path {
        cur = cur.get(k)?;
    }
    cur.as_f64().or_else(|| cur.as_u64().map(|u| u as f64))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench-snapshot: {e}");
            return ExitCode::FAILURE;
        }
    };
    let criterion = args
        .criterion_log
        .as_deref()
        .map(|p| std::fs::read_to_string(p).expect("read criterion log"))
        .map(|t| parse_criterion_log(&t))
        .unwrap_or_default();
    match args.cmd.as_str() {
        "measure" => {
            let (headline, journaled, sweep, e17, e18) = run_measurement(&args.sweep);
            println!(
                "{}",
                serde::json::to_string_pretty(&measurement_value(
                    &headline, &journaled, &sweep, &e17, &e18
                ))
            );
            ExitCode::SUCCESS
        }
        "emit" => {
            let out = args.out.as_deref().expect("emit needs --out");
            let (headline, journaled, sweep, e17, e18) = run_measurement(&args.sweep);
            let mut doc = vec![
                ("schema".into(), Value::Str("legion-bench-core/v1".into())),
                ("mode".into(), Value::Str(args.mode.clone())),
                ("seed".into(), Value::U64(measure::SNAPSHOT_SEED)),
            ];
            if let Some(pre) = args.pre.as_deref() {
                let pre = load_json(pre).expect("load --pre measurement");
                doc.push(("pre".into(), pre));
            }
            doc.push((
                "post".into(),
                measurement_value(&headline, &journaled, &sweep, &e17, &e18),
            ));
            doc.push(("benches".into(), benches_value(&criterion)));
            let text = serde::json::to_string_pretty(&Value::Object(doc));
            std::fs::write(out, text + "\n").expect("write snapshot");
            eprintln!(
                "bench-snapshot: wrote {out} (allocs/msg {:.2}, msgs/sec {:.0})",
                headline.allocs_per_message(),
                headline.messages_per_sec()
            );
            ExitCode::SUCCESS
        }
        "check" => {
            let against = args.against.as_deref().expect("check needs --against");
            let committed = load_json(against).expect("load committed snapshot");
            let (headline, journaled, _, e17, e18) = run_measurement(&[]);
            let mut failed = false;
            // Allocations per message are deterministic per seed: gate at
            // +5%.
            let committed_apm = f64_at(&committed, &["post", "e12_steady", "allocs_per_message"])
                .expect("committed snapshot has post.e12_steady.allocs_per_message");
            let apm = headline.allocs_per_message();
            let apm_ok = apm <= committed_apm * 1.05;
            println!(
                "allocs/msg: committed {committed_apm:.2}, now {apm:.2} {}",
                if apm_ok { "(ok)" } else { "REGRESSED >5%" }
            );
            failed |= !apm_ok;
            // Same +5% discipline for the journaled configuration, once
            // the committed snapshot records it.
            if let Some(committed_japm) = f64_at(
                &committed,
                &["post", "e12_steady_journaled", "allocs_per_message"],
            ) {
                let japm = journaled.allocs_per_message();
                let japm_ok = japm <= committed_japm * 1.05;
                println!(
                    "allocs/msg (journaled): committed {committed_japm:.2}, now {japm:.2} {}",
                    if japm_ok { "(ok)" } else { "REGRESSED >5%" }
                );
                failed |= !japm_ok;
            } else {
                println!("allocs/msg (journaled): not in committed snapshot (not gated)");
            }
            // E17: the same +5% allocs/message discipline — but only when
            // this run's campaign size matches the committed one (the CI
            // bench-smoke job measures the `LEGION_E17_QUICK` variant
            // while the snapshot commits the full million-LOID point, and
            // the two have different per-message profiles).
            let committed_e17_loids = f64_at(&committed, &["post", "e17_scale", "loids"]);
            match (
                committed_e17_loids,
                f64_at(&committed, &["post", "e17_scale", "allocs_per_message"]),
            ) {
                (Some(loids), Some(committed_apm)) if loids == e17.loids as f64 => {
                    let apm = e17.allocs_per_message;
                    let ok = apm <= committed_apm * 1.05;
                    println!(
                        "allocs/msg (e17, {} loids): committed {committed_apm:.2}, now {apm:.2} {}",
                        e17.loids,
                        if ok { "(ok)" } else { "REGRESSED >5%" }
                    );
                    failed |= !ok;
                }
                (Some(loids), Some(_)) => println!(
                    "allocs/msg (e17): committed point has {loids:.0} loids, this run {} \
                     (config mismatch, not gated)",
                    e17.loids
                ),
                _ => println!("allocs/msg (e17): not in committed snapshot (not gated)"),
            }
            // E18: same discipline again — +5% allocs/message over the
            // flash-crowd campaign, gated only when the offered-ops count
            // matches the committed point (quick vs full campaigns have
            // different shed/retry profiles per message).
            let committed_e18_offered = f64_at(&committed, &["post", "e18_overload", "offered"]);
            match (
                committed_e18_offered,
                f64_at(&committed, &["post", "e18_overload", "allocs_per_message"]),
            ) {
                (Some(offered), Some(committed_apm)) if offered == e18.offered as f64 => {
                    let apm = e18.allocs_per_message();
                    let ok = apm <= committed_apm * 1.05;
                    println!(
                        "allocs/msg (e18, {} offered): committed {committed_apm:.2}, now {apm:.2} {}",
                        e18.offered,
                        if ok { "(ok)" } else { "REGRESSED >5%" }
                    );
                    failed |= !ok;
                }
                (Some(offered), Some(_)) => println!(
                    "allocs/msg (e18): committed point offered {offered:.0} ops, this run {} \
                     (config mismatch, not gated)",
                    e18.offered
                ),
                _ => println!("allocs/msg (e18): not in committed snapshot (not gated)"),
            }
            // The E17 scale bar: the million-LOID campaign must sustain
            // ≥2x the pre-overhaul e12 steady-state message rate (the
            // frozen `pre` block). Wall-clock, so reported loudly rather
            // than hard-gated — but a shortfall on the full campaign is
            // called out.
            if e17.loids >= 1_000_000 {
                if let Some(pre_mps) =
                    f64_at(&committed, &["pre", "e12_steady", "messages_per_sec"])
                {
                    let ratio = e17.messages_per_sec / pre_mps.max(1.0);
                    println!(
                        "e17 msgs/sec: {:.0} = {ratio:.2}x the pre-overhaul e12 baseline {pre_mps:.0} {}",
                        e17.messages_per_sec,
                        if ratio >= 2.0 { "(>=2x ok)" } else { "BELOW 2x (wall-clock, not gated)" }
                    );
                }
            }
            // Criterion medians are wall-clock, and the whole machine
            // drifts between runs (load, throttling) — so gate each
            // tracked bench at +20% *relative to the fleet-wide drift*:
            // the median now/committed ratio across tracked benches is
            // the machine-speed correction, and a bench fails only when
            // it regresses 20% beyond that (a genuine per-bench
            // slowdown, not uniform noise). Sub-10µs medians jitter well
            // past 20% run to run regardless; they are reported, never
            // gated.
            const GATE_FLOOR_NS: u64 = 10_000;
            let tracked = committed
                .get("benches")
                .and_then(|b| b.as_object())
                .map(|o| o.to_vec())
                .unwrap_or_default();
            let mut gated: Vec<(&String, u64, u64)> = Vec::new();
            for (label, committed_ns) in &tracked {
                let Some(committed_ns) = committed_ns.as_u64() else {
                    continue;
                };
                let Some((_, now_ns)) = criterion.iter().find(|(l, _)| l == label) else {
                    println!("bench {label}: missing from this run (not gated)");
                    continue;
                };
                if committed_ns < GATE_FLOOR_NS {
                    println!(
                        "bench {label}: committed {committed_ns} ns, now {now_ns} ns (below gate floor)"
                    );
                    continue;
                }
                gated.push((label, committed_ns, *now_ns));
            }
            let mut ratios: Vec<f64> = gated
                .iter()
                .map(|&(_, committed_ns, now_ns)| now_ns as f64 / committed_ns as f64)
                .collect();
            ratios.sort_by(f64::total_cmp);
            let drift = ratios.get(ratios.len() / 2).copied().unwrap_or(1.0);
            // Never excuse an absolute regression by a machine that got
            // *faster*: the correction only ever relaxes the gate.
            let threshold = drift.max(1.0) * 1.20;
            if !gated.is_empty() {
                println!(
                    "machine drift (median ratio over {} benches): {drift:.2}x",
                    gated.len()
                );
            }
            for (label, committed_ns, now_ns) in gated {
                let ratio = now_ns as f64 / committed_ns as f64;
                let ok = ratio <= threshold;
                println!(
                    "bench {label}: committed {committed_ns} ns, now {now_ns} ns, {ratio:.2}x {}",
                    if ok {
                        "(ok)"
                    } else {
                        "REGRESSED >20% beyond drift"
                    }
                );
                failed |= !ok;
            }
            if failed {
                eprintln!("bench-snapshot: perf regression detected");
                ExitCode::FAILURE
            } else {
                println!("bench-snapshot: no regression against {against}");
                ExitCode::SUCCESS
            }
        }
        other => {
            eprintln!("bench-snapshot: unknown subcommand {other}");
            ExitCode::FAILURE
        }
    }
}
