//! Benchmark harness crate.
//!
//! * `benches/` — the Criterion suite (one bench per experiment family).
//! * [`alloc_counter`] — counting global allocator for allocation
//!   budgets.
//! * [`measure`] — the E12 steady-state measurement behind
//!   `BENCH_CORE.json`.
//! * `src/bin/bench_snapshot.rs` — the `bench-snapshot` runner invoked
//!   by `tools/bench_snapshot.sh`.

pub mod alloc_counter;
pub mod measure;
