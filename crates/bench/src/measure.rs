//! Steady-state hot-path measurement for the perf snapshot.
//!
//! Reproduces the E12 (§5.2) measurement discipline — build a full
//! Legion system, run a warm-up client wave to populate caches, reset
//! the kernel metrics, then drive a fresh measured wave — and reports
//! what `BENCH_CORE.json` tracks: messages sent, lookups completed,
//! allocator pressure (via [`crate::alloc_counter`]), and wall time.
//! Allocation counts are deterministic per seed and code version, which
//! makes `allocs_per_message` the one perf metric CI can gate tightly;
//! wall-clock throughput is machine-dependent and only sanity-checked.

use crate::alloc_counter;
use legion_journal::MemSink;
use legion_naming::tree::TreeShape;
use legion_obs::slo::SloConfig;
use legion_sim::experiments::common::{attach_clients, run_clients};
use legion_sim::system::{LegionSystem, SystemConfig};
use legion_sim::workload::WorkloadConfig;
use std::time::Instant;

/// The seed `legion-exp --quick` uses; keeps snapshot numbers comparable
/// with the committed experiment transcripts.
pub const SNAPSHOT_SEED: u64 = 20260707;

/// Snapshot cadence for the journaled measurement — the same the run
/// report's `--journal-out` uses, so the gate covers the configuration
/// users actually record with.
pub const JOURNAL_SNAP_EVERY: u64 = 256;

/// One steady-state measurement.
#[derive(Debug, Clone)]
pub struct SteadyStats {
    /// Jurisdictions in the measured system (hosts = 4x this).
    pub jurisdictions: u32,
    /// Messages accepted into the network during the measured wave.
    pub messages: u64,
    /// Client lookups completed during the measured wave.
    pub lookups: u64,
    /// Allocator calls during the measured wave (0 when the counting
    /// allocator is not registered).
    pub allocs: u64,
    /// Bytes requested from the allocator during the measured wave.
    pub alloc_bytes: u64,
    /// Wall-clock nanoseconds for the measured wave.
    pub wall_ns: u64,
}

impl SteadyStats {
    /// Allocator calls per accepted message.
    pub fn allocs_per_message(&self) -> f64 {
        self.allocs as f64 / self.messages.max(1) as f64
    }

    /// Allocated bytes per accepted message.
    pub fn bytes_per_message(&self) -> f64 {
        self.alloc_bytes as f64 / self.messages.max(1) as f64
    }

    /// Simulated messages processed per wall-clock second.
    pub fn messages_per_sec(&self) -> f64 {
        self.messages as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }
}

/// Build the same system shape E12 sweeps (one leaf Binding Agent per
/// jurisdiction, 4 hosts and 4 clients per jurisdiction).
pub fn build_e12_system(jurisdictions: u32, seed: u64) -> (LegionSystem, usize) {
    let leaves = jurisdictions as usize;
    let tree = if leaves == 1 {
        TreeShape::single()
    } else {
        TreeShape::new(leaves, leaves + 1)
    };
    let cfg = SystemConfig {
        jurisdictions,
        hosts_per_jurisdiction: 4,
        classes: 2 * jurisdictions,
        objects_per_class: 16,
        agent_tree: tree,
        seed,
        ..SystemConfig::default()
    };
    let clients = (4 * jurisdictions) as usize;
    (LegionSystem::build(cfg), clients)
}

/// Which optional kernel surfaces the measured run switches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MeasureMode {
    /// The default experiment configuration: nothing extra.
    Plain,
    /// Profiler + SLO tracker (the `--report-out` configuration).
    Instrumented,
    /// Event journal recording with content-addressed snapshots (the
    /// `--journal-out` configuration).
    Journaled,
    /// Event journal recording with snapshots off: the pure per-record
    /// journaling tax, no periodic state materialization.
    JournalOnly,
}

/// Run the E12 steady-state inner loop and measure it: warm wave,
/// `reset_metrics`, then a measured wave bracketed by allocator counts.
pub fn e12_steady_state(jurisdictions: u32, seed: u64) -> SteadyStats {
    e12_steady_state_inner(jurisdictions, seed, MeasureMode::Plain)
}

/// [`e12_steady_state`] with the always-on observability surfaces the
/// run report uses — kernel profiler and SLO tracker — enabled for the
/// whole run. The CI gate holds this within the committed
/// `allocs_per_message` budget (+5%): instrumentation must stay free on
/// the steady-state hot path.
pub fn e12_steady_state_instrumented(jurisdictions: u32, seed: u64) -> SteadyStats {
    e12_steady_state_inner(jurisdictions, seed, MeasureMode::Instrumented)
}

/// [`e12_steady_state`] with the event journal recording — every kernel
/// ingress appended to an in-memory sink, content-addressed snapshots
/// every [`JOURNAL_SNAP_EVERY`] events — exactly as `--journal-out`
/// configures it. The CI gate holds the journaling tax on the hot path
/// to a fraction of an allocation per message (the writer reuses its
/// encode buffers; the sink growth is amortized).
pub fn e12_steady_state_journaled(jurisdictions: u32, seed: u64) -> SteadyStats {
    e12_steady_state_inner(jurisdictions, seed, MeasureMode::Journaled)
}

/// [`e12_steady_state_journaled`] with snapshots disabled: measures the
/// pure per-record journaling tax on the hot path (append + checksum +
/// sink), without the periodic snapshot's state materialization. This is
/// the number the tight half-an-allocation-per-message gate holds.
pub fn e12_steady_state_journal_only(jurisdictions: u32, seed: u64) -> SteadyStats {
    e12_steady_state_inner(jurisdictions, seed, MeasureMode::JournalOnly)
}

/// The E17 campaign row, re-exported for the snapshot pipeline.
pub use legion_sim::experiments::e17_scale::Row as E17Row;

/// Run the E17 kernel-scale campaign: the full million-LOID point, or —
/// when `LEGION_E17_QUICK` is set (the CI bench-smoke job) — the
/// scaled-down 10k-LOID variant that walks the same layers. Under this
/// crate's counting allocator the row's `allocs_per_message` is real
/// (and deterministic per seed, so the snapshot check gates it).
pub fn e17_scale(seed: u64) -> E17Row {
    use legion_sim::experiments::e17_scale as e17;
    if std::env::var_os("LEGION_E17_QUICK").is_some() {
        e17::quick_campaign(seed)
    } else {
        e17::campaign(1_000_000, TreeShape::new(8, 585), 64, 500, seed)
    }
}

/// One E18 overload measurement: the auto-scaled flash-crowd campaign,
/// bracketed by allocator counts.
#[derive(Debug, Clone)]
pub struct E18Stats {
    /// Operations offered across all phases (identifies the campaign
    /// size — quick vs full — so the gate only compares like with like).
    pub offered: u64,
    /// Operations that completed successfully.
    pub ok: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Clones the burn-driven policy landed.
    pub clones: u64,
    /// Messages delivered by the kernel.
    pub messages: u64,
    /// Allocator calls over build + campaign (deterministic per seed).
    pub allocs: u64,
}

impl E18Stats {
    /// Allocator calls per delivered message — the admission path, the
    /// service-timer defers, the retry machinery, and the policy loop
    /// all live inside this number, so the +5% snapshot gate holds the
    /// whole overload path to its committed allocation profile.
    pub fn allocs_per_message(&self) -> f64 {
        self.allocs as f64 / self.messages.max(1) as f64
    }
}

/// Run the E18 flash-crowd campaign with the auto-scaler in the loop:
/// the full-scale point, or — when `LEGION_E18_QUICK` is set (the CI
/// bench-smoke job) — the scaled-down variant that walks the same
/// layers (admission shed, burn events, `Derive()` clones, the replica
/// front door).
pub fn e18_overload(seed: u64) -> E18Stats {
    use legion_sim::experiments::e18_overload as e18;
    let quick = std::env::var_os("LEGION_E18_QUICK").is_some();
    let (a0, _) = alloc_counter::counts();
    let (row, _) = e18::flash_campaign(quick, seed, true, e18::JournalMode::Plain);
    let (a1, _) = alloc_counter::counts();
    assert!(
        row.violations.is_empty(),
        "E18 invariants violated under measurement: {:?}",
        row.violations
    );
    let total: u64 = row.phases.iter().map(|p| p.offered).sum();
    let ok: u64 = row.phases.iter().map(|p| p.ok).sum();
    E18Stats {
        offered: total,
        ok,
        shed: row.requests_shed,
        clones: row.clones,
        messages: row.messages,
        allocs: a1.saturating_sub(a0),
    }
}

fn e12_steady_state_inner(jurisdictions: u32, seed: u64, mode: MeasureMode) -> SteadyStats {
    let (mut sys, clients) = build_e12_system(jurisdictions, seed);
    match mode {
        MeasureMode::Plain => {}
        MeasureMode::Instrumented => {
            // Enabled *before* the warm wave: the profiler's (endpoint,
            // method) map keys are populated during warm-up, so the
            // measured wave only zero-resets and refills them in place.
            sys.kernel.enable_profiling();
            sys.kernel.enable_slo(SloConfig::default());
        }
        MeasureMode::Journaled => {
            // Also before the warm wave, mirroring `--journal-out`: the
            // journal covers the run from its first ingress.
            sys.kernel
                .enable_journal_record(Box::new(MemSink::new()), JOURNAL_SNAP_EVERY);
        }
        MeasureMode::JournalOnly => {
            sys.kernel
                .enable_journal_record(Box::new(MemSink::new()), 0);
        }
    }
    let wl = WorkloadConfig {
        lookups_per_client: 30,
        locality: 0.8,
        ..WorkloadConfig::default()
    };
    let warm = attach_clients(&mut sys, clients, &wl, seed, None);
    run_clients(&mut sys, &warm);
    sys.kernel.reset_metrics();
    let (a0, b0) = alloc_counter::counts();
    let t0 = Instant::now();
    let eps = attach_clients(&mut sys, clients, &wl, seed ^ 0x5555, None);
    let report = run_clients(&mut sys, &eps);
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let (a1, b1) = alloc_counter::counts();
    SteadyStats {
        jurisdictions,
        messages: sys.kernel.stats().sent,
        lookups: report.completed,
        allocs: a1.saturating_sub(a0),
        alloc_bytes: b1.saturating_sub(b0),
        wall_ns,
    }
}
