//! Allocator-pressure gates for the message hot path.
//!
//! Runs with the counting global allocator registered, so every
//! assertion here is about *real* allocator traffic. Everything lives in
//! one test function: the strict zero-allocation brackets below would be
//! polluted by concurrent tests sharing the process-wide counter.

use legion_bench::alloc_counter::{self, CountingAlloc};
use legion_bench::measure::{
    e12_steady_state, e12_steady_state_instrumented, e12_steady_state_journal_only,
    e12_steady_state_journaled, SNAPSHOT_SEED,
};
use legion_core::symbol::{self, Sym};
use legion_core::time::SimTime;
use legion_net::metrics::{Counters, WindowedCounters};
use legion_net::sim::{FlightEvent, FlightKind, FlightRecorder};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn alloc_delta(f: impl FnOnce()) -> u64 {
    let (a0, _) = alloc_counter::counts();
    f();
    let (a1, _) = alloc_counter::counts();
    a1 - a0
}

/// Minimum delta over a few attempts. The counter is process-wide, so a
/// measurement window can catch an allocation from the libtest harness
/// threads under load; a *real* cost in `f` shows up on every attempt,
/// so the minimum keeps the zero-allocation contract noise-free.
fn alloc_delta_min(mut f: impl FnMut()) -> u64 {
    (0..3).map(|_| alloc_delta(&mut f)).min().unwrap()
}

#[test]
fn hot_path_allocation_budgets() {
    assert!(
        alloc_counter::is_counting(),
        "counting allocator must be registered for this test to mean anything"
    );

    // First touch pays the one-time global-interner seeding; everything
    // after that is what the hot path sees.
    std::hint::black_box(Sym::intern("GetBinding"));

    // Interning a pre-seeded symbol takes the read-lock fast path: no
    // allocation, ever.
    let d = alloc_delta_min(|| {
        for _ in 0..1_000 {
            std::hint::black_box(Sym::intern("GetBinding"));
            std::hint::black_box(symbol::GET_BINDING.as_str());
        }
    });
    assert_eq!(d, 0, "interning a known symbol allocated {d} times");

    // Bumping an existing counter is allocation-free: the symbol key is
    // Copy and the BTreeMap entry already exists. This is the "zero
    // label work" contract the per-delivery metrics ride on.
    let mut counters = Counters::default();
    counters.add_sym(symbol::NET_DELAYED, 1);
    let d = alloc_delta_min(|| {
        for _ in 0..1_000 {
            counters.add_sym(symbol::NET_DELAYED, 1);
        }
    });
    assert_eq!(d, 0, "counter hit path allocated {d} times");

    // The flight recorder is *always on*, so recording — both the fill
    // phase and steady-state ring overwrites — must never allocate. The
    // only allocation is the ring itself, at construction.
    let mut flight = FlightRecorder::new(256);
    let d = alloc_delta_min(|| {
        for i in 0..1_000u64 {
            flight.record(FlightEvent {
                at: SimTime(i),
                kind: FlightKind::Deliver,
                endpoint: i % 7,
                label: symbol::NET_DELAYED,
                detail: i,
                seq: 0,
            });
        }
    });
    assert_eq!(d, 0, "flight recorder allocated {d} times while recording");
    assert_eq!(flight.total(), 3_000);

    // Disabled windowed counters must not touch the allocator at all.
    let mut windows = WindowedCounters::disabled();
    let d = alloc_delta_min(|| {
        for i in 0..1_000u64 {
            windows.record_sym(legion_core::time::SimTime(i), symbol::NET_DUPLICATED, 1);
        }
    });
    assert_eq!(d, 0, "disabled windows allocated {d} times");

    // The message pool's recycle cycle is allocation-free once warm:
    // drawing a pooled arg buffer, pushing into its retained capacity,
    // recycling it, filling a recycled binding shell, and recycling the
    // shell must all stay off the allocator. This is the contract the
    // steady-state E12/E17 numbers stand on.
    {
        use legion_core::address::{ObjectAddress, ObjectAddressElement};
        use legion_core::binding::Binding;
        use legion_core::loid::Loid;
        use legion_core::value::LegionValue;
        use legion_net::pool::MessagePool;
        let mut pool = MessagePool::new();
        let src = Binding::forever(
            Loid::class_object(21),
            ObjectAddress::single(ObjectAddressElement::sim(3)),
        );
        // Warm: seed one arg buffer (with capacity) and one shell.
        let mut warm = pool.take_args();
        warm.push(LegionValue::Loid(src.loid));
        pool.recycle_args(warm);
        pool.recycle_value(LegionValue::from(src.clone()));
        let d = alloc_delta_min(|| {
            for _ in 0..1_000 {
                let mut args = pool.take_args();
                args.push(LegionValue::Loid(src.loid));
                pool.recycle_args(args);
                let v = pool.binding_value(&src);
                pool.recycle_value(v);
            }
        });
        assert_eq!(d, 0, "warm pool recycle path allocated {d} times");
    }

    // The E12 steady-state loop (metrics sink disabled, the default
    // experiment configuration) stays under the per-message allocation
    // budget. With the message pool recycling arg vectors and binding
    // shells the hot path measures ~2.7 allocs/message at one
    // jurisdiction; the unpooled path measured ~4.2 and the String-keyed
    // path before symbol interning ~8.6 — both fail this gate.
    let stats = e12_steady_state(1, SNAPSHOT_SEED);
    assert!(stats.messages > 100, "workload too small: {stats:?}");
    assert!(stats.lookups > 0, "no lookups completed: {stats:?}");
    let apm = stats.allocs_per_message();
    assert!(
        apm <= 3.5,
        "allocs/message budget blown: {apm:.2} > 3.5 ({stats:?})"
    );

    // The instrumented run — profiler + SLO tracker enabled, as
    // `--report-out` configures them — must stay within the *committed*
    // snapshot budget (+5%): always-on observability may not tax the
    // steady-state hot path. The committed number comes from
    // BENCH_CORE.json so the gate tightens automatically with the
    // snapshot.
    let bench_core = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_CORE.json"
    ))
    .expect("BENCH_CORE.json at the workspace root");
    let core = serde::json::from_str(&bench_core).expect("BENCH_CORE.json parses");
    let steady = core
        .get("post")
        .and_then(|p| p.get("e12_steady"))
        .expect("post.e12_steady in BENCH_CORE.json");
    let committed_j = steady
        .get("jurisdictions")
        .and_then(|v| v.as_u64())
        .expect("jurisdictions") as u32;
    let committed_apm = steady
        .get("allocs_per_message")
        .and_then(|v| v.as_f64())
        .expect("allocs_per_message");
    let inst = e12_steady_state_instrumented(committed_j, SNAPSHOT_SEED);
    let inst_apm = inst.allocs_per_message();
    assert!(
        inst_apm <= committed_apm * 1.05,
        "instrumented allocs/message budget blown: {inst_apm:.2} > {committed_apm:.2} * 1.05 ({inst:?})"
    );

    // Pure journaling — every kernel ingress appended, checksummed, and
    // sunk, snapshots off — may tax the hot path at most half an
    // allocation per message over the plain run: the writer reuses its
    // encode buffers and the sink's growth amortizes. And with
    // journaling *disabled* (the plain run above) the kernel's journal
    // hooks are a branch on an enum discriminant: the plain measurement
    // is re-asserted unchanged below, so "off = free" is gated too.
    let jstats = e12_steady_state_journal_only(committed_j, SNAPSHOT_SEED);
    let plain_headline = e12_steady_state(committed_j, SNAPSHOT_SEED);
    let journal_apm = jstats.allocs_per_message();
    let plain_apm = plain_headline.allocs_per_message();
    assert!(
        journal_apm <= plain_apm + 0.5,
        "journaling tax budget blown: {journal_apm:.2} > {plain_apm:.2} + 0.5 ({jstats:?})"
    );

    // The full `--journal-out` configuration — journaling plus a
    // content-addressed snapshot every 256 events — is held to the
    // committed BENCH_CORE.json number (+5%), same discipline as the
    // instrumented gate: the periodic materialization is a real cost the
    // snapshot tracks, and this stops it drifting.
    let full = e12_steady_state_journaled(committed_j, SNAPSHOT_SEED);
    let full_apm = full.allocs_per_message();
    if let Some(committed_japm) = core
        .get("post")
        .and_then(|p| p.get("e12_steady_journaled"))
        .and_then(|s| s.get("allocs_per_message"))
        .and_then(|v| v.as_f64())
    {
        assert!(
            full_apm <= committed_japm * 1.05,
            "journaled allocs/message regressed: {full_apm:.2} > {committed_japm:.2} * 1.05"
        );
    }

    // Determinism of the measurement itself: the same seed must allocate
    // identically, or the CI gate on allocs/message is noise.
    let again = e12_steady_state(1, SNAPSHOT_SEED);
    assert_eq!(
        stats.messages, again.messages,
        "message count must be seed-determined"
    );
    assert_eq!(
        stats.allocs, again.allocs,
        "allocation count must be seed-determined"
    );
    assert_eq!(
        stats.alloc_bytes, again.alloc_bytes,
        "allocated bytes must be seed-determined"
    );
}
