//! Campaign runner: execute many seeded schedules, collect invariant
//! violations, and shrink violating schedules to minimal reproducers.
//!
//! The crate stays system-agnostic: a [`ChaosTarget`] owns the workload
//! and the invariants (it builds a fresh system per run, injects the
//! schedule's faults and crashes, drives to quiescence, then audits);
//! this module owns the campaign loop and the delta-debugging shrinker.

use crate::schedule::{ChaosSchedule, ScheduleBounds};
use std::fmt;

/// One invariant breach found after quiescence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke (short stable name, e.g. `"at-most-once"`).
    pub invariant: String,
    /// Human-readable evidence.
    pub detail: String,
}

impl Violation {
    /// Convenience constructor.
    pub fn new(invariant: impl Into<String>, detail: impl Into<String>) -> Self {
        Violation {
            invariant: invariant.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// What one chaos run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Invariant breaches (empty = clean run).
    pub violations: Vec<Violation>,
    /// A digest of the run's observable state; identical schedules must
    /// produce identical digests (bit-reproducibility check).
    pub digest: u64,
}

/// A system that can run one workload under one fault schedule.
///
/// Implementations MUST be deterministic: the same schedule always yields
/// the same outcome (the campaign asserts this through `digest`).
pub trait ChaosTarget {
    /// Build a fresh system, run the workload under `schedule`, drive to
    /// quiescence, audit the global invariants.
    fn run(&mut self, schedule: &ChaosSchedule) -> RunOutcome;

    /// Run once while recording an event journal of every kernel
    /// ingress. Targets with a journal backend return the journal bytes;
    /// the default has none and returns `None` (the campaign then falls
    /// back to a plain double-run determinism check).
    fn run_recorded(&mut self, schedule: &ChaosSchedule) -> (RunOutcome, Option<Vec<u8>>) {
        (self.run(schedule), None)
    }

    /// Re-run `schedule` as a verified re-execution against `journal`
    /// (recorded by [`ChaosTarget::run_recorded`]). Implementations
    /// should fail loudly — with the divergence's journal seq and
    /// context — if the re-execution does not match record for record.
    fn run_replayed(&mut self, schedule: &ChaosSchedule, _journal: &[u8]) -> RunOutcome {
        self.run(schedule)
    }
}

/// Result of shrinking one violating schedule.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimal schedule still violating (1-minimal: removing any
    /// single remaining part makes the violation disappear).
    pub schedule: ChaosSchedule,
    /// The violations the minimal schedule exhibits.
    pub violations: Vec<Violation>,
    /// Re-runs the shrinker spent.
    pub runs: usize,
}

/// Per-seed campaign record.
#[derive(Debug, Clone)]
pub struct SeedReport {
    /// The campaign seed.
    pub seed: u64,
    /// The generated schedule.
    pub schedule: ChaosSchedule,
    /// The run's digest.
    pub digest: u64,
    /// Violations (empty = clean).
    pub violations: Vec<Violation>,
    /// Present iff the run violated: the shrunk reproducer.
    pub shrunk: Option<ShrinkResult>,
}

/// Aggregate campaign outcome.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// One record per seed, in seed order.
    pub seeds: Vec<SeedReport>,
}

impl CampaignReport {
    /// Seeds whose runs violated at least one invariant.
    pub fn violating(&self) -> impl Iterator<Item = &SeedReport> {
        self.seeds.iter().filter(|s| !s.violations.is_empty())
    }

    /// Did every run satisfy every invariant?
    pub fn clean(&self) -> bool {
        self.seeds.iter().all(|s| s.violations.is_empty())
    }

    /// XOR-fold of all per-seed digests: one number that changes if any
    /// run's observable behavior changes.
    pub fn campaign_digest(&self) -> u64 {
        self.seeds.iter().fold(0u64, |acc, s| {
            acc ^ s.digest.rotate_left((s.seed % 63) as u32)
        })
    }
}

/// Run `count` schedules (seeds `base_seed..base_seed+count`) against
/// `target`. Every run executes twice to assert bit-reproducibility:
/// targets with a journal backend record the first run and replay the
/// second as a verified re-execution (every kernel ingress compared
/// record for record); targets without one fall back to comparing the
/// two outcomes. Violating schedules are shrunk to minimal reproducers.
///
/// # Panics
///
/// Panics if a target is non-deterministic (the replay of a schedule
/// disagrees with its recording) — that is a harness bug no campaign
/// result can be trusted over.
pub fn run_campaign<T: ChaosTarget>(
    target: &mut T,
    base_seed: u64,
    count: u64,
    bounds: &ScheduleBounds,
) -> CampaignReport {
    let mut seeds = Vec::new();
    for seed in base_seed..base_seed.saturating_add(count) {
        let schedule = ChaosSchedule::generate(seed, bounds);
        let (outcome, journal) = target.run_recorded(&schedule);
        let replay = match &journal {
            Some(journal) => target.run_replayed(&schedule, journal),
            None => target.run(&schedule),
        };
        assert_eq!(
            outcome, replay,
            "target is non-deterministic for {schedule}"
        );
        let shrunk = if outcome.violations.is_empty() {
            None
        } else {
            Some(shrink(target, &schedule))
        };
        seeds.push(SeedReport {
            seed,
            schedule,
            digest: outcome.digest,
            violations: outcome.violations,
            shrunk,
        });
    }
    CampaignReport { seeds }
}

/// Every one-step simplification of `s`: drop one crash, one flap, one
/// spike, or zero out one probability family.
fn simplifications(s: &ChaosSchedule) -> Vec<ChaosSchedule> {
    let mut out = Vec::new();
    for i in 0..s.crashes.len() {
        let mut c = s.clone();
        c.crashes.remove(i);
        out.push(c);
    }
    for i in 0..s.flaps.len() {
        let mut c = s.clone();
        c.flaps.remove(i);
        out.push(c);
    }
    for i in 0..s.spikes.len() {
        let mut c = s.clone();
        c.spikes.remove(i);
        out.push(c);
    }
    if s.drop_probability > 0.0 {
        let mut c = s.clone();
        c.drop_probability = 0.0;
        out.push(c);
    }
    if s.duplicate_probability > 0.0 {
        let mut c = s.clone();
        c.duplicate_probability = 0.0;
        out.push(c);
    }
    if s.reorder_probability > 0.0 {
        let mut c = s.clone();
        c.reorder_probability = 0.0;
        c.reorder_jitter_ns = 0;
        out.push(c);
    }
    out
}

/// Delta-debug `schedule` to a 1-minimal reproducer: greedily adopt any
/// one-step simplification that still violates, until none does.
///
/// The returned schedule keeps the original seed, so the per-message
/// fault verdicts — hash-derived from `(seed, message id)` — replay
/// identically under the smaller plan.
pub fn shrink<T: ChaosTarget>(target: &mut T, schedule: &ChaosSchedule) -> ShrinkResult {
    let mut current = schedule.clone();
    let mut violations = target.run(&current).violations;
    let mut runs = 1;
    assert!(
        !violations.is_empty(),
        "shrink() needs a violating schedule to start from"
    );
    'outer: loop {
        for candidate in simplifications(&current) {
            let (outcome, journal) = target.run_recorded(&candidate);
            runs += 1;
            if !outcome.violations.is_empty() {
                // Before adopting a smaller reproducer, prove it replays:
                // a shrink step must never keep a candidate whose
                // violation is not bit-reproducible.
                if let Some(journal) = &journal {
                    let replay = target.run_replayed(&candidate, journal);
                    runs += 1;
                    assert_eq!(
                        outcome, replay,
                        "shrink adopted a non-reproducible candidate for {candidate}"
                    );
                }
                current = candidate;
                violations = outcome.violations;
                continue 'outer;
            }
        }
        break;
    }
    ShrinkResult {
        schedule: current,
        violations,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::CrashEvent;

    /// A synthetic target that "violates" iff the schedule both
    /// duplicates messages and crashes host 1 — a two-factor bug the
    /// shrinker must reduce to exactly those two factors.
    struct TwoFactorBug;

    impl ChaosTarget for TwoFactorBug {
        fn run(&mut self, s: &ChaosSchedule) -> RunOutcome {
            let dup = s.duplicate_probability > 0.0;
            let crash1 = s.crashes.iter().any(|c| c.host == 1);
            let violations = if dup && crash1 {
                vec![Violation::new("at-most-once", "double activation")]
            } else {
                Vec::new()
            };
            // Digest must depend on every schedule part so determinism
            // checks are meaningful.
            let digest = (s.seed << 8)
                ^ (s.crashes.len() as u64)
                ^ ((s.duplicate_probability.to_bits()) >> 1)
                ^ (s.flaps.len() as u64) << 3;
            RunOutcome { violations, digest }
        }
    }

    fn busy_schedule() -> ChaosSchedule {
        let mut s = ChaosSchedule::quiet(11);
        s.drop_probability = 0.01;
        s.duplicate_probability = 0.05;
        s.reorder_probability = 0.1;
        s.reorder_jitter_ns = 500;
        s.crashes = vec![
            CrashEvent { at_ns: 10, host: 0 },
            CrashEvent { at_ns: 20, host: 1 },
            CrashEvent { at_ns: 30, host: 2 },
        ];
        s
    }

    #[test]
    fn shrink_finds_the_minimal_two_factor_reproducer() {
        let mut t = TwoFactorBug;
        let r = shrink(&mut t, &busy_schedule());
        assert_eq!(r.schedule.crashes, vec![CrashEvent { at_ns: 20, host: 1 }]);
        assert!(r.schedule.duplicate_probability > 0.0);
        assert_eq!(r.schedule.drop_probability, 0.0);
        assert_eq!(r.schedule.reorder_probability, 0.0);
        assert!(r.schedule.spikes.is_empty());
        assert!(r.schedule.flaps.is_empty());
        assert_eq!(r.schedule.weight(), 2, "1-minimal: dup + crash(h1) only");
        assert_eq!(r.violations.len(), 1);
        assert!(r.runs > 1);
    }

    #[test]
    #[should_panic(expected = "violating schedule")]
    fn shrink_rejects_clean_schedules() {
        let mut t = TwoFactorBug;
        shrink(&mut t, &ChaosSchedule::quiet(1));
    }

    #[test]
    fn campaign_reports_and_shrinks_violations() {
        let mut t = TwoFactorBug;
        // Default bounds: hosts=4, so some seeds crash host 1 while
        // duplicating. Scan enough seeds to hit at least one.
        let report = run_campaign(&mut t, 0, 40, &ScheduleBounds::default());
        assert_eq!(report.seeds.len(), 40);
        let violating: Vec<_> = report.violating().collect();
        assert!(
            !violating.is_empty(),
            "40 seeds never combined duplication with a host-1 crash"
        );
        for v in &violating {
            let shrunk = v.shrunk.as_ref().expect("violating seeds are shrunk");
            assert_eq!(shrunk.schedule.weight(), 2);
            assert_eq!(shrunk.schedule.seed, v.seed, "reproducer keeps the seed");
        }
        assert!(!report.clean());
    }

    #[test]
    fn campaign_digest_is_stable() {
        let mut t = TwoFactorBug;
        let a = run_campaign(&mut t, 5, 10, &ScheduleBounds::default()).campaign_digest();
        let b = run_campaign(&mut t, 5, 10, &ScheduleBounds::default()).campaign_digest();
        assert_eq!(a, b);
    }
}
