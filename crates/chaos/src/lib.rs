//! Deterministic chaos campaigns for the Legion model.
//!
//! Distributed-system bugs hide in the cross product of fault timings; a
//! fixed test can only pin one point of it. This crate explores the space
//! the way property-based testing explores value space:
//!
//! 1. **generate** a random-but-seeded fault [`ChaosSchedule`] — message
//!    drops, duplication, reordering jitter, delay spikes, flapping
//!    partitions, endpoint crashes ([`schedule`]);
//! 2. **run** a full workload under it through a [`ChaosTarget`], which
//!    checks global invariants after quiescence (no lost or duplicated
//!    objects, binding coherence, every call resolved, no leaked
//!    continuations) and reports [`Violation`]s ([`campaign`]);
//! 3. on violation, **shrink** the schedule to a minimal reproducer —
//!    fewest crash/flap/spike events and fault probabilities still
//!    exhibiting the violation — and print the seed+schedule that
//!    reproduces it bit-for-bit.
//!
//! Everything is deterministic per seed: the schedule comes from a
//! [`SmallRng`](rand::rngs::SmallRng) seeded with the campaign seed, and
//! the fault verdicts inside the run are hash-derived per message, so a
//! printed reproducer replays exactly.

pub mod campaign;
pub mod schedule;

pub use campaign::{
    run_campaign, shrink, CampaignReport, ChaosTarget, RunOutcome, SeedReport, ShrinkResult,
    Violation,
};
pub use schedule::{ChaosSchedule, CrashEvent, ScheduleBounds};
