//! Seeded fault-schedule generation.
//!
//! A [`ChaosSchedule`] is the complete adversarial input of one chaos
//! run: ambient fault probabilities, timed delay spikes and partition
//! windows, and endpoint crash events. It is produced from a single
//! `u64` seed ([`ChaosSchedule::generate`]) and converts losslessly into
//! a [`FaultPlan`] for the kernel ([`ChaosSchedule::fault_plan`]), so a
//! printed `(seed, schedule)` pair is a bit-exact reproducer.

use legion_net::faults::{DelaySpike, FaultPlan, PartitionWindow};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A scheduled endpoint crash: at virtual time `at_ns`, the target kills
/// the host at index `host` (targets map indices onto their own host
/// lists, modulo length).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// Virtual time of the kill.
    pub at_ns: u64,
    /// Index into the target's crashable-host list.
    pub host: u32,
}

/// Envelope the generator draws schedules from.
#[derive(Debug, Clone)]
pub struct ScheduleBounds {
    /// Jurisdictions faults may reference (spike/flap endpoints).
    pub jurisdictions: u32,
    /// Crashable-host indices the generator may pick from.
    pub hosts: u32,
    /// Virtual-time horizon: every window and crash lands inside it.
    pub horizon_ns: u64,
    /// Ceiling for the ambient drop probability.
    pub max_drop: f64,
    /// Ceiling for the duplication probability.
    pub max_duplicate: f64,
    /// Ceiling for the reorder probability.
    pub max_reorder: f64,
    /// Ceiling for the reorder jitter window.
    pub max_jitter_ns: u64,
    /// Most delay spikes per schedule.
    pub max_spikes: usize,
    /// Most flapping-partition windows per schedule.
    pub max_flaps: usize,
    /// Most endpoint crashes per schedule.
    pub max_crashes: usize,
}

impl Default for ScheduleBounds {
    fn default() -> Self {
        ScheduleBounds {
            jurisdictions: 3,
            hosts: 4,
            horizon_ns: 2_000_000_000, // 2 virtual seconds
            max_drop: 0.05,
            max_duplicate: 0.10,
            max_reorder: 0.20,
            max_jitter_ns: 5_000_000, // 5 ms
            max_spikes: 2,
            max_flaps: 2,
            max_crashes: 2,
        }
    }
}

/// One run's complete adversarial input.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    /// The seed this schedule was generated from; also seeds the
    /// per-message fault verdicts inside the run.
    pub seed: u64,
    /// Ambient message-drop probability.
    pub drop_probability: f64,
    /// Ambient duplication probability.
    pub duplicate_probability: f64,
    /// Ambient reorder probability.
    pub reorder_probability: f64,
    /// Reorder perturbation window.
    pub reorder_jitter_ns: u64,
    /// Transient latency-multiplier windows.
    pub spikes: Vec<DelaySpike>,
    /// Scheduled partition/heal windows.
    pub flaps: Vec<PartitionWindow>,
    /// Scheduled endpoint crashes, sorted by time.
    pub crashes: Vec<CrashEvent>,
}

impl ChaosSchedule {
    /// A schedule with no faults at all (the shrinker's fixpoint floor).
    pub fn quiet(seed: u64) -> Self {
        ChaosSchedule {
            seed,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            reorder_jitter_ns: 0,
            spikes: Vec::new(),
            flaps: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Draw a schedule from `bounds`, deterministically per `seed`.
    pub fn generate(seed: u64, bounds: &ScheduleBounds) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let j = bounds.jurisdictions.max(2);
        let horizon = bounds.horizon_ns.max(2);
        // Each fault family is present in roughly half the schedules, so
        // campaigns cover both isolated faults and their combinations.
        let drop_probability = if rng.gen_bool(0.5) {
            rng.gen::<f64>() * bounds.max_drop
        } else {
            0.0
        };
        let duplicate_probability = if rng.gen_bool(0.5) {
            rng.gen::<f64>() * bounds.max_duplicate
        } else {
            0.0
        };
        let (reorder_probability, reorder_jitter_ns) = if rng.gen_bool(0.5) {
            (
                rng.gen::<f64>() * bounds.max_reorder,
                rng.gen_range(1..=bounds.max_jitter_ns.max(1)),
            )
        } else {
            (0.0, 0)
        };
        let mut spikes = Vec::new();
        for _ in 0..rng.gen_range(0..=bounds.max_spikes) {
            let from_ns = rng.gen_range(0..horizon / 2);
            let until_ns = rng.gen_range(from_ns + 1..=horizon);
            spikes.push(DelaySpike {
                jurisdiction: if rng.gen_bool(0.5) {
                    Some(rng.gen_range(0..j))
                } else {
                    None
                },
                from_ns,
                until_ns,
                multiplier: rng.gen_range(2..=10),
            });
        }
        let mut flaps = Vec::new();
        for _ in 0..rng.gen_range(0..=bounds.max_flaps) {
            let a = rng.gen_range(0..j);
            let b = (a + rng.gen_range(1..j)) % j;
            let from_ns = rng.gen_range(0..horizon / 2);
            // Flaps stay short relative to the horizon so the system has
            // room to heal and quiesce.
            let until_ns = (from_ns + rng.gen_range(1..=horizon / 4)).min(horizon);
            flaps.push(PartitionWindow {
                a,
                b,
                from_ns,
                until_ns,
            });
        }
        let mut crashes = Vec::new();
        if bounds.hosts > 0 {
            for _ in 0..rng.gen_range(0..=bounds.max_crashes) {
                crashes.push(CrashEvent {
                    // Crashes land in the first half so recovery fits
                    // inside the horizon.
                    at_ns: rng.gen_range(1..horizon / 2),
                    host: rng.gen_range(0..bounds.hosts),
                });
            }
        }
        crashes.sort_by_key(|c| (c.at_ns, c.host));
        ChaosSchedule {
            seed,
            drop_probability,
            duplicate_probability,
            reorder_probability,
            reorder_jitter_ns,
            spikes,
            flaps,
            crashes,
        }
    }

    /// The kernel-facing fault plan this schedule prescribes.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::seeded(self.seed);
        plan.set_drop_probability(self.drop_probability);
        plan.set_duplicate_probability(self.duplicate_probability);
        plan.set_reorder(self.reorder_probability, self.reorder_jitter_ns);
        for s in &self.spikes {
            plan.add_delay_spike(s.clone());
        }
        for f in &self.flaps {
            plan.add_flap(f.clone());
        }
        plan
    }

    /// Does this schedule inject any fault at all?
    pub fn is_quiet(&self) -> bool {
        self.drop_probability == 0.0
            && self.duplicate_probability == 0.0
            && self.reorder_probability == 0.0
            && self.spikes.is_empty()
            && self.flaps.is_empty()
            && self.crashes.is_empty()
    }

    /// How many removable parts the shrinker can attack.
    pub fn weight(&self) -> usize {
        self.spikes.len()
            + self.flaps.len()
            + self.crashes.len()
            + (self.drop_probability > 0.0) as usize
            + (self.duplicate_probability > 0.0) as usize
            + (self.reorder_probability > 0.0) as usize
    }
}

impl fmt::Display for ChaosSchedule {
    /// The schedule grammar printed for reproducers:
    /// `seed=S drop=P dup=P reorder=P/Jns spikes=[jK tA..B xM] flaps=[a~b tA..B] crashes=[hK@Tns]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={} drop={:.4} dup={:.4} reorder={:.4}/{}ns",
            self.seed,
            self.drop_probability,
            self.duplicate_probability,
            self.reorder_probability,
            self.reorder_jitter_ns
        )?;
        write!(f, " spikes=[")?;
        for (i, s) in self.spikes.iter().enumerate() {
            let sep = if i > 0 { " " } else { "" };
            match s.jurisdiction {
                Some(j) => write!(
                    f,
                    "{sep}j{j} t{}..{} x{}",
                    s.from_ns, s.until_ns, s.multiplier
                )?,
                None => write!(
                    f,
                    "{sep}all t{}..{} x{}",
                    s.from_ns, s.until_ns, s.multiplier
                )?,
            }
        }
        write!(f, "] flaps=[")?;
        for (i, w) in self.flaps.iter().enumerate() {
            let sep = if i > 0 { " " } else { "" };
            write!(f, "{sep}{}~{} t{}..{}", w.a, w.b, w.from_ns, w.until_ns)?;
        }
        write!(f, "] crashes=[")?;
        for (i, c) in self.crashes.iter().enumerate() {
            let sep = if i > 0 { " " } else { "" };
            write!(f, "{sep}h{}@{}ns", c.host, c.at_ns)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let bounds = ScheduleBounds::default();
        for seed in 0..50 {
            assert_eq!(
                ChaosSchedule::generate(seed, &bounds),
                ChaosSchedule::generate(seed, &bounds)
            );
        }
    }

    #[test]
    fn seeds_disagree() {
        let bounds = ScheduleBounds::default();
        let distinct = (0..20)
            .map(|s| format!("{}", ChaosSchedule::generate(s, &bounds)))
            .collect::<std::collections::BTreeSet<_>>();
        assert!(distinct.len() > 15, "schedules barely vary across seeds");
    }

    #[test]
    fn generated_parts_respect_bounds() {
        let bounds = ScheduleBounds::default();
        for seed in 0..200 {
            let s = ChaosSchedule::generate(seed, &bounds);
            assert!(s.drop_probability <= bounds.max_drop);
            assert!(s.duplicate_probability <= bounds.max_duplicate);
            assert!(s.reorder_probability <= bounds.max_reorder);
            assert!(s.spikes.len() <= bounds.max_spikes);
            assert!(s.flaps.len() <= bounds.max_flaps);
            assert!(s.crashes.len() <= bounds.max_crashes);
            for spike in &s.spikes {
                assert!(spike.from_ns < spike.until_ns);
                assert!(spike.multiplier >= 2);
            }
            for w in &s.flaps {
                assert!(w.a != w.b, "flap must name two jurisdictions");
                assert!(w.from_ns < w.until_ns);
            }
            for c in &s.crashes {
                assert!(c.at_ns < bounds.horizon_ns);
                assert!(c.host < bounds.hosts);
            }
            // Crash order is canonical.
            let mut sorted = s.crashes.clone();
            sorted.sort_by_key(|c| (c.at_ns, c.host));
            assert_eq!(sorted, s.crashes);
        }
    }

    #[test]
    fn fault_plan_round_trips_the_knobs() {
        let s = ChaosSchedule {
            seed: 7,
            drop_probability: 0.01,
            duplicate_probability: 0.02,
            reorder_probability: 0.1,
            reorder_jitter_ns: 1000,
            spikes: vec![DelaySpike {
                jurisdiction: Some(1),
                from_ns: 10,
                until_ns: 20,
                multiplier: 4,
            }],
            flaps: vec![PartitionWindow {
                a: 0,
                b: 2,
                from_ns: 5,
                until_ns: 9,
            }],
            crashes: vec![],
        };
        let plan = s.fault_plan();
        assert_eq!(plan.drop_probability(), 0.01);
        assert_eq!(plan.duplicate_probability(), 0.02);
        assert_eq!(plan.reorder(), (0.1, 1000));
        assert_eq!(plan.delay_spikes().len(), 1);
        assert_eq!(plan.flaps().len(), 1);
        assert!(plan.is_adversarial());
    }

    #[test]
    fn quiet_schedule_is_quiet() {
        let q = ChaosSchedule::quiet(3);
        assert!(q.is_quiet());
        assert_eq!(q.weight(), 0);
        assert!(!q.fault_plan().is_adversarial());
    }

    #[test]
    fn display_prints_the_grammar() {
        let mut s = ChaosSchedule::quiet(42);
        s.duplicate_probability = 0.05;
        s.crashes.push(CrashEvent { at_ns: 99, host: 1 });
        let text = format!("{s}");
        assert!(text.contains("seed=42"), "{text}");
        assert!(text.contains("dup=0.0500"), "{text}");
        assert!(text.contains("h1@99ns"), "{text}");
    }
}
