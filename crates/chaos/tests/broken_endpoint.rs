//! The campaign's reason to exist: catch a deliberately broken system.
//!
//! The kernel's at-most-once delivery (per-sender sequence numbers and a
//! receiver-side dedup window) normally shields endpoints from message
//! duplication. Here we disable it — modeling an endpoint that forgot
//! idempotence — run a chaos campaign, and check that (a) the violation
//! is caught, and (b) the shrinker reduces the violating schedule to the
//! single fault family that matters: duplication, nothing else.

use legion_chaos::{
    run_campaign, ChaosSchedule, ChaosTarget, RunOutcome, ScheduleBounds, Violation,
};
use legion_core::env::InvocationEnv;
use legion_core::loid::Loid;
use legion_net::message::Message;
use legion_net::sim::{Ctx, Endpoint, SimKernel};
use legion_net::topology::{Location, Topology};

/// A non-idempotent endpoint: every delivered call executes.
#[derive(Default)]
struct Counter {
    executions: u64,
}

impl Endpoint for Counter {
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, msg: Message) {
        if !msg.is_reply() {
            self.executions += 1;
        }
    }
}

/// Runs `CALLS` logical calls at a `Counter` under the schedule's fault
/// plan and audits at-most-once execution.
struct CounterTarget {
    /// When false, the kernel's dedup window is switched off — the
    /// "broken endpoint" under test.
    dedup: bool,
}

const CALLS: u64 = 200;

impl ChaosTarget for CounterTarget {
    fn run(&mut self, schedule: &ChaosSchedule) -> RunOutcome {
        let mut k = SimKernel::new(Topology::default(), schedule.fault_plan(), schedule.seed);
        k.set_dedup_enabled(self.dedup);
        let counter = k.add_endpoint(Box::new(Counter::default()), Location::new(0, 0), "counter");
        for _ in 0..CALLS {
            let id = k.fresh_call_id();
            let msg = Message::call(
                id,
                Loid::instance(9, 1),
                "Bump",
                vec![],
                InvocationEnv::anonymous(),
            );
            k.inject(Location::new(1, 0), counter.element(), msg);
        }
        k.run_until_quiescent(100_000);
        let executions = k.endpoint::<Counter>(counter).unwrap().executions;
        let stats = k.stats();
        let digest = executions
            ^ stats.sent.rotate_left(8)
            ^ stats.delivered.rotate_left(16)
            ^ stats.lost.rotate_left(24)
            ^ k.now().0.rotate_left(32);
        let mut violations = Vec::new();
        if executions > CALLS {
            violations.push(Violation::new(
                "at-most-once",
                format!("{executions} executions for {CALLS} logical calls"),
            ));
        }
        RunOutcome { violations, digest }
    }
}

fn bounds() -> ScheduleBounds {
    ScheduleBounds {
        // This target has no crashable hosts and only two locations.
        jurisdictions: 2,
        hosts: 0,
        max_duplicate: 0.15,
        ..ScheduleBounds::default()
    }
}

#[test]
fn dedup_protects_the_endpoint() {
    let mut target = CounterTarget { dedup: true };
    let report = run_campaign(&mut target, 0, 30, &bounds());
    assert!(
        report.clean(),
        "at-most-once delivery must absorb every duplicate: {:?}",
        report
            .violating()
            .flat_map(|s| &s.violations)
            .collect::<Vec<_>>()
    );
    // The campaign did exercise duplication somewhere.
    assert!(
        report
            .seeds
            .iter()
            .any(|s| s.schedule.duplicate_probability > 0.0),
        "campaign never generated duplication — bounds too tight"
    );
}

#[test]
fn broken_endpoint_is_caught_and_shrunk_to_duplication_alone() {
    let mut target = CounterTarget { dedup: false };
    let report = run_campaign(&mut target, 0, 30, &bounds());
    let violating: Vec<_> = report.violating().collect();
    assert!(
        !violating.is_empty(),
        "30 seeds of duplication never double-executed a call"
    );
    for seed in &violating {
        let shrunk = seed.shrunk.as_ref().expect("violating seeds are shrunk");
        let s = &shrunk.schedule;
        assert!(
            s.duplicate_probability > 0.0,
            "minimal reproducer must keep duplication: {s}"
        );
        assert_eq!(s.drop_probability, 0.0, "drops are noise here: {s}");
        assert!(s.flaps.is_empty(), "flaps are noise here: {s}");
        assert!(s.spikes.is_empty(), "spikes are noise here: {s}");
        assert_eq!(s.weight(), 1, "1-minimal reproducer: {s}");
        assert_eq!(s.seed, seed.seed, "reproducer replays under its seed");
        assert_eq!(
            shrunk.violations[0].invariant, "at-most-once",
            "shrunk schedule reproduces the same invariant breach"
        );
    }
}

#[test]
fn campaign_is_bit_reproducible() {
    let mut a = CounterTarget { dedup: false };
    let mut b = CounterTarget { dedup: false };
    let ra = run_campaign(&mut a, 100, 15, &bounds());
    let rb = run_campaign(&mut b, 100, 15, &bounds());
    assert_eq!(ra.campaign_digest(), rb.campaign_digest());
    for (x, y) in ra.seeds.iter().zip(rb.seeds.iter()) {
        assert_eq!(x.digest, y.digest, "seed {} diverged", x.seed);
        assert_eq!(x.violations, y.violations);
    }
}
