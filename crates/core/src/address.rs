//! Object Addresses (paper §3.4) and address semantics (§4.3).
//!
//! An **Object Address Element** is a 32-bit *address type* plus 256 bits
//! of address-specific information (IP + port, XTP, multiprocessor node
//! numbers, or — in this reproduction — a simulator endpoint id). An
//! **Object Address** is a list of elements together with *semantic
//! information that describes how to utilize the list*: send to all,
//! pick one at random, use `k` of `N`, and so on. The semantics field is
//! what makes system-level object replication possible without changing
//! application-level communication (§4.3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of bytes of address-specific information in an element (256 bits).
pub const ADDRESS_INFO_BYTES: usize = 32;

/// The 32-bit address type tag of an [`ObjectAddressElement`].
///
/// The paper envisions IP as "the first and most common type"; this
/// reproduction adds a `Sim` type for discrete-event endpoints and keeps
/// the tag space open for user extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AddressKind {
    /// IPv4 address + 16-bit port (48 of 256 bits used).
    Ipv4,
    /// XTP transport address.
    Xtp,
    /// IPv4 + port + 32-bit platform-specific node number (multiprocessors).
    Ipv4Node,
    /// A simulator endpoint (this reproduction's substrate).
    Sim,
    /// An extension type identified by its raw 32-bit tag.
    Other(u32),
}

impl AddressKind {
    /// The raw 32-bit tag.
    pub fn tag(self) -> u32 {
        match self {
            AddressKind::Ipv4 => 1,
            AddressKind::Xtp => 2,
            AddressKind::Ipv4Node => 3,
            AddressKind::Sim => 100,
            AddressKind::Other(t) => t,
        }
    }

    /// Reconstruct from a raw tag.
    pub fn from_tag(tag: u32) -> Self {
        match tag {
            1 => AddressKind::Ipv4,
            2 => AddressKind::Xtp,
            3 => AddressKind::Ipv4Node,
            100 => AddressKind::Sim,
            t => AddressKind::Other(t),
        }
    }
}

/// One physical address: a type tag plus 256 bits of information.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObjectAddressElement {
    /// What kind of address the info bytes encode.
    pub kind: AddressKind,
    /// 256 bits of address-specific information.
    pub info: [u8; ADDRESS_INFO_BYTES],
}

impl ObjectAddressElement {
    /// Build an IPv4 element: 32-bit address + 16-bit port (48 bits used,
    /// exactly as the paper describes).
    pub fn ipv4(addr: [u8; 4], port: u16) -> Self {
        let mut info = [0u8; ADDRESS_INFO_BYTES];
        info[..4].copy_from_slice(&addr);
        info[4..6].copy_from_slice(&port.to_be_bytes());
        ObjectAddressElement {
            kind: AddressKind::Ipv4,
            info,
        }
    }

    /// Build an IPv4+node element for multiprocessors: the extra 32-bit
    /// platform-specific internal node number distinguishes processors.
    pub fn ipv4_node(addr: [u8; 4], port: u16, node: u32) -> Self {
        let mut info = [0u8; ADDRESS_INFO_BYTES];
        info[..4].copy_from_slice(&addr);
        info[4..6].copy_from_slice(&port.to_be_bytes());
        info[6..10].copy_from_slice(&node.to_be_bytes());
        ObjectAddressElement {
            kind: AddressKind::Ipv4Node,
            info,
        }
    }

    /// Build a simulator-endpoint element from a 64-bit endpoint id.
    pub fn sim(endpoint: u64) -> Self {
        let mut info = [0u8; ADDRESS_INFO_BYTES];
        info[..8].copy_from_slice(&endpoint.to_be_bytes());
        ObjectAddressElement {
            kind: AddressKind::Sim,
            info,
        }
    }

    /// Extract the simulator endpoint id, if this is a `Sim` element.
    pub fn sim_endpoint(&self) -> Option<u64> {
        if self.kind == AddressKind::Sim {
            let mut b = [0u8; 8];
            b.copy_from_slice(&self.info[..8]);
            Some(u64::from_be_bytes(b))
        } else {
            None
        }
    }

    /// Extract `(addr, port)` if this is an IPv4 or IPv4+node element.
    pub fn ipv4_parts(&self) -> Option<([u8; 4], u16)> {
        match self.kind {
            AddressKind::Ipv4 | AddressKind::Ipv4Node => {
                let mut a = [0u8; 4];
                a.copy_from_slice(&self.info[..4]);
                let port = u16::from_be_bytes([self.info[4], self.info[5]]);
                Some((a, port))
            }
            _ => None,
        }
    }
}

impl fmt::Debug for ObjectAddressElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            AddressKind::Ipv4 => {
                let (a, p) = self.ipv4_parts().expect("ipv4 parts");
                write!(f, "ipv4:{}.{}.{}.{}:{}", a[0], a[1], a[2], a[3], p)
            }
            AddressKind::Ipv4Node => {
                let (a, p) = self.ipv4_parts().expect("ipv4 parts");
                let mut n = [0u8; 4];
                n.copy_from_slice(&self.info[6..10]);
                write!(
                    f,
                    "ipv4:{}.{}.{}.{}:{}#{}",
                    a[0],
                    a[1],
                    a[2],
                    a[3],
                    p,
                    u32::from_be_bytes(n)
                )
            }
            AddressKind::Sim => write!(f, "sim:{}", self.sim_endpoint().expect("sim endpoint")),
            AddressKind::Xtp => write!(f, "xtp:{:02x?}", &self.info[..6]),
            AddressKind::Other(t) => write!(f, "other({t}):{:02x?}", &self.info[..8]),
        }
    }
}

impl fmt::Display for ObjectAddressElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// How the element list of an [`ObjectAddress`] is to be used (§3.4, §4.3).
///
/// "The address semantic is intended to encapsulate various forms of
/// multicast communication ... all addresses should be sent to, one of the
/// addresses should be chosen at random, k of the N addresses in the list
/// should be used" — with provisions for user-definable options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AddressSemantics {
    /// Send to exactly the first (and typically only) element.
    #[default]
    Single,
    /// Send to every element in the list.
    SendToAll,
    /// Send to one element chosen uniformly at random.
    PickRandom,
    /// Send to `k` distinct elements chosen at random.
    KOfN(u32),
    /// Try elements in order until one succeeds (failover).
    FirstReachable,
    /// A user-defined semantic identified by a 32-bit tag; the transport
    /// layer must be taught how to interpret it.
    User(u32),
}

impl AddressSemantics {
    /// Given `n` available elements, how many a single send fans out to.
    /// `FirstReachable` counts as one attempt (retries are accounted
    /// separately by the transport).
    pub fn fanout(&self, n: usize) -> usize {
        match self {
            AddressSemantics::Single => usize::from(n > 0),
            AddressSemantics::SendToAll => n,
            AddressSemantics::PickRandom => usize::from(n > 0),
            AddressSemantics::KOfN(k) => (*k as usize).min(n),
            AddressSemantics::FirstReachable => usize::from(n > 0),
            AddressSemantics::User(_) => usize::from(n > 0),
        }
    }
}

/// A full Object Address: element list + usage semantics (§3.4).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObjectAddress {
    /// The physical address elements.
    pub elements: Vec<ObjectAddressElement>,
    /// How to use the list.
    pub semantics: AddressSemantics,
}

impl ObjectAddress {
    /// A single-element address with [`AddressSemantics::Single`].
    pub fn single(element: ObjectAddressElement) -> Self {
        ObjectAddress {
            elements: vec![element],
            semantics: AddressSemantics::Single,
        }
    }

    /// A replicated address over `elements` with the given semantics.
    pub fn replicated(elements: Vec<ObjectAddressElement>, semantics: AddressSemantics) -> Self {
        ObjectAddress {
            elements,
            semantics,
        }
    }

    /// Is the element list empty?
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Number of elements (replica count).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// The first element, if any — the common single-process case.
    pub fn primary(&self) -> Option<&ObjectAddressElement> {
        self.elements.first()
    }
}

impl fmt::Display for ObjectAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.elements.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "] {:?}", self.semantics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_element_roundtrip() {
        let e = ObjectAddressElement::ipv4([10, 0, 0, 7], 8080);
        assert_eq!(e.ipv4_parts(), Some(([10, 0, 0, 7], 8080)));
        assert_eq!(e.sim_endpoint(), None);
        assert_eq!(format!("{e}"), "ipv4:10.0.0.7:8080");
    }

    #[test]
    fn ipv4_node_element_roundtrip() {
        let e = ObjectAddressElement::ipv4_node([192, 168, 1, 2], 9000, 17);
        assert_eq!(e.ipv4_parts(), Some(([192, 168, 1, 2], 9000)));
        assert_eq!(format!("{e}"), "ipv4:192.168.1.2:9000#17");
    }

    #[test]
    fn sim_element_roundtrip() {
        let e = ObjectAddressElement::sim(123_456);
        assert_eq!(e.sim_endpoint(), Some(123_456));
        assert_eq!(e.ipv4_parts(), None);
    }

    #[test]
    fn kind_tag_roundtrip() {
        for k in [
            AddressKind::Ipv4,
            AddressKind::Xtp,
            AddressKind::Ipv4Node,
            AddressKind::Sim,
            AddressKind::Other(7777),
        ] {
            assert_eq!(AddressKind::from_tag(k.tag()), k);
        }
    }

    #[test]
    fn fanout_semantics() {
        assert_eq!(AddressSemantics::Single.fanout(4), 1);
        assert_eq!(AddressSemantics::Single.fanout(0), 0);
        assert_eq!(AddressSemantics::SendToAll.fanout(4), 4);
        assert_eq!(AddressSemantics::PickRandom.fanout(4), 1);
        assert_eq!(AddressSemantics::KOfN(3).fanout(4), 3);
        assert_eq!(AddressSemantics::KOfN(9).fanout(4), 4);
        assert_eq!(AddressSemantics::FirstReachable.fanout(4), 1);
    }

    #[test]
    fn single_address() {
        let a = ObjectAddress::single(ObjectAddressElement::sim(1));
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
        assert_eq!(a.primary().unwrap().sim_endpoint(), Some(1));
        assert_eq!(a.semantics, AddressSemantics::Single);
    }

    #[test]
    fn replicated_address_display() {
        let a = ObjectAddress::replicated(
            vec![ObjectAddressElement::sim(1), ObjectAddressElement::sim(2)],
            AddressSemantics::SendToAll,
        );
        let s = a.to_string();
        assert!(s.contains("sim:1") && s.contains("sim:2") && s.contains("SendToAll"));
    }

    #[test]
    fn empty_address() {
        let a = ObjectAddress {
            elements: vec![],
            semantics: AddressSemantics::Single,
        };
        assert!(a.is_empty());
        assert!(a.primary().is_none());
    }
}
