//! Process-wide allocation counters (the safe half of the counting
//! allocator).
//!
//! `legion-bench` registers a counting global allocator in its bench and
//! test binaries; the allocator's `unsafe impl GlobalAlloc` cannot live
//! here (this crate forbids unsafe code), so the split is: the atomics
//! and their read/probe API live in core where *any* layer can read them
//! — the kernel profiler in `legion-net` attributes allocator pressure
//! per endpoint × method — while the allocator itself stays in
//! `legion_bench::alloc_counter` and calls [`on_alloc`] from its hooks.
//!
//! The counters are monotone (frees are not subtracted): the interesting
//! quantity is allocator *pressure*, not live bytes. In a binary without
//! a counting allocator registered they simply stay at zero, so library
//! code can read them unconditionally.

use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Record one allocation of `bytes` bytes. Called by a counting global
/// allocator on every `alloc`/`realloc`; not meant for ordinary code.
#[inline]
pub fn on_alloc(bytes: u64) {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    ALLOCATED_BYTES.fetch_add(bytes, Ordering::Relaxed);
}

/// Cumulative `(allocations, bytes)` since process start. Zero unless a
/// counting global allocator is registered.
pub fn counts() -> (u64, u64) {
    (
        ALLOCATIONS.load(Ordering::Relaxed),
        ALLOCATED_BYTES.load(Ordering::Relaxed),
    )
}

/// Is a counting allocator actually registered? Detected by allocating a
/// small box and checking that the counter moved — lets tests assert the
/// harness is wired rather than silently measuring zeros.
pub fn is_counting() -> bool {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let probe = Box::new([0u8; 32]);
    std::hint::black_box(&probe);
    ALLOCATIONS.load(Ordering::Relaxed) > before
}
