//! Bindings (paper §3.5): first-class ⟨LOID, Object Address, expiry⟩ triples.
//!
//! "Bindings from LOID's to Object Addresses in Legion are implemented as
//! simple triples ... Bindings are first class entities that can be passed
//! around the system and cached within objects." The caches, Binding
//! Agents and the resolution protocol live in `legion-naming`; the triple
//! itself is core model vocabulary and lives here so that class objects,
//! Magistrates and the value type can all speak it.

use crate::address::ObjectAddress;
use crate::loid::Loid;
use crate::time::{Expiry, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A binding triple: the LOID, the Object Address it maps to, and the time
/// at which the binding becomes invalid (§3.5).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Binding {
    /// The Legion name being bound.
    pub loid: Loid,
    /// The physical address(es) the name maps to.
    pub address: ObjectAddress,
    /// When the binding stops being valid; `Expiry::Never` means it will
    /// "never become explicitly invalid".
    pub expiry: Expiry,
}

impl Binding {
    /// A binding that never explicitly expires.
    pub fn forever(loid: Loid, address: ObjectAddress) -> Self {
        Binding {
            loid,
            address,
            expiry: Expiry::Never,
        }
    }

    /// A binding valid for `ttl_ns` simulated nanoseconds from `now`.
    pub fn with_ttl(loid: Loid, address: ObjectAddress, now: SimTime, ttl_ns: u64) -> Self {
        Binding {
            loid,
            address,
            expiry: Expiry::after(now, ttl_ns),
        }
    }

    /// Is the binding still valid at virtual time `now`?
    #[inline]
    pub fn is_valid_at(&self, now: SimTime) -> bool {
        self.expiry.is_valid_at(now)
    }
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} (expires {})",
            self.loid, self.address, self.expiry
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::ObjectAddressElement;

    fn addr(ep: u64) -> ObjectAddress {
        ObjectAddress::single(ObjectAddressElement::sim(ep))
    }

    #[test]
    fn forever_binding_never_expires() {
        let b = Binding::forever(Loid::instance(1, 1), addr(9));
        assert!(b.is_valid_at(SimTime::ZERO));
        assert!(b.is_valid_at(SimTime::NEVER));
    }

    #[test]
    fn ttl_binding_expires() {
        let now = SimTime::from_secs(10);
        let b = Binding::with_ttl(Loid::instance(1, 1), addr(9), now, 1_000_000);
        assert!(b.is_valid_at(now));
        assert!(b.is_valid_at(now + 999_999));
        assert!(!b.is_valid_at(now + 1_000_000));
    }

    #[test]
    fn display_mentions_all_parts() {
        let b = Binding::forever(Loid::instance(2, 3), addr(4));
        let s = b.to_string();
        assert!(s.contains("->") && s.contains("sim:4") && s.contains("never"));
    }

    #[test]
    fn bindings_are_first_class_values() {
        // Clone + Eq + Hash: can be cached, compared, and passed around.
        use std::collections::HashSet;
        let b = Binding::forever(Loid::instance(2, 3), addr(4));
        let mut set = HashSet::new();
        set.insert(b.clone());
        assert!(set.contains(&b));
    }
}
