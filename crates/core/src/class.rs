//! Class objects and the logical table (paper §2.1.2, §3.7).
//!
//! Every Legion object belongs to a class, and each class is itself a
//! Legion object. Class objects export the **class-mandatory** member
//! functions — `Create()`, `Derive()`, `InheritFrom()`, `Delete()`,
//! `GetBinding()`, `GetInterface()` — and each *logically* maintains a
//! table with one row per object it created (instance or subclass):
//! LOID, Object Address, Current Magistrate List, Scheduling Agent, and
//! Candidate Magistrate List.
//!
//! The orchestration of `Create`/`Derive`/`InheritFrom` across classes
//! (issuing Class Identifiers, recording responsibility pairs, composing
//! interfaces) is done by [`crate::model::ObjectModel`]; this module is the
//! per-class state and rules.

use crate::address::ObjectAddress;
use crate::binding::Binding;
use crate::error::{CoreError, CoreResult};
use crate::interface::{Interface, MethodSignature, ParamType};
use crate::loid::{Loid, LoidAllocator};
use crate::time::Expiry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Canonical class-mandatory method names.
pub mod methods {
    /// Instantiate a new non-class object (is-a relation).
    pub const CREATE: &str = "Create";
    /// Create a new subclass (kind-of relation).
    pub const DERIVE: &str = "Derive";
    /// Add a base class (inherits-from relation).
    pub const INHERIT_FROM: &str = "InheritFrom";
    /// Remove an instance or subclass from existence.
    pub const DELETE: &str = "Delete";
    /// Return a binding for an instance/subclass this class created.
    pub const GET_BINDING: &str = "GetBinding";
    /// Return the interface instances of this class will export.
    pub const GET_INTERFACE: &str = "GetInterface";
}

/// The class-mandatory interface, attributed to `provider` (normally the
/// `LegionClass` metaclass — all classes eventually derive from it, §2.1.3).
pub fn class_mandatory_interface(provider: Loid) -> Interface {
    let mut i = Interface::new();
    i.define(
        MethodSignature::new(methods::CREATE, vec![], ParamType::Loid),
        provider,
    );
    i.define(
        MethodSignature::new(
            methods::DERIVE,
            vec![("name", ParamType::Str)],
            ParamType::Loid,
        ),
        provider,
    );
    i.define(
        MethodSignature::new(
            methods::INHERIT_FROM,
            vec![("base", ParamType::Loid)],
            ParamType::Void,
        ),
        provider,
    );
    i.define(
        MethodSignature::new(
            methods::DELETE,
            vec![("target", ParamType::Loid)],
            ParamType::Void,
        ),
        provider,
    );
    i.define(
        MethodSignature::new(
            methods::GET_BINDING,
            vec![("target", ParamType::Loid)],
            ParamType::Binding,
        ),
        provider,
    );
    i.define(
        MethodSignature::new(methods::GET_INTERFACE, vec![], ParamType::Str),
        provider,
    );
    i
}

/// The three "special types of Legion classes" (§2.1.2), expressed as
/// independent flags: a class may be any combination of Abstract, Private,
/// and Fixed (each is "an overload to a possibly empty member function").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct ClassKind {
    /// `Create()` is empty: no direct instances can exist.
    pub is_abstract: bool,
    /// `Derive()` is empty: no subclasses, only instances.
    pub is_private: bool,
    /// `InheritFrom()` is empty: inherits only from its superclass.
    pub is_fixed: bool,
}

impl ClassKind {
    /// A plain class: instances, subclasses, and bases all allowed.
    pub const NORMAL: ClassKind = ClassKind {
        is_abstract: false,
        is_private: false,
        is_fixed: false,
    };
    /// An Abstract class (empty `Create`).
    pub const ABSTRACT: ClassKind = ClassKind {
        is_abstract: true,
        is_private: false,
        is_fixed: false,
    };
    /// A Private class (empty `Derive`).
    pub const PRIVATE: ClassKind = ClassKind {
        is_abstract: false,
        is_private: true,
        is_fixed: false,
    };
    /// A Fixed class (empty `InheritFrom`).
    pub const FIXED: ClassKind = ClassKind {
        is_abstract: false,
        is_private: false,
        is_fixed: true,
    };
}

impl fmt::Display for ClassKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.is_abstract {
            parts.push("Abstract");
        }
        if self.is_private {
            parts.push("Private");
        }
        if self.is_fixed {
            parts.push("Fixed");
        }
        if parts.is_empty() {
            write!(f, "Normal")
        } else {
            write!(f, "{}", parts.join("+"))
        }
    }
}

/// The Candidate Magistrate List field (§3.7): "this field could be
/// implemented as a simple list, but more likely it will need to
/// encapsulate more sophisticated information, such as 'no restriction' or
/// 'all Magistrates with a given security policy'".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CandidateMagistrates {
    /// Any Magistrate may be given responsibility for the object.
    #[default]
    NoRestriction,
    /// Only these Magistrates may be responsible.
    Explicit(Vec<Loid>),
    /// Only Magistrates carrying this trust label (interpreted by
    /// `legion-security`'s trust sets) may be responsible.
    TrustLabel(String),
}

impl CandidateMagistrates {
    /// Is `magistrate` an acceptable candidate? `TrustLabel` requires the
    /// caller to resolve the label to a set first; `labelled` is that set.
    pub fn permits(&self, magistrate: Loid, labelled: Option<&[Loid]>) -> bool {
        match self {
            CandidateMagistrates::NoRestriction => true,
            CandidateMagistrates::Explicit(list) => list.contains(&magistrate),
            CandidateMagistrates::TrustLabel(_) => {
                labelled.is_some_and(|set| set.contains(&magistrate))
            }
        }
    }
}

/// One row of the logical table (§3.7, Figure 16).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableEntry {
    /// Object Address of the object if Active and known to the class;
    /// `None` if Inert or unknown ("NIL" in the paper).
    pub address: Option<ObjectAddress>,
    /// Magistrates currently holding an OPR for the object ("typically,
    /// only one Magistrate will have a copy").
    pub current_magistrates: Vec<Loid>,
    /// The Scheduling Agent responsible for this object; inherited from
    /// the class default unless explicitly specified.
    pub scheduling_agent: Option<Loid>,
    /// Which Magistrates may be given responsibility for the object.
    pub candidate_magistrates: CandidateMagistrates,
    /// Whether the row names a subclass (vs an instance).
    pub is_subclass: bool,
}

impl TableEntry {
    /// A fresh row for a newly created object.
    pub fn new(is_subclass: bool) -> Self {
        TableEntry {
            address: None,
            current_magistrates: Vec::new(),
            scheduling_agent: None,
            candidate_magistrates: CandidateMagistrates::NoRestriction,
            is_subclass,
        }
    }
}

/// The logical table a class object maintains about the objects it created.
///
/// "In practice, the class object may employ other Legion objects, such as
/// database servers, to maintain some or all of the information" — here it
/// is an in-memory map, but the interface is the paper's.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LogicalTable {
    rows: BTreeMap<Loid, TableEntry>,
}

impl LogicalTable {
    /// An empty table.
    pub fn new() -> Self {
        LogicalTable::default()
    }

    /// Number of rows (objects this class is responsible for).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a row for a newly created object.
    pub fn insert(&mut self, loid: Loid, entry: TableEntry) {
        self.rows.insert(loid, entry);
    }

    /// Fetch a row.
    pub fn get(&self, loid: &Loid) -> Option<&TableEntry> {
        self.rows.get(loid)
    }

    /// Fetch a row mutably.
    pub fn get_mut(&mut self, loid: &Loid) -> Option<&mut TableEntry> {
        self.rows.get_mut(loid)
    }

    /// Remove a row (the object was deleted).
    pub fn remove(&mut self, loid: &Loid) -> Option<TableEntry> {
        self.rows.remove(loid)
    }

    /// Record the Object Address of an Active object.
    pub fn set_address(&mut self, loid: &Loid, address: Option<ObjectAddress>) -> bool {
        match self.rows.get_mut(loid) {
            Some(e) => {
                e.address = address;
                true
            }
            None => false,
        }
    }

    /// Record that `magistrate` holds an OPR for `loid` (idempotent).
    pub fn add_magistrate(&mut self, loid: &Loid, magistrate: Loid) -> bool {
        match self.rows.get_mut(loid) {
            Some(e) => {
                if !e.current_magistrates.contains(&magistrate) {
                    e.current_magistrates.push(magistrate);
                }
                true
            }
            None => false,
        }
    }

    /// Record that `magistrate` no longer holds an OPR for `loid`.
    pub fn remove_magistrate(&mut self, loid: &Loid, magistrate: Loid) -> bool {
        match self.rows.get_mut(loid) {
            Some(e) => {
                e.current_magistrates.retain(|m| *m != magistrate);
                true
            }
            None => false,
        }
    }

    /// Iterate over rows in LOID order.
    pub fn iter(&self) -> impl Iterator<Item = (&Loid, &TableEntry)> {
        self.rows.iter()
    }
}

/// A Legion class object: per-class state behind the class-mandatory
/// member functions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassObject {
    /// The class object's own LOID (Class Specific = 0).
    pub loid: Loid,
    /// Human-readable name (from the IDL or Derive call).
    pub name: String,
    /// Abstract / Private / Fixed flags.
    pub kind: ClassKind,
    /// The superclass this class was derived from (`None` only for
    /// `LegionObject`, the sink of the kind-of ∪ is-a graph).
    pub superclass: Option<Loid>,
    /// Base classes added via `InheritFrom`, in call order.
    pub bases: Vec<Loid>,
    /// The interface this class's *instances* export: own methods merged
    /// with the superclass's interface at Derive time and with each base's
    /// at InheritFrom time.
    pub interface: Interface,
    /// Default Scheduling Agent inherited by each created object unless a
    /// different one is specified (§3.7).
    pub default_scheduling_agent: Option<Loid>,
    /// Allocator for instance LOIDs.
    allocator: LoidAllocator,
    /// The logical table of §3.7.
    pub table: LogicalTable,
    /// Set when the class has been deleted.
    pub deleted: bool,
}

impl ClassObject {
    /// Construct a class object shell. Interface composition and relation
    /// bookkeeping are the model's job ([`crate::model::ObjectModel`]).
    pub fn new(loid: Loid, name: impl Into<String>, kind: ClassKind) -> Self {
        assert!(
            loid.is_class(),
            "class object LOIDs have Class Specific = 0"
        );
        ClassObject {
            name: name.into(),
            kind,
            superclass: None,
            bases: Vec::new(),
            interface: Interface::new(),
            default_scheduling_agent: None,
            allocator: LoidAllocator::new(loid.class_id),
            table: LogicalTable::new(),
            loid,
            deleted: false,
        }
    }

    /// `Create()`'s local half: allocate an instance LOID and add its
    /// table row. Fails on Abstract classes (§2.1.2) and deleted classes.
    pub fn create_instance(&mut self) -> CoreResult<Loid> {
        if self.deleted {
            return Err(CoreError::Deleted(self.loid));
        }
        if self.kind.is_abstract {
            return Err(CoreError::AbstractClass(self.loid));
        }
        let loid = self.allocator.next()?;
        let mut entry = TableEntry::new(false);
        entry.scheduling_agent = self.default_scheduling_agent;
        self.table.insert(loid, entry);
        Ok(loid)
    }

    /// `Derive()`'s local half: record responsibility for a subclass whose
    /// LOID was issued by LegionClass. Fails on Private classes (§2.1.2).
    pub fn record_subclass(&mut self, subclass: Loid) -> CoreResult<()> {
        if self.deleted {
            return Err(CoreError::Deleted(self.loid));
        }
        if self.kind.is_private {
            return Err(CoreError::PrivateClass(self.loid));
        }
        let mut entry = TableEntry::new(true);
        entry.scheduling_agent = self.default_scheduling_agent;
        self.table.insert(subclass, entry);
        Ok(())
    }

    /// `InheritFrom()`'s local half: merge `base_interface` into this
    /// class's interface and record the base. Fails on Fixed classes.
    /// Cycle checking is the model's job (it sees the whole graph).
    pub fn inherit_from(&mut self, base: Loid, base_interface: &Interface) -> CoreResult<()> {
        if self.deleted {
            return Err(CoreError::Deleted(self.loid));
        }
        if self.kind.is_fixed {
            return Err(CoreError::FixedClass(self.loid));
        }
        if !base.is_class() {
            return Err(CoreError::NotAClass(base));
        }
        self.interface
            .merge_from_with_owner(base_interface, self.loid)?;
        if !self.bases.contains(&base) {
            self.bases.push(base);
        }
        Ok(())
    }

    /// `Delete()`'s local half: drop the table row for `target`.
    pub fn delete_child(&mut self, target: &Loid) -> CoreResult<TableEntry> {
        self.table
            .remove(target)
            .ok_or(CoreError::UnknownLoid(*target))
    }

    /// `GetBinding()`: return a binding for an object this class created,
    /// if its Object Address is currently known (§3.7). A `None` means the
    /// object is Inert or its address is unknown — the caller must go
    /// through a Magistrate in the row's Current Magistrate List.
    pub fn get_binding(&self, target: &Loid) -> CoreResult<Option<Binding>> {
        let entry = self
            .table
            .get(target)
            .ok_or(CoreError::UnknownLoid(*target))?;
        Ok(entry.address.clone().map(|address| Binding {
            loid: *target,
            address,
            expiry: Expiry::Never,
        }))
    }

    /// How many LOIDs this class has handed out.
    pub fn instances_allocated(&self) -> u64 {
        self.allocator.allocated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::{ObjectAddress, ObjectAddressElement};
    use crate::wellknown;

    fn fresh(kind: ClassKind) -> ClassObject {
        ClassObject::new(Loid::class_object(30), "TestClass", kind)
    }

    fn addr(ep: u64) -> ObjectAddress {
        ObjectAddress::single(ObjectAddressElement::sim(ep))
    }

    #[test]
    fn class_mandatory_interface_is_complete() {
        let i = class_mandatory_interface(wellknown::LEGION_CLASS);
        for m in [
            methods::CREATE,
            methods::DERIVE,
            methods::INHERIT_FROM,
            methods::DELETE,
            methods::GET_BINDING,
            methods::GET_INTERFACE,
        ] {
            assert!(i.contains(m), "missing {m}");
        }
    }

    #[test]
    fn create_allocates_sequential_instances() {
        let mut c = fresh(ClassKind::NORMAL);
        let a = c.create_instance().unwrap();
        let b = c.create_instance().unwrap();
        assert_eq!(a.class_id, c.loid.class_id);
        assert_eq!(a.class_specific, 1);
        assert_eq!(b.class_specific, 2);
        assert_eq!(c.table.len(), 2);
        assert_eq!(c.instances_allocated(), 2);
        assert!(!c.table.get(&a).unwrap().is_subclass);
    }

    #[test]
    fn abstract_class_refuses_create() {
        let mut c = fresh(ClassKind::ABSTRACT);
        assert_eq!(c.create_instance(), Err(CoreError::AbstractClass(c.loid)));
    }

    #[test]
    fn private_class_refuses_derive() {
        let mut c = fresh(ClassKind::PRIVATE);
        assert_eq!(
            c.record_subclass(Loid::class_object(31)),
            Err(CoreError::PrivateClass(c.loid))
        );
        // But instances are fine: "Private class objects can have no
        // derived classes, just instances."
        assert!(c.create_instance().is_ok());
    }

    #[test]
    fn fixed_class_refuses_inherit_from() {
        let mut c = fresh(ClassKind::FIXED);
        let base = Interface::new();
        assert_eq!(
            c.inherit_from(Loid::class_object(31), &base),
            Err(CoreError::FixedClass(c.loid))
        );
    }

    #[test]
    fn inherit_from_merges_interface_and_records_base() {
        let mut c = fresh(ClassKind::NORMAL);
        let base_cls = Loid::class_object(31);
        let mut base_if = Interface::new();
        base_if.define(
            MethodSignature::new("Render", vec![], ParamType::Void),
            base_cls,
        );
        c.inherit_from(base_cls, &base_if).unwrap();
        assert!(c.interface.contains("Render"));
        assert_eq!(c.bases, vec![base_cls]);
        // Idempotent base recording.
        c.inherit_from(base_cls, &base_if).unwrap();
        assert_eq!(c.bases.len(), 1);
    }

    #[test]
    fn inherit_from_rejects_non_class() {
        let mut c = fresh(ClassKind::NORMAL);
        let inst = Loid::instance(31, 5);
        assert_eq!(
            c.inherit_from(inst, &Interface::new()),
            Err(CoreError::NotAClass(inst))
        );
    }

    #[test]
    fn deleted_class_refuses_everything() {
        let mut c = fresh(ClassKind::NORMAL);
        c.deleted = true;
        assert!(matches!(c.create_instance(), Err(CoreError::Deleted(_))));
        assert!(matches!(
            c.record_subclass(Loid::class_object(31)),
            Err(CoreError::Deleted(_))
        ));
        assert!(matches!(
            c.inherit_from(Loid::class_object(31), &Interface::new()),
            Err(CoreError::Deleted(_))
        ));
    }

    #[test]
    fn get_binding_reflects_table_address() {
        let mut c = fresh(ClassKind::NORMAL);
        let o = c.create_instance().unwrap();
        // Inert: row exists, no address.
        assert_eq!(c.get_binding(&o).unwrap(), None);
        c.table.set_address(&o, Some(addr(7)));
        let b = c.get_binding(&o).unwrap().unwrap();
        assert_eq!(b.loid, o);
        assert_eq!(b.address, addr(7));
        // Unknown object is an error, not None.
        assert!(matches!(
            c.get_binding(&Loid::instance(30, 999)),
            Err(CoreError::UnknownLoid(_))
        ));
    }

    #[test]
    fn magistrate_list_add_remove() {
        let mut c = fresh(ClassKind::NORMAL);
        let o = c.create_instance().unwrap();
        let m = Loid::instance(wellknown::LEGION_MAGISTRATE_CLASS_ID, 1);
        assert!(c.table.add_magistrate(&o, m));
        assert!(c.table.add_magistrate(&o, m), "idempotent add");
        assert_eq!(c.table.get(&o).unwrap().current_magistrates, vec![m]);
        assert!(c.table.remove_magistrate(&o, m));
        assert!(c.table.get(&o).unwrap().current_magistrates.is_empty());
        assert!(!c.table.add_magistrate(&Loid::instance(30, 99), m));
    }

    #[test]
    fn delete_child_removes_row() {
        let mut c = fresh(ClassKind::NORMAL);
        let o = c.create_instance().unwrap();
        assert!(c.delete_child(&o).is_ok());
        assert!(matches!(c.delete_child(&o), Err(CoreError::UnknownLoid(_))));
    }

    #[test]
    fn default_scheduling_agent_is_inherited_by_rows() {
        let mut c = fresh(ClassKind::NORMAL);
        let sched = Loid::instance(40, 1);
        c.default_scheduling_agent = Some(sched);
        let o = c.create_instance().unwrap();
        assert_eq!(c.table.get(&o).unwrap().scheduling_agent, Some(sched));
    }

    #[test]
    fn candidate_magistrates_permit_logic() {
        let m1 = Loid::instance(4, 1);
        let m2 = Loid::instance(4, 2);
        assert!(CandidateMagistrates::NoRestriction.permits(m1, None));
        let explicit = CandidateMagistrates::Explicit(vec![m1]);
        assert!(explicit.permits(m1, None));
        assert!(!explicit.permits(m2, None));
        let label = CandidateMagistrates::TrustLabel("doe".into());
        assert!(!label.permits(m1, None));
        assert!(label.permits(m1, Some(&[m1])));
        assert!(!label.permits(m2, Some(&[m1])));
    }

    #[test]
    fn class_kind_display() {
        assert_eq!(ClassKind::NORMAL.to_string(), "Normal");
        assert_eq!(ClassKind::ABSTRACT.to_string(), "Abstract");
        let combo = ClassKind {
            is_abstract: true,
            is_private: false,
            is_fixed: true,
        };
        assert_eq!(combo.to_string(), "Abstract+Fixed");
    }
}
