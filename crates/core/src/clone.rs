//! Class cloning for hot classes (paper §5.2.2).
//!
//! "The problem of popular class objects becoming bottlenecks can be
//! alleviated by 'cloning' class objects when they become heavily used.
//! The cloned class is derived from the heavily used class without
//! changing the interface in any way. New instantiation and derivation
//! requests are passed to the cloned object, making it responsible for the
//! new objects. Further, several clones can exist simultaneously, with the
//! different clones residing in different domains."
//!
//! [`CloneSet`] manages a hot class and its clones, dispatching creation
//! requests round-robin (experiment E6 measures the resulting throughput);
//! [`clone_class`] performs the derivation-without-interface-change.

use crate::error::{CoreError, CoreResult};
use crate::loid::Loid;
use crate::model::ObjectModel;
use serde::{Deserialize, Serialize};

/// Derive a clone of `original`: a subclass with the identical interface
/// and kind flags. Returns the clone's LOID.
pub fn clone_class(model: &mut ObjectModel, original: Loid) -> CoreResult<Loid> {
    let (name, kind) = {
        let c = model.class(&original)?;
        (format!("{}#clone", c.name), c.kind)
    };
    if kind.is_private {
        // A Private class cannot be derived from, so it cannot be cloned;
        // surface the underlying rule rather than a partial clone.
        return Err(CoreError::PrivateClass(original));
    }
    let clone = model.derive(original, name, kind)?;
    debug_assert_eq!(
        model.class(&clone)?.interface,
        model.class(&original)?.interface,
        "cloning must not change the interface in any way"
    );
    Ok(clone)
}

/// A hot class together with its clones, dispatching new-object requests
/// across the set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CloneSet {
    original: Loid,
    clones: Vec<Loid>,
    next: usize,
    /// Requests dispatched to each member (original first), for load
    /// accounting in E6.
    dispatched: Vec<u64>,
}

impl CloneSet {
    /// A set containing only the original (no clones yet).
    pub fn new(original: Loid) -> Self {
        CloneSet {
            original,
            clones: Vec::new(),
            next: 0,
            dispatched: vec![0],
        }
    }

    /// The hot class.
    pub fn original(&self) -> Loid {
        self.original
    }

    /// The clones, in creation order.
    pub fn clones(&self) -> &[Loid] {
        &self.clones
    }

    /// Total members (original + clones).
    pub fn len(&self) -> usize {
        1 + self.clones.len()
    }

    /// A clone set is never empty (the original is always a member).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Derive one more clone and add it to the set.
    pub fn grow(&mut self, model: &mut ObjectModel) -> CoreResult<Loid> {
        let clone = clone_class(model, self.original)?;
        self.clones.push(clone);
        self.dispatched.push(0);
        Ok(clone)
    }

    /// Pick the member that should service the next creation request
    /// (round-robin across original + clones).
    pub fn pick(&mut self) -> Loid {
        let n = self.len();
        let idx = self.next % n;
        self.next = (self.next + 1) % n;
        self.dispatched[idx] += 1;
        if idx == 0 {
            self.original
        } else {
            self.clones[idx - 1]
        }
    }

    /// Create an instance through the set; the instance is-a whichever
    /// member serviced the request (the clone becomes "responsible for the
    /// new objects").
    pub fn create(&mut self, model: &mut ObjectModel) -> CoreResult<Loid> {
        let member = self.pick();
        model.create(member)
    }

    /// Requests dispatched per member (original first).
    pub fn load(&self) -> &[u64] {
        &self.dispatched
    }

    /// The maximum per-member load — the bottleneck measure of §5.2.2.
    pub fn max_load(&self) -> u64 {
        self.dispatched.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassKind;
    use crate::interface::{MethodSignature, ParamType};
    use crate::wellknown::LEGION_CLASS;

    fn hot_class(model: &mut ObjectModel) -> Loid {
        let c = model
            .derive(LEGION_CLASS, "HotFile", ClassKind::NORMAL)
            .unwrap();
        model
            .define_method(c, MethodSignature::new("Read", vec![], ParamType::Bytes))
            .unwrap();
        c
    }

    #[test]
    fn clone_preserves_interface_exactly() {
        let mut m = ObjectModel::bootstrap();
        let hot = hot_class(&mut m);
        let clone = clone_class(&mut m, hot).unwrap();
        assert_eq!(
            m.class(&clone).unwrap().interface,
            m.class(&hot).unwrap().interface
        );
        assert_eq!(m.graph().superclass_of(&clone), Some(hot));
    }

    #[test]
    fn clone_of_private_class_fails() {
        let mut m = ObjectModel::bootstrap();
        let p = m
            .derive(LEGION_CLASS, "Sealed", ClassKind::PRIVATE)
            .unwrap();
        assert!(matches!(
            clone_class(&mut m, p),
            Err(CoreError::PrivateClass(_))
        ));
    }

    #[test]
    fn clone_instances_belong_to_the_clone() {
        let mut m = ObjectModel::bootstrap();
        let hot = hot_class(&mut m);
        let clone = clone_class(&mut m, hot).unwrap();
        let o = m.create(clone).unwrap();
        assert_eq!(m.graph().class_of(&o), Some(clone));
        // And the clone's instances still export the hot interface.
        assert!(m.interface_of(&o).unwrap().contains("Read"));
    }

    #[test]
    fn round_robin_spreads_load_evenly() {
        let mut m = ObjectModel::bootstrap();
        let hot = hot_class(&mut m);
        let mut set = CloneSet::new(hot);
        set.grow(&mut m).unwrap();
        set.grow(&mut m).unwrap();
        set.grow(&mut m).unwrap();
        assert_eq!(set.len(), 4);
        for _ in 0..400 {
            set.create(&mut m).unwrap();
        }
        assert_eq!(set.load(), &[100, 100, 100, 100]);
        assert_eq!(set.max_load(), 100);
    }

    #[test]
    fn single_member_set_takes_all_load() {
        let mut m = ObjectModel::bootstrap();
        let hot = hot_class(&mut m);
        let mut set = CloneSet::new(hot);
        for _ in 0..50 {
            set.create(&mut m).unwrap();
        }
        assert_eq!(set.max_load(), 50);
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
    }

    #[test]
    fn cloning_reduces_max_load_proportionally() {
        // The quantitative shape behind E6: k members → max load ≈ N/k.
        let mut m = ObjectModel::bootstrap();
        let hot = hot_class(&mut m);
        let mut set = CloneSet::new(hot);
        for _ in 0..7 {
            set.grow(&mut m).unwrap();
        }
        for _ in 0..800 {
            set.create(&mut m).unwrap();
        }
        assert_eq!(set.max_load(), 100); // 800 / 8
        m.verify().unwrap();
    }
}
