//! Contexts: string names for LOIDs (paper §4.1).
//!
//! "A user will write a Legion application program in her favorite
//! language, and will typically name Legion objects with string names.
//! The program is compiled within a particular 'context' by a
//! Legion-aware compiler. The compiler uses the context to map string
//! names to LOID's, which then become embedded within Legion executable
//! programs."
//!
//! A [`Context`] is a hierarchical directory of `name → entry` mappings
//! where an entry is either a LOID or a nested sub-context — enough for
//! `/home/grimshaw/experiments/dataset3`-style paths spanning sites.
//! Contexts are plain model-layer data: they can live inside any Legion
//! object's state and be shared like any other value.

use crate::error::{CoreError, CoreResult};
use crate::loid::Loid;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a name resolves to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ContextEntry {
    /// A leaf: the named object.
    Object(Loid),
    /// A nested context.
    Context(Context),
}

/// A hierarchical name → LOID directory.
///
/// ```
/// use legion_core::context::Context;
/// use legion_core::loid::Loid;
///
/// let mut cx = Context::new();
/// let dataset = Loid::instance(16, 1);
/// cx.bind_path("home/grimshaw/run3", dataset).unwrap();
/// assert_eq!(cx.lookup("home/grimshaw/run3").unwrap(), dataset);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Context {
    entries: BTreeMap<String, ContextEntry>,
}

fn validate_component(name: &str) -> CoreResult<()> {
    if name.is_empty() {
        return Err(CoreError::Invalid("empty name component".into()));
    }
    if name.contains('/') {
        return Err(CoreError::Invalid(format!(
            "name component {name:?} must not contain '/'"
        )));
    }
    Ok(())
}

/// Split a path like `a/b/c`, rejecting empty components.
fn split(path: &str) -> CoreResult<Vec<&str>> {
    let parts: Vec<&str> = path.trim_matches('/').split('/').collect();
    if parts.iter().any(|p| p.is_empty()) {
        return Err(CoreError::Invalid(format!("malformed path {path:?}")));
    }
    Ok(parts)
}

impl Context {
    /// An empty context.
    pub fn new() -> Self {
        Context::default()
    }

    /// Number of direct entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the context empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bind `name` (a single component) to an object, replacing any
    /// previous binding of that name.
    pub fn bind(&mut self, name: &str, loid: Loid) -> CoreResult<()> {
        validate_component(name)?;
        self.entries
            .insert(name.to_owned(), ContextEntry::Object(loid));
        Ok(())
    }

    /// Create (or fetch) a nested sub-context under `name`.
    pub fn subcontext(&mut self, name: &str) -> CoreResult<&mut Context> {
        validate_component(name)?;
        let entry = self
            .entries
            .entry(name.to_owned())
            .or_insert_with(|| ContextEntry::Context(Context::new()));
        match entry {
            ContextEntry::Context(c) => Ok(c),
            ContextEntry::Object(_) => Err(CoreError::Invalid(format!(
                "{name:?} names an object, not a context"
            ))),
        }
    }

    /// Bind a full path like `home/grimshaw/dataset3`, creating
    /// intermediate contexts as needed.
    pub fn bind_path(&mut self, path: &str, loid: Loid) -> CoreResult<()> {
        let parts = split(path)?;
        let (leaf, dirs) = parts.split_last().expect("split rejects empty");
        let mut cur = self;
        for d in dirs {
            cur = cur.subcontext(d)?;
        }
        cur.bind(leaf, loid)
    }

    /// Resolve a full path to a LOID ("the compiler uses the context to
    /// map string names to LOID's").
    pub fn lookup(&self, path: &str) -> CoreResult<Loid> {
        let parts = split(path)?;
        let mut cur = self;
        for (i, p) in parts.iter().enumerate() {
            match cur.entries.get(*p) {
                Some(ContextEntry::Object(l)) if i == parts.len() - 1 => return Ok(*l),
                Some(ContextEntry::Object(_)) => {
                    return Err(CoreError::Invalid(format!(
                        "{p:?} is an object, not a context (in {path:?})"
                    )))
                }
                Some(ContextEntry::Context(c)) if i == parts.len() - 1 => {
                    return Err(CoreError::Invalid(format!(
                        "{path:?} names a context, not an object"
                    )))
                }
                Some(ContextEntry::Context(c)) => cur = c,
                None => {
                    return Err(CoreError::Invalid(format!(
                        "no entry {p:?} (resolving {path:?})"
                    )))
                }
            }
        }
        unreachable!("loop returns")
    }

    /// Remove the entry at `path` (object or whole sub-context).
    pub fn unbind(&mut self, path: &str) -> CoreResult<()> {
        let parts = split(path)?;
        let (leaf, dirs) = parts.split_last().expect("split rejects empty");
        let mut cur = self;
        for d in dirs {
            match cur.entries.get_mut(*d) {
                Some(ContextEntry::Context(c)) => cur = c,
                _ => return Err(CoreError::Invalid(format!("no context {d:?} in {path:?}"))),
            }
        }
        cur.entries
            .remove(*leaf)
            .map(|_| ())
            .ok_or_else(|| CoreError::Invalid(format!("no entry {leaf:?}")))
    }

    /// Direct entry names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(|s| s.as_str()).collect()
    }

    /// Walk every `(path, loid)` leaf in the tree, depth first.
    pub fn walk(&self) -> Vec<(String, Loid)> {
        let mut out = Vec::new();
        self.walk_into("", &mut out);
        out
    }

    fn walk_into(&self, prefix: &str, out: &mut Vec<(String, Loid)>) {
        for (name, entry) in &self.entries {
            let path = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix}/{name}")
            };
            match entry {
                ContextEntry::Object(l) => out.push((path, *l)),
                ContextEntry::Context(c) => c.walk_into(&path, out),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> Loid {
        Loid::instance(16, n)
    }

    #[test]
    fn bind_and_lookup_flat() {
        let mut c = Context::new();
        c.bind("dataset", l(1)).unwrap();
        assert_eq!(c.lookup("dataset").unwrap(), l(1));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn bind_path_creates_hierarchy() {
        let mut c = Context::new();
        c.bind_path("home/grimshaw/experiments/run3", l(7)).unwrap();
        assert_eq!(c.lookup("home/grimshaw/experiments/run3").unwrap(), l(7));
        // Leading/trailing slashes tolerated.
        assert_eq!(c.lookup("/home/grimshaw/experiments/run3").unwrap(), l(7));
        assert_eq!(c.names(), vec!["home"]);
    }

    #[test]
    fn rebinding_replaces() {
        let mut c = Context::new();
        c.bind_path("a/b", l(1)).unwrap();
        c.bind_path("a/b", l(2)).unwrap();
        assert_eq!(c.lookup("a/b").unwrap(), l(2));
    }

    #[test]
    fn lookup_errors_are_precise() {
        let mut c = Context::new();
        c.bind_path("a/b", l(1)).unwrap();
        assert!(c.lookup("a").is_err(), "a is a context, not an object");
        assert!(c.lookup("a/b/c").is_err(), "b is an object, not a context");
        assert!(c.lookup("a/x").is_err(), "no such entry");
        assert!(c.lookup("").is_err());
        assert!(c.lookup("a//b").is_err());
    }

    #[test]
    fn object_vs_context_collisions_rejected() {
        let mut c = Context::new();
        c.bind("x", l(1)).unwrap();
        assert!(c.subcontext("x").is_err());
        assert!(c.bind_path("x/y", l(2)).is_err());
        // And component validation.
        assert!(c.bind("", l(1)).is_err());
        assert!(c.bind("a/b", l(1)).is_err());
    }

    #[test]
    fn unbind_removes_objects_and_subtrees() {
        let mut c = Context::new();
        c.bind_path("a/b", l(1)).unwrap();
        c.bind_path("a/c/d", l(2)).unwrap();
        c.unbind("a/b").unwrap();
        assert!(c.lookup("a/b").is_err());
        c.unbind("a/c").unwrap(); // removes the whole subtree
        assert!(c.lookup("a/c/d").is_err());
        assert!(c.unbind("a/b").is_err());
        assert!(c.unbind("zz/b").is_err());
    }

    #[test]
    fn walk_lists_all_leaves_in_order() {
        let mut c = Context::new();
        c.bind_path("b/one", l(1)).unwrap();
        c.bind_path("a/two", l(2)).unwrap();
        c.bind("zeta", l(3)).unwrap();
        assert_eq!(
            c.walk(),
            vec![
                ("a/two".to_string(), l(2)),
                ("b/one".to_string(), l(1)),
                ("zeta".to_string(), l(3)),
            ]
        );
    }

    #[test]
    fn context_is_a_value() {
        // Contexts can be cloned and compared — they travel inside object
        // state like any other value.
        let mut c = Context::new();
        c.bind_path("x/y", l(9)).unwrap();
        let d = c.clone();
        assert_eq!(c, d);
    }
}
