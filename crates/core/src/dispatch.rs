//! The unified typed invocation layer (paper §2, §3.4).
//!
//! "The complete set of method signatures for an object fully describes
//! that object's interface." This module makes that sentence operational:
//! an endpoint *registers* its methods — name, typed parameters, handler —
//! in a [`MethodTable`], and everything the paper derives from the
//! interface falls out of the registration:
//!
//! * **Typed argument codecs** ([`FromArg`]/[`FromArgs`]/[`IntoArgs`])
//!   decode the wire's `LegionValue` argument lists into real Rust types
//!   and back, checking arity and per-position conformance against the
//!   method's declared signature. Handlers receive `(Loid, Option<Loid>)`,
//!   not slices.
//! * **Uniform errors**: an unknown method or a signature mismatch is
//!   answered with a canonical [`CoreError`] rendering
//!   ([`CoreError::UnknownMethod`] / [`CoreError::SignatureMismatch`]),
//!   identical across every endpoint.
//! * **`GetInterface()` for free**: the table derives the endpoint's
//!   run-time [`Interface`] from the registered signatures, so the reply
//!   to `GetInterface()` *is* the dispatch table — the two can never
//!   drift apart.
//! * **A shared continuation store** ([`Continuations`]) replaces the
//!   per-endpoint `Pending` enums and `handle_reply` state machines:
//!   a call-id maps to a boxed continuation that receives the decoded
//!   reply.
//! * **One security gate** ([`InvocationGate`]): the MayI check (§2.4)
//!   runs once, at the dispatch boundary, for every gated method of every
//!   endpoint, instead of being hand-wired into some endpoints and
//!   forgotten in others.
//!
//! ### Layering
//!
//! `legion-core` sits *below* the transport (`legion-net` depends on this
//! crate), so nothing here names `Message` or the simulation context. The
//! table is generic over the handler payload `H` and the continuation
//! store over the key `K` and continuation `C`; `legion_net::dispatch`
//! instantiates both with transport-aware closure types and drives the
//! actual message loop. The split keeps the model layer pure: signatures,
//! codecs, verdicts and errors here; I/O there.

use crate::address::ObjectAddress;
use crate::binding::Binding;
use crate::env::InvocationEnv;
use crate::error::CoreError;
use crate::interface::{Interface, MethodSignature, ParamType};
use crate::loid::Loid;
use crate::symbol::Sym;
use crate::time::SimTime;
use crate::value::LegionValue;
use std::collections::BTreeMap;
use std::fmt;

// ---------------------------------------------------------------------------
// Argument codec
// ---------------------------------------------------------------------------

/// Why an argument list failed to decode against a signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// Wrong number of arguments.
    Arity {
        /// Arguments supplied on the wire.
        got: usize,
        /// Minimum accepted (required parameters).
        min: usize,
        /// Maximum accepted (all parameters, optionals included).
        max: usize,
    },
    /// An argument did not conform to its declared parameter type.
    Type {
        /// Zero-based argument position.
        index: usize,
        /// The wire value's actual type.
        got: ParamType,
        /// The declared parameter type.
        want: ParamType,
    },
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::Arity { got, min, max } if min == max => {
                write!(f, "got {got} arguments, want {min}")
            }
            ArgsError::Arity { got, min, max } => {
                write!(f, "got {got} arguments, want {min}..={max}")
            }
            ArgsError::Type { index, got, want } => {
                write!(f, "argument {index} is {got}, want {want}")
            }
        }
    }
}

/// A single wire value decodable into one Rust type.
///
/// The `PARAM` constant ties the Rust type to its IDL [`ParamType`], so a
/// registered handler's parameter list *is* its published signature.
pub trait FromArg: Sized {
    /// The IDL parameter type this Rust type decodes from.
    const PARAM: ParamType;
    /// Decode, honouring the same conformance rules as
    /// [`LegionValue::conforms_to`] (a non-negative `Int` conforms to
    /// `Uint`).
    fn from_value(v: &LegionValue) -> Option<Self>;
}

impl FromArg for () {
    const PARAM: ParamType = ParamType::Void;
    fn from_value(v: &LegionValue) -> Option<Self> {
        matches!(v, LegionValue::Void).then_some(())
    }
}

impl FromArg for bool {
    const PARAM: ParamType = ParamType::Bool;
    fn from_value(v: &LegionValue) -> Option<Self> {
        v.as_bool()
    }
}

impl FromArg for i64 {
    const PARAM: ParamType = ParamType::Int;
    fn from_value(v: &LegionValue) -> Option<Self> {
        match v {
            LegionValue::Int(i) => Some(*i),
            _ => None,
        }
    }
}

impl FromArg for u64 {
    const PARAM: ParamType = ParamType::Uint;
    fn from_value(v: &LegionValue) -> Option<Self> {
        v.as_uint()
    }
}

impl FromArg for f64 {
    const PARAM: ParamType = ParamType::Float;
    fn from_value(v: &LegionValue) -> Option<Self> {
        match v {
            LegionValue::Float(x) => Some(*x),
            _ => None,
        }
    }
}

impl FromArg for String {
    const PARAM: ParamType = ParamType::Str;
    fn from_value(v: &LegionValue) -> Option<Self> {
        v.as_str().map(str::to_owned)
    }
}

impl FromArg for Vec<u8> {
    const PARAM: ParamType = ParamType::Bytes;
    fn from_value(v: &LegionValue) -> Option<Self> {
        match v {
            LegionValue::Bytes(b) => Some(b.clone()),
            _ => None,
        }
    }
}

impl FromArg for Loid {
    const PARAM: ParamType = ParamType::Loid;
    fn from_value(v: &LegionValue) -> Option<Self> {
        v.as_loid()
    }
}

impl FromArg for ObjectAddress {
    const PARAM: ParamType = ParamType::Address;
    fn from_value(v: &LegionValue) -> Option<Self> {
        match v {
            LegionValue::Address(a) => Some(a.clone()),
            _ => None,
        }
    }
}

impl FromArg for Binding {
    const PARAM: ParamType = ParamType::Binding;
    fn from_value(v: &LegionValue) -> Option<Self> {
        v.as_binding().cloned()
    }
}

impl FromArg for Vec<LegionValue> {
    const PARAM: ParamType = ParamType::List;
    fn from_value(v: &LegionValue) -> Option<Self> {
        v.as_list().map(<[LegionValue]>::to_vec)
    }
}

impl FromArg for LegionValue {
    const PARAM: ParamType = ParamType::Any;
    fn from_value(v: &LegionValue) -> Option<Self> {
        Some(v.clone())
    }
}

/// Decode the required argument at `index`.
pub fn decode_at<T: FromArg>(args: &[LegionValue], index: usize) -> Result<T, ArgsError> {
    let v = args.get(index).ok_or(ArgsError::Arity {
        got: args.len(),
        min: index + 1,
        max: index + 1,
    })?;
    T::from_value(v).ok_or(ArgsError::Type {
        index,
        got: v.param_type(),
        want: T::PARAM,
    })
}

/// Decode the optional (trailing) argument at `index`, if present.
pub fn decode_opt<T: FromArg>(args: &[LegionValue], index: usize) -> Result<Option<T>, ArgsError> {
    match args.get(index) {
        None => Ok(None),
        Some(v) => T::from_value(v).map(Some).ok_or(ArgsError::Type {
            index,
            got: v.param_type(),
            want: T::PARAM,
        }),
    }
}

/// Check the argument count against an inclusive `[min, max]` arity range.
pub fn expect_arity(args: &[LegionValue], min: usize, max: usize) -> Result<(), ArgsError> {
    if args.len() < min || args.len() > max {
        return Err(ArgsError::Arity {
            got: args.len(),
            min,
            max,
        });
    }
    Ok(())
}

/// A full argument list decodable into one Rust value (usually a tuple).
///
/// Implemented for tuples of [`FromArg`] types up to arity 4; protocol
/// structs with optional or overloaded parameters implement it by hand
/// (composing [`decode_at`]/[`decode_opt`]) — such hand impls are part of
/// the codec and keep the published signature in `params()` honest.
pub trait FromArgs: Sized {
    /// The canonical (full-form) parameter types, in order.
    fn params() -> Vec<ParamType>;
    /// Minimum required arity; parameters past this index are optional.
    fn min_args() -> usize {
        Self::params().len()
    }
    /// Decode and type-check the wire argument list.
    fn from_args(args: &[LegionValue]) -> Result<Self, ArgsError>;
}

impl FromArgs for () {
    fn params() -> Vec<ParamType> {
        Vec::new()
    }
    fn from_args(args: &[LegionValue]) -> Result<Self, ArgsError> {
        expect_arity(args, 0, 0)
    }
}

macro_rules! tuple_from_args {
    ($n:expr; $($t:ident $i:tt),+) => {
        impl<$($t: FromArg),+> FromArgs for ($($t,)+) {
            fn params() -> Vec<ParamType> {
                vec![$($t::PARAM),+]
            }
            fn from_args(args: &[LegionValue]) -> Result<Self, ArgsError> {
                expect_arity(args, $n, $n)?;
                Ok(($(decode_at::<$t>(args, $i)?,)+))
            }
        }
    };
}

tuple_from_args!(1; A 0);
tuple_from_args!(2; A 0, B 1);
tuple_from_args!(3; A 0, B 1, C 2);
tuple_from_args!(4; A 0, B 1, C 2, D 3);

/// A Rust value encodable as a wire argument list — the inverse of
/// [`FromArgs`]. `x.into_args()` then `FromArgs::from_args` round-trips.
pub trait IntoArgs {
    /// Encode as an ordered `LegionValue` argument list.
    fn into_args(self) -> Vec<LegionValue>;
}

impl IntoArgs for () {
    fn into_args(self) -> Vec<LegionValue> {
        Vec::new()
    }
}

impl IntoArgs for Vec<LegionValue> {
    fn into_args(self) -> Vec<LegionValue> {
        self
    }
}

macro_rules! tuple_into_args {
    ($($t:ident $i:tt),+) => {
        impl<$($t: Into<LegionValue>),+> IntoArgs for ($($t,)+) {
            fn into_args(self) -> Vec<LegionValue> {
                vec![$(self.$i.into()),+]
            }
        }
    };
}

tuple_into_args!(A 0);
tuple_into_args!(A 0, B 1);
tuple_into_args!(A 0, B 1, C 2);
tuple_into_args!(A 0, B 1, C 2, D 3);

/// Build the [`MethodSignature`] a `FromArgs` implementation publishes.
/// Missing parameter names are filled as `arg0`, `arg1`, ….
pub fn signature_of<A: FromArgs>(
    name: &str,
    param_names: &[&str],
    returns: ParamType,
) -> MethodSignature {
    let params = A::params()
        .into_iter()
        .enumerate()
        .map(|(i, ty)| {
            let n = param_names.get(i).copied().map(str::to_owned);
            (n.unwrap_or_else(|| format!("arg{i}")), ty)
        })
        .collect::<Vec<_>>();
    MethodSignature::new(
        name,
        params.iter().map(|(n, t)| (n.as_str(), *t)).collect(),
        returns,
    )
}

/// The uniform wire error for a call whose arguments fail the codec.
pub fn mismatch(sig: &MethodSignature, err: ArgsError) -> CoreError {
    CoreError::SignatureMismatch {
        signature: sig.to_string(),
        detail: err.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Security gate + verdicts
// ---------------------------------------------------------------------------

/// The MayI check at the dispatch boundary (§2.4). `legion-security`
/// adapts its `MayIPolicy` objects to this; the model layer only needs
/// allow-or-deny.
pub trait InvocationGate {
    /// `Ok(())` to admit the call, `Err(reason)` to refuse it.
    fn check(&self, env: &InvocationEnv, method: &str) -> Result<(), String>;
}

/// What the dispatch boundary decided about one incoming call — the
/// `verdict` half of the `(method, verdict)` span annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Gate passed (or method ungated); the handler ran.
    Allowed,
    /// The MayI gate refused the call.
    Denied,
    /// No such method in the registered table.
    Unknown,
    /// Arguments failed the signature check.
    BadArgs,
    /// The message named no method at all (dead-lettered).
    DeadLetter,
}

impl Verdict {
    /// Stable lower-case label used in span annotations and counters.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Allowed => "allowed",
            Verdict::Denied => "denied",
            Verdict::Unknown => "unknown",
            Verdict::BadArgs => "badargs",
            Verdict::DeadLetter => "dead_letter",
        }
    }
}

// ---------------------------------------------------------------------------
// Method table
// ---------------------------------------------------------------------------

/// One registered method: its published signature, gating flag, and the
/// transport-level handler payload.
#[derive(Debug)]
pub struct MethodEntry<H> {
    sig: MethodSignature,
    gated: bool,
    handler: H,
}

impl<H> MethodEntry<H> {
    /// The published signature.
    pub fn signature(&self) -> &MethodSignature {
        &self.sig
    }
    /// Does the MayI gate apply to this method?
    pub fn gated(&self) -> bool {
        self.gated
    }
    /// The handler payload.
    pub fn handler(&self) -> &H {
        &self.handler
    }
}

/// A per-endpoint registry of methods: the endpoint's interface and its
/// dispatch table in one structure, so they cannot drift apart.
///
/// Generic over the handler payload `H` (the transport layer stores its
/// message-handling closures here; pure-model tests can use `()`).
///
/// Keyed by interned [`Sym`]: resolving a method carried by a message
/// (already a `Sym`) compares `u32`s instead of strings and never
/// allocates. Name-ordered views ([`MethodTable::names`],
/// [`MethodTable::interface`]) sort at render time.
#[derive(Debug, Default)]
pub struct MethodTable<H> {
    owner: Loid,
    entries: BTreeMap<Sym, MethodEntry<H>>,
}

impl<H> MethodTable<H> {
    /// An empty table owned (for interface provenance) by `owner`.
    pub fn new(owner: Loid) -> Self {
        MethodTable {
            owner,
            entries: BTreeMap::new(),
        }
    }

    /// The provenance LOID recorded on derived interface entries.
    pub fn owner(&self) -> Loid {
        self.owner
    }

    /// Register a method. Registering the same name twice replaces the
    /// earlier entry (redefinition, as in [`Interface::define`]).
    pub fn define(&mut self, sig: MethodSignature, gated: bool, handler: H) {
        self.entries.insert(
            Sym::intern(&sig.name),
            MethodEntry {
                sig,
                gated,
                handler,
            },
        );
    }

    /// Look up a method by symbol or name (a `&str` is interned).
    pub fn get(&self, method: impl Into<Sym>) -> Option<&MethodEntry<H>> {
        self.entries.get(&method.into())
    }

    /// Look up a method, yielding the uniform unknown-method error.
    pub fn resolve(&self, method: impl Into<Sym>) -> Result<&MethodEntry<H>, CoreError> {
        let method = method.into();
        self.entries
            .get(&method)
            .ok_or_else(|| CoreError::UnknownMethod {
                method: method.as_str().to_owned(),
            })
    }

    /// Number of registered methods.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered method names, in name order (the entries are stored in
    /// intern order, so this sorts).
    pub fn names(&self) -> impl Iterator<Item = &'static str> {
        let mut names: Vec<&'static str> = self.entries.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names.into_iter()
    }

    /// Derive the endpoint's run-time [`Interface`] from the registered
    /// signatures — the `GetInterface()` payload (§3.4). The interface is
    /// name-keyed, so intern order never leaks into it.
    pub fn interface(&self) -> Interface {
        let mut iface = Interface::new();
        for e in self.entries.values() {
            iface.define(e.sig.clone(), self.owner);
        }
        iface
    }
}

// ---------------------------------------------------------------------------
// Continuations
// ---------------------------------------------------------------------------

/// Lifetime counters for a [`Continuations`] store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContinuationStats {
    /// Continuations registered.
    pub inserted: u64,
    /// Continuations taken for resolution (a reply arrived).
    pub taken: u64,
    /// Continuations expired by a deadline sweep (no reply in time; the
    /// endpoint owes the caller a uniform timeout reply instead).
    pub expired: u64,
}

/// The shared call-id → continuation store that replaces every
/// per-endpoint `Pending` enum and `handle_reply` state machine.
///
/// Generic over the key `K` (the transport's call-id type) and the stored
/// continuation `C` (a transport-level `FnOnce` closure). A `BTreeMap`
/// keeps any iteration deterministic.
///
/// A continuation registered with [`Continuations::insert_with_deadline`]
/// also records when the endpoint stops waiting for its reply; the
/// endpoint's deadline sweep ([`Continuations::take_expired`]) collects
/// every overdue continuation so it can be resolved with a uniform
/// timeout error instead of leaking forever when the reply was lost.
#[derive(Debug)]
pub struct Continuations<K: Ord, C> {
    map: BTreeMap<K, C>,
    deadlines: BTreeMap<K, SimTime>,
    stats: ContinuationStats,
}

impl<K: Ord, C> Default for Continuations<K, C> {
    fn default() -> Self {
        Continuations {
            map: BTreeMap::new(),
            deadlines: BTreeMap::new(),
            stats: ContinuationStats::default(),
        }
    }
}

impl<K: Ord, C> Continuations<K, C> {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the continuation for a call-id, with no deadline (the
    /// endpoint waits forever). Returns the displaced continuation if the
    /// id was (erroneously) reused.
    pub fn insert(&mut self, key: K, cont: C) -> Option<C> {
        self.stats.inserted += 1;
        self.deadlines.remove(&key);
        self.map.insert(key, cont)
    }

    /// Register the continuation for a call-id and stop waiting for its
    /// reply at `deadline`: a later [`Continuations::take_expired`] sweep
    /// collects it for a uniform timeout resolution.
    pub fn insert_with_deadline(&mut self, key: K, cont: C, deadline: SimTime) -> Option<C>
    where
        K: Clone,
    {
        self.stats.inserted += 1;
        self.deadlines.insert(key.clone(), deadline);
        self.map.insert(key, cont)
    }

    /// Take the continuation awaiting `key`, if any — the caller then
    /// invokes it with the decoded reply. (Two steps, so the endpoint can
    /// pass `&mut self` to the continuation without aliasing the store.)
    pub fn take(&mut self, key: &K) -> Option<C> {
        let c = self.map.remove(key);
        if c.is_some() {
            self.stats.taken += 1;
            self.deadlines.remove(key);
        }
        c
    }

    /// Collect every continuation whose deadline has passed at `now`, in
    /// key order. The caller resolves each with a uniform timeout error —
    /// overdue calls produce a reply, they do not leak.
    pub fn take_expired(&mut self, now: SimTime) -> Vec<(K, C)>
    where
        K: Clone,
    {
        let due: Vec<K> = self
            .deadlines
            .iter()
            .filter(|(_, d)| **d <= now)
            .map(|(k, _)| k.clone())
            .collect();
        let mut out = Vec::with_capacity(due.len());
        for key in due {
            self.deadlines.remove(&key);
            if let Some(c) = self.map.remove(&key) {
                self.stats.expired += 1;
                out.push((key, c));
            }
        }
        out
    }

    /// The earliest recorded deadline, if any continuation has one.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.deadlines.values().min().copied()
    }

    /// Is a continuation waiting on `key`?
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Number of outstanding continuations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Are there no outstanding continuations?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ContinuationStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_tuple_checks_arity_and_types() {
        let args = vec![
            LegionValue::from(Loid::instance(7, 1)),
            LegionValue::from(3u64),
        ];
        let (l, n) = <(Loid, u64)>::from_args(&args).unwrap();
        assert_eq!(l, Loid::instance(7, 1));
        assert_eq!(n, 3);

        match <(Loid, u64)>::from_args(&args[..1]) {
            Err(ArgsError::Arity {
                got: 1,
                min: 2,
                max: 2,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
        let bad = vec![LegionValue::from("x"), LegionValue::from(3u64)];
        match <(Loid, u64)>::from_args(&bad) {
            Err(ArgsError::Type {
                index: 0,
                got: ParamType::Str,
                want: ParamType::Loid,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn int_conforms_to_uint_like_the_wire() {
        // Mirror LegionValue::conforms_to: non-negative Int decodes as Uint.
        assert_eq!(u64::from_value(&LegionValue::Int(4)), Some(4));
        assert_eq!(u64::from_value(&LegionValue::Int(-4)), None);
        assert_eq!(i64::from_value(&LegionValue::Uint(4)), None);
    }

    #[test]
    fn optional_tail_decodes() {
        let one = vec![LegionValue::from(Loid::instance(7, 1))];
        assert_eq!(decode_opt::<Loid>(&one, 1).unwrap(), None);
        let two = vec![
            LegionValue::from(Loid::instance(7, 1)),
            LegionValue::from(Loid::instance(3, 1)),
        ];
        assert_eq!(
            decode_opt::<Loid>(&two, 1).unwrap(),
            Some(Loid::instance(3, 1))
        );
        let bad = vec![
            LegionValue::from(Loid::instance(7, 1)),
            LegionValue::from("oops"),
        ];
        assert!(decode_opt::<Loid>(&bad, 1).is_err());
    }

    #[test]
    fn signature_of_names_params() {
        let sig = signature_of::<(Loid, u64)>("Activate", &["target"], ParamType::Binding);
        assert_eq!(sig.to_string(), "binding Activate(loid target, uint arg1)");
    }

    #[test]
    fn table_resolves_and_derives_interface() {
        let owner = Loid::class_object(9);
        let mut t: MethodTable<u32> = MethodTable::new(owner);
        t.define(
            signature_of::<(Loid,)>("Ping", &["target"], ParamType::Uint),
            true,
            1,
        );
        t.define(signature_of::<()>("Iam", &[], ParamType::Loid), false, 2);
        assert_eq!(t.len(), 2);
        assert!(t.resolve("Ping").unwrap().gated());
        assert!(!t.resolve("Iam").unwrap().gated());
        let err = t.resolve("Nope").unwrap_err();
        assert!(err.to_string().contains("no method Nope"), "{err}");

        let iface = t.interface();
        assert_eq!(iface.len(), 2);
        assert_eq!(iface.provider("Ping"), Some(owner));
        assert_eq!(iface.get("Iam").unwrap().returns, ParamType::Loid);
    }

    #[test]
    fn redefinition_replaces_entry() {
        let mut t: MethodTable<u32> = MethodTable::new(Loid::class_object(9));
        t.define(signature_of::<()>("F", &[], ParamType::Void), true, 1);
        t.define(signature_of::<()>("F", &[], ParamType::Uint), false, 2);
        assert_eq!(t.len(), 1);
        assert_eq!(*t.get("F").unwrap().handler(), 2);
        assert!(!t.get("F").unwrap().gated());
    }

    #[test]
    fn continuations_take_and_expire() {
        let mut c: Continuations<u64, &'static str> = Continuations::new();
        assert!(c.is_empty());
        assert!(c.insert(1, "a").is_none());
        assert!(c.insert_with_deadline(2, "b", SimTime(100)).is_none());
        assert_eq!(c.len(), 2);
        assert!(c.contains(&1));
        assert_eq!(c.next_deadline(), Some(SimTime(100)));
        assert_eq!(c.take(&1), Some("a"));
        assert_eq!(c.take(&1), None);
        // Before the deadline, the sweep finds nothing.
        assert!(c.take_expired(SimTime(99)).is_empty());
        assert_eq!(c.take_expired(SimTime(100)), vec![(2, "b")]);
        assert!(c.is_empty());
        assert_eq!(c.next_deadline(), None);
        let s = c.stats();
        assert_eq!((s.inserted, s.taken, s.expired), (2, 1, 1));
    }

    #[test]
    fn reply_beats_deadline_leaves_nothing_to_expire() {
        let mut c: Continuations<u64, &'static str> = Continuations::new();
        c.insert_with_deadline(7, "x", SimTime(50));
        // The reply arrives first: taking the continuation clears its
        // deadline, so a later sweep must not double-resolve the call.
        assert_eq!(c.take(&7), Some("x"));
        assert!(c.take_expired(SimTime(1_000)).is_empty());
        assert_eq!(c.stats().expired, 0);
    }

    #[test]
    fn expired_sweep_is_ordered_and_partial() {
        let mut c: Continuations<u64, &'static str> = Continuations::new();
        c.insert_with_deadline(3, "c", SimTime(30));
        c.insert_with_deadline(1, "a", SimTime(10));
        c.insert_with_deadline(2, "b", SimTime(99));
        let due = c.take_expired(SimTime(40));
        assert_eq!(due, vec![(1, "a"), (3, "c")]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.next_deadline(), Some(SimTime(99)));
    }

    #[test]
    fn mismatch_renders_signature_and_detail() {
        let sig = signature_of::<(Loid,)>("Activate", &["target"], ParamType::Binding);
        let e = mismatch(
            &sig,
            ArgsError::Arity {
                got: 0,
                min: 1,
                max: 1,
            },
        );
        let s = e.to_string();
        assert!(s.contains("binding Activate(loid target)"), "{s}");
        assert!(s.contains("got 0 arguments, want 1"), "{s}");
    }

    #[test]
    fn verdict_labels_are_stable() {
        assert_eq!(Verdict::Allowed.label(), "allowed");
        assert_eq!(Verdict::Denied.label(), "denied");
        assert_eq!(Verdict::Unknown.label(), "unknown");
        assert_eq!(Verdict::BadArgs.label(), "badargs");
        assert_eq!(Verdict::DeadLetter.label(), "dead_letter");
    }

    #[test]
    fn into_args_round_trips_tuples() {
        let args = (Loid::instance(5, 5), 9u64, "hi".to_owned()).into_args();
        let (l, n, s) = <(Loid, u64, String)>::from_args(&args).unwrap();
        assert_eq!((l, n, s.as_str()), (Loid::instance(5, 5), 9, "hi"));
    }
}
