//! The method-invocation environment (paper §2.4).
//!
//! "Every method invocation is performed in an environment consisting of a
//! triple of object names — those of the operative Responsible Agent, the
//! Security Agent, and the Calling Agent." The triple travels with every
//! message; `legion-security` interprets it.

use crate::loid::Loid;
use crate::trace::TraceContext;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The ⟨Responsible Agent, Security Agent, Calling Agent⟩ triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct InvocationEnv {
    /// The Responsible Agent: the object on whose behalf the call chain
    /// ultimately acts (e.g. the user's proxy object).
    pub responsible: Loid,
    /// The Security Agent: the object consulted for policy decisions.
    pub security: Loid,
    /// The Calling Agent: the object that issued this particular call.
    pub calling: Loid,
    /// Causal-trace context. Rides with the triple (it follows exactly
    /// the same forwarding rules) but carries no authority; the kernel
    /// stamps it at send time when tracing is enabled.
    pub trace: TraceContext,
}

impl InvocationEnv {
    /// An environment where one object plays all three roles — the common
    /// case for a self-contained caller with no delegated authority.
    pub fn solo(who: Loid) -> Self {
        InvocationEnv {
            responsible: who,
            security: who,
            calling: who,
            trace: TraceContext::NONE,
        }
    }

    /// Derive the environment for a nested call made by `caller` while
    /// servicing a call performed under `self`: the Responsible and
    /// Security Agents are preserved, the Calling Agent becomes `caller`.
    pub fn forwarded_by(&self, caller: Loid) -> Self {
        InvocationEnv {
            responsible: self.responsible,
            security: self.security,
            calling: caller,
            trace: self.trace,
        }
    }

    /// The same environment carrying `trace` (builder-style).
    pub fn with_trace(mut self, trace: TraceContext) -> Self {
        self.trace = trace;
        self
    }

    /// The anonymous environment (all roles nil) — "empty for the case of
    /// no security".
    pub fn anonymous() -> Self {
        InvocationEnv::default()
    }
}

impl fmt::Display for InvocationEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨RA={}, SA={}, CA={}⟩",
            self.responsible, self.security, self.calling
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_sets_all_roles() {
        let who = Loid::instance(5, 7);
        let env = InvocationEnv::solo(who);
        assert_eq!(env.responsible, who);
        assert_eq!(env.security, who);
        assert_eq!(env.calling, who);
    }

    #[test]
    fn forwarding_preserves_ra_sa() {
        let user = Loid::instance(5, 7);
        let service = Loid::instance(6, 1);
        let env = InvocationEnv::solo(user).forwarded_by(service);
        assert_eq!(env.responsible, user);
        assert_eq!(env.security, user);
        assert_eq!(env.calling, service);
    }

    #[test]
    fn anonymous_is_all_nil() {
        let env = InvocationEnv::anonymous();
        assert!(env.responsible.is_nil());
        assert!(env.security.is_nil());
        assert!(env.calling.is_nil());
    }
}
