//! Error types shared across the Legion model layer.

use crate::loid::Loid;
use std::fmt;

/// Result alias used throughout `legion-core`.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors produced by the core object model.
///
/// These map onto the failure modes the paper describes informally: calling
/// `Create()` on an Abstract class, `Derive()` on a Private class,
/// `InheritFrom()` on a Fixed class, unknown LOIDs, interface conflicts
/// arising from multiple inheritance, and malformed IDL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// `Create()` was invoked on an Abstract class (empty `Create`, §2.1.2).
    AbstractClass(Loid),
    /// `Derive()` was invoked on a Private class (empty `Derive`, §2.1.2).
    PrivateClass(Loid),
    /// `InheritFrom()` was invoked on a Fixed class (empty `InheritFrom`, §2.1.2).
    FixedClass(Loid),
    /// The named LOID is not known to the component that was asked.
    UnknownLoid(Loid),
    /// The LOID names a non-class object where a class was required.
    NotAClass(Loid),
    /// The LOID names a class object where a non-class instance was required.
    NotAnInstance(Loid),
    /// Adding an inherits-from edge would create a cycle.
    InheritanceCycle {
        /// The class whose `InheritFrom()` was invoked.
        class: Loid,
        /// The proposed base class that closes the cycle.
        base: Loid,
    },
    /// Two base classes define the same method with conflicting signatures.
    InterfaceConflict {
        /// Name of the conflicting method.
        method: String,
        /// First class contributing the method.
        first: Loid,
        /// Second, conflicting class.
        second: Loid,
    },
    /// A class has exhausted its 64-bit Class Specific namespace.
    LoidSpaceExhausted(Loid),
    /// The Class Identifier namespace itself is exhausted.
    ClassIdExhausted,
    /// Malformed IDL text.
    IdlParse {
        /// 1-based line number of the error.
        line: usize,
        /// Human-readable message.
        message: String,
    },
    /// An operation referenced a deleted object.
    Deleted(Loid),
    /// A malformed or out-of-range value was supplied.
    Invalid(String),
    /// A call named a method absent from the receiving interface
    /// (the uniform unknown-method reply of `legion_core::dispatch`).
    UnknownMethod {
        /// The method name that failed to resolve.
        method: String,
    },
    /// A call's arguments did not match the method's declared signature
    /// (the uniform bad-arguments reply of `legion_core::dispatch`).
    SignatureMismatch {
        /// Canonical rendering of the declared signature.
        signature: String,
        /// What was wrong: arity, or a positional type mismatch.
        detail: String,
    },
    /// A pending call produced no reply before the caller's deadline (the
    /// uniform reply a deadline sweep substitutes for a lost response).
    Timeout {
        /// How long the caller waited, in virtual nanoseconds.
        after_ns: u64,
    },
    /// The receiving endpoint's admission budget is full and the call was
    /// shed (load shedding, not failure). The hint tells a well-behaved
    /// caller how long to back off before retrying — the server knows
    /// when a queue slot frees, the client does not.
    Overloaded {
        /// Server's retry hint, in virtual nanoseconds.
        retry_after_ns: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::AbstractClass(l) => {
                write!(f, "class {l} is Abstract: Create() is empty")
            }
            CoreError::PrivateClass(l) => {
                write!(f, "class {l} is Private: Derive() is empty")
            }
            CoreError::FixedClass(l) => {
                write!(f, "class {l} is Fixed: InheritFrom() is empty")
            }
            CoreError::UnknownLoid(l) => write!(f, "unknown LOID {l}"),
            CoreError::NotAClass(l) => write!(f, "{l} is not a class object"),
            CoreError::NotAnInstance(l) => write!(f, "{l} is not an instance object"),
            CoreError::InheritanceCycle { class, base } => {
                write!(f, "InheritFrom({base}) on {class} would create a cycle")
            }
            CoreError::InterfaceConflict {
                method,
                first,
                second,
            } => write!(
                f,
                "method `{method}` conflicts between base classes {first} and {second}"
            ),
            CoreError::LoidSpaceExhausted(l) => {
                write!(f, "class {l} exhausted its Class Specific LOID space")
            }
            CoreError::ClassIdExhausted => write!(f, "Class Identifier space exhausted"),
            CoreError::IdlParse { line, message } => {
                write!(f, "IDL parse error at line {line}: {message}")
            }
            CoreError::Deleted(l) => write!(f, "object {l} has been deleted"),
            CoreError::Invalid(msg) => write!(f, "invalid value: {msg}"),
            CoreError::UnknownMethod { method } => {
                write!(f, "no method {method} in interface")
            }
            CoreError::SignatureMismatch { signature, detail } => {
                write!(f, "bad arguments: expected {signature} ({detail})")
            }
            CoreError::Timeout { after_ns } => {
                write!(f, "call timed out after {after_ns}ns")
            }
            CoreError::Overloaded { retry_after_ns } => {
                write!(f, "server overloaded, retry after {retry_after_ns}ns")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loid::Loid;

    #[test]
    fn display_formats_are_informative() {
        let l = Loid::class_object(42);
        let cases: Vec<(CoreError, &str)> = vec![
            (CoreError::AbstractClass(l), "Abstract"),
            (CoreError::PrivateClass(l), "Private"),
            (CoreError::FixedClass(l), "Fixed"),
            (CoreError::UnknownLoid(l), "unknown"),
            (CoreError::NotAClass(l), "not a class"),
            (CoreError::ClassIdExhausted, "exhausted"),
            (
                CoreError::Timeout { after_ns: 500 },
                "timed out after 500ns",
            ),
            (
                CoreError::Overloaded {
                    retry_after_ns: 250,
                },
                "overloaded, retry after 250ns",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&CoreError::ClassIdExhausted);
    }

    #[test]
    fn idl_error_carries_line() {
        let e = CoreError::IdlParse {
            line: 7,
            message: "expected `;`".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }
}
