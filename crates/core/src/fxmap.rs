//! A fast, deterministic hasher for the kernel/naming hot path.
//!
//! The naming layer keys its hot maps — binding caches, pending-request
//! tables, the registry/LegionClass tables that reach a million rows in
//! E17 — by [`Loid`](crate::loid::Loid) (32 bytes) or small integer ids.
//! `std`'s default SipHash is DoS-resistant but pays tens of nanoseconds
//! per 32-byte key, which the E17 profile shows as pure overhead: every
//! key here is program-generated, never attacker-chosen, so collision
//! flooding is not a threat model the simulator has.
//!
//! [`FxHasher`] is the classic multiply-rotate word hasher (the
//! Firefox/rustc "FxHash" construction — fold each word in with a rotate,
//! xor, and multiply by a 64-bit odd constant), written out here because
//! the workspace vendors no hashing crate. It is **deterministic across
//! processes** (no random seed), which is strictly more reproducible than
//! `RandomState` — but note that nothing golden-visible may depend on
//! hash-map iteration order anyway (with `RandomState` that order already
//! varied run to run).
//!
//! Use the [`FxHashMap`]/[`FxHashSet`] aliases for hot-path maps; keep
//! `std`'s default for anything that could ever key on external input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 2^64 / φ, forced odd: the classic Fibonacci-hashing multiplier.
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// The multiply-rotate word hasher. Cheap (a handful of ALU ops per
/// 8-byte word), deterministic, and plenty well-mixed for
/// program-generated keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (head, tail) = rest.split_at(8);
            self.fold(u64::from_le_bytes(head.try_into().expect("8 bytes")));
            rest = tail;
        }
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.fold(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.fold(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.fold(i as u64);
        self.fold((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.fold(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; zero-sized, no per-map seed.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`]. Drop-in for hot-path maps with
/// program-generated keys (LOIDs, call ids, endpoint indices).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loid::Loid;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        let l = Loid::instance(17, 42);
        assert_eq!(hash_of(&l), hash_of(&l.clone()));
        assert_eq!(hash_of(&1234u64), hash_of(&1234u64));
    }

    #[test]
    fn distinguishes_loid_fields() {
        let a = Loid::instance(17, 42);
        let b = Loid::instance(17, 43);
        let c = Loid::instance(18, 42);
        assert_ne!(hash_of(&a), hash_of(&b));
        assert_ne!(hash_of(&a), hash_of(&c));
        assert_ne!(hash_of(&b), hash_of(&c));
    }

    #[test]
    fn sequential_keys_spread_over_buckets() {
        // Sequential class ids (exactly the E17 key population) must not
        // pile into a few buckets of a power-of-two table.
        let mask = (1 << 12) - 1; // 4096 buckets
        let mut hit = FxHashSet::default();
        for i in 0..4096u64 {
            hit.insert(hash_of(&Loid::class_object(i)) & mask);
        }
        assert!(
            hit.len() > 2500,
            "sequential LOIDs landed in only {} of 4096 buckets",
            hit.len()
        );
    }

    #[test]
    fn map_alias_works_with_loid_keys() {
        let mut m: FxHashMap<Loid, u64> = FxHashMap::default();
        for i in 0..1_000 {
            m.insert(Loid::class_object(i), i);
        }
        assert_eq!(m.len(), 1_000);
        assert_eq!(m.get(&Loid::class_object(517)), Some(&517));
        assert_eq!(m.get(&Loid::class_object(1_000)), None);
    }
}
