//! A small Interface Description Language (paper §2, footnote 1).
//!
//! The paper says Legion class interfaces "can be described in an Interface
//! Description Language", naming the CORBA IDL and MPL as candidates. This
//! module implements a compact CORBA-flavoured subset sufficient for the
//! core model:
//!
//! ```idl
//! // Comments run to end of line (// or #).
//! interface BindingAgent {
//!     binding GetBinding(loid target);
//!     void    InvalidateBinding(loid target);
//!     void    AddBinding(binding b);
//! };
//! ```
//!
//! Types are the [`ParamType`] keywords: `void bool int uint float string
//! bytes loid address binding list`. A file may declare several
//! interfaces. Parse errors carry 1-based line numbers.

use crate::error::{CoreError, CoreResult};
use crate::interface::{Interface, MethodSignature, Param, ParamType};
use crate::loid::Loid;

/// A parsed interface declaration, not yet attributed to a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdlInterface {
    /// The declared interface name.
    pub name: String,
    /// The method signatures, in declaration order.
    pub methods: Vec<MethodSignature>,
}

impl IdlInterface {
    /// Convert to a run-time [`Interface`] attributed to `provider`.
    pub fn into_interface(self, provider: Loid) -> Interface {
        let mut i = Interface::new();
        for m in self.methods {
            i.define(m, provider);
        }
        i
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Semi,
}

struct Lexer<'a> {
    src: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.chars().peekable(),
            line: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> CoreError {
        CoreError::IdlParse {
            line: self.line,
            message: message.into(),
        }
    }

    /// Next token with the line it started on, or `None` at end of input.
    fn next_tok(&mut self) -> CoreResult<Option<(Tok, usize)>> {
        loop {
            match self.src.peek().copied() {
                None => return Ok(None),
                Some('\n') => {
                    self.line += 1;
                    self.src.next();
                }
                Some(c) if c.is_whitespace() => {
                    self.src.next();
                }
                Some('#') => self.skip_line(),
                Some('/') => {
                    self.src.next();
                    if self.src.peek() == Some(&'/') {
                        self.skip_line();
                    } else {
                        return Err(self.err("stray '/' (comments are // or #)"));
                    }
                }
                Some('{') => return self.one(Tok::LBrace),
                Some('}') => return self.one(Tok::RBrace),
                Some('(') => return self.one(Tok::LParen),
                Some(')') => return self.one(Tok::RParen),
                Some(',') => return self.one(Tok::Comma),
                Some(';') => return self.one(Tok::Semi),
                Some(c) if c.is_ascii_alphanumeric() || c == '_' => {
                    let line = self.line;
                    let mut s = String::new();
                    while let Some(&c) = self.src.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            s.push(c);
                            self.src.next();
                        } else {
                            break;
                        }
                    }
                    return Ok(Some((Tok::Ident(s), line)));
                }
                Some(c) => return Err(self.err(format!("unexpected character {c:?}"))),
            }
        }
    }

    fn one(&mut self, t: Tok) -> CoreResult<Option<(Tok, usize)>> {
        let line = self.line;
        self.src.next();
        Ok(Some((t, line)))
    }

    fn skip_line(&mut self) {
        for c in self.src.by_ref() {
            if c == '\n' {
                self.line += 1;
                break;
            }
        }
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn err(&self, message: impl Into<String>) -> CoreError {
        CoreError::IdlParse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> CoreResult<()> {
        match self.next() {
            Some(t) if t == *want => Ok(()),
            Some(t) => Err(CoreError::IdlParse {
                line: self.toks[self.pos - 1].1,
                message: format!("expected {what}, found {t:?}"),
            }),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> CoreResult<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => Err(CoreError::IdlParse {
                line: self.toks[self.pos - 1].1,
                message: format!("expected {what}, found {t:?}"),
            }),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_type(&mut self, what: &str) -> CoreResult<ParamType> {
        let line = self.line();
        let name = self.expect_ident(what)?;
        ParamType::from_idl_name(&name).ok_or(CoreError::IdlParse {
            line,
            message: format!("unknown type `{name}` for {what}"),
        })
    }

    fn parse_interface(&mut self) -> CoreResult<IdlInterface> {
        let kw = self.expect_ident("`interface`")?;
        if kw != "interface" {
            return Err(CoreError::IdlParse {
                line: self.toks[self.pos - 1].1,
                message: format!("expected `interface`, found `{kw}`"),
            });
        }
        let name = self.expect_ident("interface name")?;
        self.expect(&Tok::LBrace, "`{`")?;
        let mut methods = Vec::new();
        loop {
            if self.peek() == Some(&Tok::RBrace) {
                self.next();
                break;
            }
            methods.push(self.parse_method()?);
        }
        // Optional trailing semicolon after `}` (CORBA style).
        if self.peek() == Some(&Tok::Semi) {
            self.next();
        }
        Ok(IdlInterface { name, methods })
    }

    fn parse_method(&mut self) -> CoreResult<MethodSignature> {
        let returns = self.expect_type("return type")?;
        let name = self.expect_ident("method name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let ty = self.expect_type("parameter type")?;
                if ty == ParamType::Void {
                    return Err(self.err("`void` is not a parameter type"));
                }
                let pname = self.expect_ident("parameter name")?;
                params.push(Param { name: pname, ty });
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.next();
                    }
                    Some(Tok::RParen) => break,
                    _ => return Err(self.err("expected `,` or `)` in parameter list")),
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        self.expect(&Tok::Semi, "`;`")?;
        Ok(MethodSignature {
            name,
            params,
            returns,
        })
    }
}

/// Parse IDL source into its interface declarations.
///
/// ```
/// let src = "interface File { bytes Read(); void Write(bytes data); };";
/// let decl = legion_core::idl::parse_one(src).unwrap();
/// assert_eq!(decl.name, "File");
/// assert_eq!(decl.methods.len(), 2);
/// ```
pub fn parse(src: &str) -> CoreResult<Vec<IdlInterface>> {
    let mut lexer = Lexer::new(src);
    let mut toks = Vec::new();
    while let Some(t) = lexer.next_tok()? {
        toks.push(t);
    }
    let mut p = Parser { toks, pos: 0 };
    let mut out = Vec::new();
    while p.peek().is_some() {
        out.push(p.parse_interface()?);
    }
    Ok(out)
}

/// Parse MPL-flavoured source (the paper's footnote 1 names the Mentat
/// Programming Language as Legion's second interface language). The MPL
/// is a C++ extension; the subset accepted here is
///
/// ```mpl
/// mentat class Worker {
///     int Add(int a, int b);
///     void Reset();
/// };
/// ```
///
/// i.e. `interface` becomes `mentat class`; everything else matches the
/// CORBA-flavoured grammar, so both front ends produce identical
/// [`IdlInterface`] values.
pub fn parse_mpl(src: &str) -> CoreResult<Vec<IdlInterface>> {
    let mut lexer = Lexer::new(src);
    let mut toks = Vec::new();
    while let Some(t) = lexer.next_tok()? {
        toks.push(t);
    }
    // Rewrite the leading `mentat class` keyword pair into `interface`
    // tokens so the same parser serves both languages.
    let mut rewritten: Vec<(Tok, usize)> = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        let is_mentat_class = matches!(&toks[i].0, Tok::Ident(a) if a == "mentat")
            && matches!(toks.get(i + 1), Some((Tok::Ident(b), _)) if b == "class");
        if is_mentat_class {
            rewritten.push((Tok::Ident("interface".to_owned()), toks[i].1));
            i += 2;
        } else {
            rewritten.push(toks[i].clone());
            i += 1;
        }
    }
    let mut p = Parser {
        toks: rewritten,
        pos: 0,
    };
    let mut out = Vec::new();
    while p.peek().is_some() {
        out.push(p.parse_interface()?);
    }
    Ok(out)
}

/// Parse IDL source that must contain exactly one interface.
pub fn parse_one(src: &str) -> CoreResult<IdlInterface> {
    let mut all = parse(src)?;
    match all.len() {
        1 => Ok(all.pop().expect("len checked")),
        n => Err(CoreError::IdlParse {
            line: 1,
            message: format!("expected exactly one interface, found {n}"),
        }),
    }
}

/// Render an [`Interface`] back to IDL text (stable, name-ordered).
pub fn render(name: &str, interface: &Interface) -> String {
    let mut out = format!("interface {name} {{\n");
    for sig in interface.iter() {
        out.push_str("    ");
        out.push_str(sig.returns.idl_name());
        out.push(' ');
        out.push_str(&sig.name);
        out.push('(');
        for (i, p) in sig.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(p.ty.idl_name());
            out.push(' ');
            out.push_str(&p.name);
        }
        out.push_str(");\n");
    }
    out.push_str("};\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const BINDING_AGENT_IDL: &str = r#"
        // LegionBindingAgent, paper section 3.6.
        interface BindingAgent {
            binding GetBinding(loid target);
            binding RefreshBinding(binding stale);
            void InvalidateBinding(loid target);
            void AddBinding(binding b);
        };
    "#;

    #[test]
    fn parses_binding_agent() {
        let i = parse_one(BINDING_AGENT_IDL).unwrap();
        assert_eq!(i.name, "BindingAgent");
        assert_eq!(i.methods.len(), 4);
        assert_eq!(i.methods[0].name, "GetBinding");
        assert_eq!(i.methods[0].returns, ParamType::Binding);
        assert_eq!(i.methods[0].params[0].ty, ParamType::Loid);
    }

    #[test]
    fn parses_empty_interface_and_no_params() {
        let all = parse("interface Empty {}; interface P { void f(); }").unwrap();
        assert_eq!(all.len(), 2);
        assert!(all[0].methods.is_empty());
        assert!(all[1].methods[0].params.is_empty());
    }

    #[test]
    fn parses_multi_param() {
        let i = parse_one("interface M { int Add(int a, int b); };").unwrap();
        assert_eq!(i.methods[0].params.len(), 2);
        assert_eq!(i.methods[0].to_string(), "int Add(int a, int b)");
    }

    #[test]
    fn hash_comments_work() {
        let i = parse_one("# heading\ninterface C { void f(); # tail\n };").unwrap();
        assert_eq!(i.name, "C");
    }

    #[test]
    fn error_reports_line() {
        let src = "interface C {\n    void f()\n};"; // missing `;` on line 2
        match parse(src) {
            Err(CoreError::IdlParse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_type() {
        let e = parse("interface C { wibble f(); };").unwrap_err();
        assert!(e.to_string().contains("wibble"));
    }

    #[test]
    fn rejects_void_parameter() {
        assert!(parse("interface C { void f(void x); };").is_err());
    }

    #[test]
    fn rejects_stray_slash_and_garbage() {
        assert!(parse("interface C { / }").is_err());
        assert!(parse("interface C { void f(); } @").is_err());
        assert!(parse("iface C {}").is_err());
    }

    #[test]
    fn rejects_truncated_input() {
        assert!(parse("interface C {").is_err());
        assert!(parse("interface").is_err());
        assert!(parse("interface C { void f(int").is_err());
    }

    #[test]
    fn parse_one_requires_exactly_one() {
        assert!(parse_one("interface A {}; interface B {};").is_err());
        assert!(parse_one("").is_err());
    }

    #[test]
    fn render_roundtrip() {
        let i = parse_one(BINDING_AGENT_IDL).unwrap();
        let provider = Loid::class_object(42);
        let iface = i.into_interface(provider);
        let text = render("BindingAgent", &iface);
        let again = parse_one(&text).unwrap().into_interface(provider);
        assert_eq!(iface, again);
    }

    #[test]
    fn mpl_flavour_parses_to_the_same_interface() {
        let corba = "interface Worker { int Add(int a, int b); void Reset(); };";
        let mpl = "mentat class Worker { int Add(int a, int b); void Reset(); };";
        let a = parse_one(corba).unwrap();
        let b = parse_mpl(mpl).unwrap().pop().unwrap();
        assert_eq!(a, b, "both front ends agree");
    }

    #[test]
    fn mpl_allows_multiple_classes_and_plain_interfaces() {
        let src = "mentat class A { void f(); };\ninterface B { void g(); };";
        let all = parse_mpl(src).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].name, "A");
        assert_eq!(all[1].name, "B");
    }

    #[test]
    fn mpl_errors_keep_line_numbers() {
        let src = "mentat class A {\n    wibble f();\n};";
        match parse_mpl(src) {
            Err(CoreError::IdlParse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn mentat_without_class_is_an_ordinary_ident() {
        // `mentat` not followed by `class` is not special — it fails as an
        // unknown leading keyword, like any other stray identifier.
        assert!(parse_mpl("mentat interface A {};").is_err());
    }

    #[test]
    fn into_interface_sets_provenance() {
        let provider = Loid::class_object(42);
        let iface = parse_one("interface C { void f(); };")
            .unwrap()
            .into_interface(provider);
        assert_eq!(iface.provider("f"), Some(provider));
    }
}
