//! Multiple-inheritance composition (paper §2.1, §2.1.1).
//!
//! "Multiple inheritance in Legion is a two step process. First, the class
//! is created by calling `Derive()` on an existing class object. Second,
//! the composition of future instances of the class is set via calls to
//! the `InheritFrom()` method ... When the instances of the class are
//! created via the `Create()` method, their composition reflects the way
//! the class was defined in the inheritance process."
//!
//! This module provides:
//!
//! * [`resolution_order`] — the linearization used to compose interfaces
//!   (self, then bases in `InheritFrom` order, then the superclass, breadth
//!   first);
//! * [`compose`] — rebuild a class's *effective* interface from scratch
//!   out of every ancestor's own declarations (nearest definition wins);
//! * [`find_ambiguities`] — detect method names that two unrelated bases
//!   define with incompatible signatures and that the class itself does not
//!   disambiguate.
//!
//! `ClassObject` maintains its effective interface incrementally
//! (`Derive()` copies, `InheritFrom()` merges); [`compose`] is the
//! from-scratch specification of the same result, used by tests and by
//! consistency checks after bulk graph edits.

use crate::error::CoreResult;
use crate::interface::{Interface, MethodSignature};
use crate::loid::Loid;
use crate::relations::RelationGraph;
use std::collections::BTreeMap;

/// The interface-composition order for `class`: itself first, then its
/// ancestors breadth-first (bases before superclass at each level), with
/// duplicates removed. Earlier classes shadow later ones.
pub fn resolution_order(graph: &RelationGraph, class: Loid) -> Vec<Loid> {
    graph.all_ancestors(class)
}

/// Rebuild the effective interface of `class` from the ancestors' *own*
/// method declarations, looked up through `own`.
///
/// The nearest declaration of each method (in [`resolution_order`]) wins;
/// an incompatible duplicate further away is shadowed, exactly as a C++
/// derived-class redefinition hides a base's. Unrelated-sibling conflicts
/// are *not* errors here — use [`find_ambiguities`] to surface them.
pub fn compose(graph: &RelationGraph, class: Loid, own: &BTreeMap<Loid, Interface>) -> Interface {
    let mut effective = Interface::new();
    for ancestor in resolution_order(graph, class) {
        let Some(decls) = own.get(&ancestor) else {
            continue;
        };
        for (sig, provider) in decls.iter_with_providers() {
            if !effective.contains(&sig.name) {
                effective.define(sig.clone(), provider);
            }
        }
    }
    effective
}

/// An ambiguity: two bases reachable from `class` declare `method` with
/// incompatible signatures, and `class` itself does not redefine it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ambiguity {
    /// The ambiguous method name.
    pub method: String,
    /// The first declaring ancestor encountered.
    pub first: Loid,
    /// First ancestor's signature.
    pub first_sig: MethodSignature,
    /// The second, incompatible declaring ancestor.
    pub second: Loid,
    /// Second ancestor's signature.
    pub second_sig: MethodSignature,
}

/// Find all ambiguities in `class`'s inheritance closure.
///
/// A class resolves an ambiguity by declaring the method itself — its own
/// declaration shadows every ancestor and no ambiguity is reported.
pub fn find_ambiguities(
    graph: &RelationGraph,
    class: Loid,
    own: &BTreeMap<Loid, Interface>,
) -> Vec<Ambiguity> {
    let mut first_seen: BTreeMap<String, (Loid, MethodSignature)> = BTreeMap::new();
    let own_decls: Option<&Interface> = own.get(&class);
    let mut out = Vec::new();
    for ancestor in resolution_order(graph, class) {
        let Some(decls) = own.get(&ancestor) else {
            continue;
        };
        for sig in decls.iter() {
            // The class's own declarations disambiguate.
            if ancestor != class && own_decls.is_some_and(|d| d.contains(&sig.name)) {
                continue;
            }
            match first_seen.get(&sig.name) {
                None => {
                    first_seen.insert(sig.name.clone(), (ancestor, sig.clone()));
                }
                Some((first, first_sig)) => {
                    if *first != ancestor && !first_sig.compatible_with(sig) {
                        out.push(Ambiguity {
                            method: sig.name.clone(),
                            first: *first,
                            first_sig: first_sig.clone(),
                            second: ancestor,
                            second_sig: sig.clone(),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Check that an incrementally maintained effective interface matches the
/// from-scratch composition — the invariant tying `ClassObject`'s eager
/// merging to the model of this module.
pub fn verify_composition(
    graph: &RelationGraph,
    class: Loid,
    own: &BTreeMap<Loid, Interface>,
    effective: &Interface,
) -> CoreResult<()> {
    let expected = compose(graph, class, own);
    if &expected == effective {
        Ok(())
    } else {
        Err(crate::error::CoreError::Invalid(format!(
            "effective interface of {class} diverged from composition \
             ({} methods expected, {} present)",
            expected.len(),
            effective.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::ParamType;
    use crate::wellknown::LEGION_OBJECT;

    fn cls(id: u64) -> Loid {
        Loid::class_object(id)
    }

    fn decl(owner: Loid, name: &str, ret: ParamType) -> Interface {
        let mut i = Interface::new();
        i.define(MethodSignature::new(name, vec![], ret), owner);
        i
    }

    /// C kind-of S kind-of LegionObject; C inherits-from B1, B2.
    fn diamondish() -> (RelationGraph, Loid, Loid, Loid, Loid) {
        let mut g = RelationGraph::new();
        let s = cls(20);
        let c = cls(21);
        let b1 = cls(22);
        let b2 = cls(23);
        g.add_kind_of(s, LEGION_OBJECT).unwrap();
        g.add_kind_of(c, s).unwrap();
        g.add_inherits_from(c, b1).unwrap();
        g.add_inherits_from(c, b2).unwrap();
        (g, s, c, b1, b2)
    }

    #[test]
    fn resolution_order_self_bases_superclass() {
        let (g, s, c, b1, b2) = diamondish();
        let order = resolution_order(&g, c);
        assert_eq!(order, vec![c, b1, b2, s, LEGION_OBJECT]);
    }

    #[test]
    fn compose_nearest_wins() {
        let (g, s, c, b1, _) = diamondish();
        let mut own = BTreeMap::new();
        own.insert(c, decl(c, "f", ParamType::Int));
        own.insert(b1, decl(b1, "f", ParamType::Void)); // shadowed by c
        own.insert(s, decl(s, "g", ParamType::Void));
        let eff = compose(&g, c, &own);
        assert_eq!(eff.get("f").unwrap().returns, ParamType::Int);
        assert_eq!(eff.provider("f"), Some(c));
        assert!(eff.contains("g"));
        assert_eq!(eff.len(), 2);
    }

    #[test]
    fn compose_base_beats_superclass() {
        let (g, s, c, b1, _) = diamondish();
        let mut own = BTreeMap::new();
        own.insert(b1, decl(b1, "f", ParamType::Int));
        own.insert(s, decl(s, "f", ParamType::Void));
        let eff = compose(&g, c, &own);
        assert_eq!(eff.provider("f"), Some(b1), "bases precede superclass");
    }

    #[test]
    fn ambiguity_between_unrelated_bases() {
        let (g, _, c, b1, b2) = diamondish();
        let mut own = BTreeMap::new();
        own.insert(b1, decl(b1, "f", ParamType::Int));
        own.insert(b2, decl(b2, "f", ParamType::Void));
        let ambs = find_ambiguities(&g, c, &own);
        assert_eq!(ambs.len(), 1);
        assert_eq!(ambs[0].method, "f");
        assert_eq!(ambs[0].first, b1);
        assert_eq!(ambs[0].second, b2);
    }

    #[test]
    fn own_declaration_disambiguates() {
        let (g, _, c, b1, b2) = diamondish();
        let mut own = BTreeMap::new();
        own.insert(c, decl(c, "f", ParamType::Str));
        own.insert(b1, decl(b1, "f", ParamType::Int));
        own.insert(b2, decl(b2, "f", ParamType::Void));
        assert!(find_ambiguities(&g, c, &own).is_empty());
        let eff = compose(&g, c, &own);
        assert_eq!(eff.get("f").unwrap().returns, ParamType::Str);
    }

    #[test]
    fn compatible_duplicates_are_not_ambiguous() {
        let (g, _, c, b1, b2) = diamondish();
        let mut own = BTreeMap::new();
        own.insert(b1, decl(b1, "f", ParamType::Int));
        own.insert(b2, decl(b2, "f", ParamType::Int));
        assert!(find_ambiguities(&g, c, &own).is_empty());
    }

    #[test]
    fn diamond_single_grandbase_not_ambiguous() {
        // b1 and b2 both inherit from d; d's method reaches c twice but
        // from the same declaring class — no ambiguity.
        let (mut g, _, c, b1, b2) = diamondish();
        let d = cls(24);
        g.add_inherits_from(b1, d).unwrap();
        g.add_inherits_from(b2, d).unwrap();
        let mut own = BTreeMap::new();
        own.insert(d, decl(d, "f", ParamType::Int));
        assert!(find_ambiguities(&g, c, &own).is_empty());
        let eff = compose(&g, c, &own);
        assert_eq!(eff.provider("f"), Some(d));
    }

    #[test]
    fn verify_composition_accepts_and_rejects() {
        let (g, _, c, b1, _) = diamondish();
        let mut own = BTreeMap::new();
        own.insert(b1, decl(b1, "f", ParamType::Int));
        let eff = compose(&g, c, &own);
        assert!(verify_composition(&g, c, &own, &eff).is_ok());
        let bogus = decl(c, "other", ParamType::Void);
        assert!(verify_composition(&g, c, &own, &bogus).is_err());
    }
}
