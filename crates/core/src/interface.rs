//! Interfaces and method signatures (paper §2).
//!
//! "Each method has a signature that describes the parameters and return
//! value, if any, of the method. The complete set of method signatures for
//! an object fully describes that object's interface, which is inherited
//! from its class."
//!
//! Interfaces here are *run-time values*: `Derive()` copies them,
//! `InheritFrom()` merges them (with conflict detection), and
//! `GetInterface()` returns them. The textual syntax is handled by
//! [`crate::idl`].

use crate::error::{CoreError, CoreResult};
use crate::loid::Loid;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The type of a parameter or return value in a method signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamType {
    /// No value (void return).
    Void,
    /// Boolean.
    Bool,
    /// Signed 64-bit integer.
    Int,
    /// Unsigned 64-bit integer.
    Uint,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Raw byte payload.
    Bytes,
    /// A Legion Object Identifier.
    Loid,
    /// An Object Address.
    Address,
    /// A binding triple.
    Binding,
    /// A (homogeneously erased) list of values.
    List,
    /// Any value: the parameter is deliberately untyped (generic
    /// key/value state methods). Every wire value conforms.
    Any,
}

impl ParamType {
    /// The IDL keyword for this type.
    pub fn idl_name(self) -> &'static str {
        match self {
            ParamType::Void => "void",
            ParamType::Bool => "bool",
            ParamType::Int => "int",
            ParamType::Uint => "uint",
            ParamType::Float => "float",
            ParamType::Str => "string",
            ParamType::Bytes => "bytes",
            ParamType::Loid => "loid",
            ParamType::Address => "address",
            ParamType::Binding => "binding",
            ParamType::List => "list",
            ParamType::Any => "any",
        }
    }

    /// Parse an IDL type keyword.
    pub fn from_idl_name(s: &str) -> Option<ParamType> {
        Some(match s {
            "void" => ParamType::Void,
            "bool" => ParamType::Bool,
            "int" => ParamType::Int,
            "uint" => ParamType::Uint,
            "float" => ParamType::Float,
            "string" => ParamType::Str,
            "bytes" => ParamType::Bytes,
            "loid" => ParamType::Loid,
            "address" => ParamType::Address,
            "binding" => ParamType::Binding,
            "list" => ParamType::List,
            "any" => ParamType::Any,
            _ => return None,
        })
    }
}

impl fmt::Display for ParamType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.idl_name())
    }
}

/// One named, typed parameter of a method.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name (documentation only; matching is positional).
    pub name: String,
    /// Parameter type.
    pub ty: ParamType,
}

/// A method signature: name, parameters, return type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MethodSignature {
    /// The method name; unique within an interface.
    pub name: String,
    /// Ordered parameter list.
    pub params: Vec<Param>,
    /// Return type; `Void` if the method returns nothing.
    pub returns: ParamType,
}

impl MethodSignature {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        params: Vec<(&str, ParamType)>,
        returns: ParamType,
    ) -> Self {
        MethodSignature {
            name: name.into(),
            params: params
                .into_iter()
                .map(|(n, ty)| Param {
                    name: n.to_owned(),
                    ty,
                })
                .collect(),
            returns,
        }
    }

    /// Two signatures are *compatible* when their parameter types and
    /// return type agree (parameter names are documentation only).
    /// Compatible duplicate methods arriving via multiple inheritance are
    /// merged silently; incompatible ones are conflicts.
    pub fn compatible_with(&self, other: &MethodSignature) -> bool {
        self.name == other.name
            && self.returns == other.returns
            && self.params.len() == other.params.len()
            && self
                .params
                .iter()
                .zip(&other.params)
                .all(|(a, b)| a.ty == b.ty)
    }
}

impl fmt::Display for MethodSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}(", self.returns, self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", p.ty, p.name)?;
        }
        write!(f, ")")
    }
}

/// A full object interface: a set of method signatures, each tagged with
/// the class that contributed it (its *provenance*, used for conflict
/// reporting and for the paper's "re-inheriting" of implementations).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Interface {
    methods: BTreeMap<String, (MethodSignature, Loid)>,
}

impl Interface {
    /// The empty interface.
    pub fn new() -> Self {
        Interface::default()
    }

    /// Number of methods.
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// Is the interface empty?
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }

    /// Add or overwrite a method, recording `provider` as its provenance.
    /// Overwriting models the paper's "classes may alter the functionality
    /// of ... member functions by overloading them \[or\] redefining them".
    pub fn define(&mut self, sig: MethodSignature, provider: Loid) {
        self.methods.insert(sig.name.clone(), (sig, provider));
    }

    /// Look up a method by name.
    pub fn get(&self, name: &str) -> Option<&MethodSignature> {
        self.methods.get(name).map(|(s, _)| s)
    }

    /// The provenance (defining class) of a method, if present.
    pub fn provider(&self, name: &str) -> Option<Loid> {
        self.methods.get(name).map(|(_, p)| *p)
    }

    /// Does the interface include a method named `name`?
    pub fn contains(&self, name: &str) -> bool {
        self.methods.contains_key(name)
    }

    /// Remove a method (used to model "possibly empty member functions").
    pub fn remove(&mut self, name: &str) -> bool {
        self.methods.remove(name).is_some()
    }

    /// Iterate over signatures in deterministic (name) order.
    pub fn iter(&self) -> impl Iterator<Item = &MethodSignature> {
        self.methods.values().map(|(s, _)| s)
    }

    /// Iterate over `(signature, provider)` pairs in name order.
    pub fn iter_with_providers(&self) -> impl Iterator<Item = (&MethodSignature, Loid)> {
        self.methods.values().map(|(s, p)| (s, *p))
    }

    /// Merge `other` into `self` (the `InheritFrom()` interface effect).
    ///
    /// * methods new to `self` are added with their original provenance;
    /// * identical/compatible duplicates are kept (first definition wins —
    ///   the subclass's own definitions shadow the base's);
    /// * incompatible duplicates are an [`CoreError::InterfaceConflict`].
    pub fn merge_from(&mut self, other: &Interface) -> CoreResult<usize> {
        let mut added = 0;
        for (name, (sig, provider)) in &other.methods {
            match self.methods.get(name) {
                None => {
                    self.methods.insert(name.clone(), (sig.clone(), *provider));
                    added += 1;
                }
                Some((existing, existing_provider)) => {
                    if !existing.compatible_with(sig) {
                        return Err(CoreError::InterfaceConflict {
                            method: name.clone(),
                            first: *existing_provider,
                            second: *provider,
                        });
                    }
                    // Compatible: existing (subclass) definition shadows.
                }
            }
        }
        Ok(added)
    }

    /// Like [`Interface::merge_from`], but methods already defined by
    /// `owner` itself shadow incoming definitions unconditionally — the
    /// paper allows a class to *redefine* inherited member functions, and a
    /// deliberate redefinition must not be reported as a conflict.
    /// Incompatible duplicates contributed by two *different* ancestors
    /// still conflict.
    pub fn merge_from_with_owner(&mut self, other: &Interface, owner: Loid) -> CoreResult<usize> {
        let mut added = 0;
        for (name, (sig, provider)) in &other.methods {
            match self.methods.get(name) {
                None => {
                    self.methods.insert(name.clone(), (sig.clone(), *provider));
                    added += 1;
                }
                Some((_, p)) if *p == owner => {
                    // The owner's own (re)definition shadows the base's.
                }
                Some((existing, existing_provider)) => {
                    if !existing.compatible_with(sig) {
                        return Err(CoreError::InterfaceConflict {
                            method: name.clone(),
                            first: *existing_provider,
                            second: *provider,
                        });
                    }
                }
            }
        }
        Ok(added)
    }

    /// A stable 64-bit hash of the interface shape, used by the persistence
    /// layer to detect interface drift between an OPR and its class.
    pub fn shape_hash(&self) -> u64 {
        // FNV-1a over the canonical textual form: deterministic across
        // processes (unlike `std::hash::RandomState`).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (sig, _) in self.methods.values() {
            eat(sig.name.as_bytes());
            eat(&[0xff]);
            eat(sig.returns.idl_name().as_bytes());
            for p in &sig.params {
                eat(&[0xfe]);
                eat(p.ty.idl_name().as_bytes());
            }
            eat(&[0xfd]);
        }
        h
    }
}

impl fmt::Display for Interface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for sig in self.iter() {
            writeln!(f, "  {sig};")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(name: &str, ret: ParamType) -> MethodSignature {
        MethodSignature::new(name, vec![("x", ParamType::Int)], ret)
    }

    #[test]
    fn param_type_idl_roundtrip() {
        for t in [
            ParamType::Void,
            ParamType::Bool,
            ParamType::Int,
            ParamType::Uint,
            ParamType::Float,
            ParamType::Str,
            ParamType::Bytes,
            ParamType::Loid,
            ParamType::Address,
            ParamType::Binding,
            ParamType::List,
        ] {
            assert_eq!(ParamType::from_idl_name(t.idl_name()), Some(t));
        }
        assert_eq!(ParamType::from_idl_name("wibble"), None);
    }

    #[test]
    fn signature_display() {
        let s = MethodSignature::new(
            "GetBinding",
            vec![("target", ParamType::Loid)],
            ParamType::Binding,
        );
        assert_eq!(s.to_string(), "binding GetBinding(loid target)");
    }

    #[test]
    fn compatibility_ignores_param_names() {
        let a = MethodSignature::new("f", vec![("x", ParamType::Int)], ParamType::Void);
        let b = MethodSignature::new("f", vec![("y", ParamType::Int)], ParamType::Void);
        assert!(a.compatible_with(&b));
    }

    #[test]
    fn compatibility_requires_types() {
        let a = sig("f", ParamType::Void);
        let b = sig("f", ParamType::Int);
        assert!(!a.compatible_with(&b));
        let c = MethodSignature::new("f", vec![], ParamType::Void);
        assert!(!a.compatible_with(&c));
        let d = sig("g", ParamType::Void);
        assert!(!a.compatible_with(&d));
    }

    #[test]
    fn define_get_remove() {
        let mut i = Interface::new();
        let owner = Loid::class_object(10);
        assert!(i.is_empty());
        i.define(sig("f", ParamType::Void), owner);
        assert_eq!(i.len(), 1);
        assert!(i.contains("f"));
        assert_eq!(i.provider("f"), Some(owner));
        assert!(i.get("f").is_some());
        assert!(i.remove("f"));
        assert!(!i.remove("f"));
        assert!(i.is_empty());
    }

    #[test]
    fn redefinition_overwrites() {
        let mut i = Interface::new();
        let a = Loid::class_object(10);
        let b = Loid::class_object(11);
        i.define(sig("f", ParamType::Void), a);
        i.define(sig("f", ParamType::Int), b);
        assert_eq!(i.get("f").unwrap().returns, ParamType::Int);
        assert_eq!(i.provider("f"), Some(b));
    }

    #[test]
    fn merge_adds_new_methods() {
        let a_cls = Loid::class_object(10);
        let b_cls = Loid::class_object(11);
        let mut a = Interface::new();
        a.define(sig("f", ParamType::Void), a_cls);
        let mut b = Interface::new();
        b.define(sig("g", ParamType::Void), b_cls);
        let added = a.merge_from(&b).unwrap();
        assert_eq!(added, 1);
        assert!(a.contains("f") && a.contains("g"));
        assert_eq!(a.provider("g"), Some(b_cls));
    }

    #[test]
    fn merge_keeps_subclass_definition_on_compatible_duplicate() {
        let a_cls = Loid::class_object(10);
        let b_cls = Loid::class_object(11);
        let mut a = Interface::new();
        a.define(sig("f", ParamType::Void), a_cls);
        let mut b = Interface::new();
        b.define(sig("f", ParamType::Void), b_cls);
        let added = a.merge_from(&b).unwrap();
        assert_eq!(added, 0);
        assert_eq!(a.provider("f"), Some(a_cls), "subclass definition shadows");
    }

    #[test]
    fn merge_detects_conflicts() {
        let a_cls = Loid::class_object(10);
        let b_cls = Loid::class_object(11);
        let mut a = Interface::new();
        a.define(sig("f", ParamType::Void), a_cls);
        let mut b = Interface::new();
        b.define(sig("f", ParamType::Int), b_cls);
        match a.merge_from(&b) {
            Err(CoreError::InterfaceConflict {
                method,
                first,
                second,
            }) => {
                assert_eq!(method, "f");
                assert_eq!(first, a_cls);
                assert_eq!(second, b_cls);
            }
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn shape_hash_is_stable_and_discriminating() {
        let owner = Loid::class_object(10);
        let mut a = Interface::new();
        a.define(sig("f", ParamType::Void), owner);
        let mut b = Interface::new();
        b.define(sig("f", ParamType::Void), Loid::class_object(99));
        // Provenance does not affect shape.
        assert_eq!(a.shape_hash(), b.shape_hash());
        let mut c = Interface::new();
        c.define(sig("f", ParamType::Int), owner);
        assert_ne!(a.shape_hash(), c.shape_hash());
        assert_ne!(Interface::new().shape_hash(), a.shape_hash());
    }

    #[test]
    fn iteration_is_name_ordered() {
        let owner = Loid::class_object(10);
        let mut i = Interface::new();
        i.define(sig("zeta", ParamType::Void), owner);
        i.define(sig("alpha", ParamType::Void), owner);
        let names: Vec<_> = i.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
