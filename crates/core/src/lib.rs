//! # legion-core — the Core Legion Object Model
//!
//! This crate implements the *model* layer of the Legion reproduction: the
//! data structures and rules of Lewis & Grimshaw's *Core Legion Object
//! Model* (HPDC 1996). Everything in Legion is an object; classes are
//! objects too, and the relationships between them (**is-a**, **kind-of**,
//! **inherits-from**) are first-class, run-time entities.
//!
//! The crate is deliberately free of any transport or runtime machinery so
//! that the model can be tested and benchmarked in isolation. The sibling
//! crates layer networking (`legion-net`), persistence (`legion-persist`),
//! naming (`legion-naming`) and the live runtime (`legion-runtime`) on top.
//!
//! ## Map from the paper
//!
//! | Paper section | Module |
//! |---|---|
//! | §3.2 Legion Object Identifiers | [`loid`] |
//! | §2.1.3 core Abstract classes | [`wellknown`] |
//! | §2 interfaces & IDL | [`interface`], [`idl`] |
//! | §3.4 Object Addresses | [`address`] |
//! | §2.1 object-mandatory functions | [`object`] |
//! | §3.7 class objects & the logical table | [`class`] |
//! | §2.1.1 relations | [`relations`] |
//! | §2.1 multiple inheritance | [`inherit`] |
//! | §4.1.3 LegionClass & responsibility pairs | [`metaclass`] |
//! | §5.2.2 class cloning | [`clone`] |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod address;
pub mod allocs;
pub mod binding;
pub mod class;
pub mod clone;
pub mod context;
pub mod dispatch;
pub mod env;
pub mod error;
pub mod fxmap;
pub mod idl;
pub mod inherit;
pub mod interface;
pub mod loid;
pub mod metaclass;
pub mod model;
pub mod object;
pub mod relations;
pub mod symbol;
pub mod time;
pub mod trace;
pub mod value;
pub mod wellknown;

pub use address::{AddressKind, AddressSemantics, ObjectAddress, ObjectAddressElement};
pub use binding::Binding;
pub use class::{ClassKind, ClassObject, LogicalTable, TableEntry};
pub use context::{Context, ContextEntry};
pub use env::InvocationEnv;
pub use error::{CoreError, CoreResult};
pub use interface::{Interface, MethodSignature, ParamType};
pub use loid::{ClassId, Loid, LoidAllocator};
pub use metaclass::LegionClassAuthority;
pub use model::ObjectModel;
pub use object::{ObjectMandatory, ObjectState};
pub use relations::RelationGraph;
pub use symbol::Sym;
pub use time::{Expiry, SimTime};
pub use trace::{SpanId, TraceContext, TraceId};
pub use value::LegionValue;
