//! Legion Object Identifiers (paper §3.2).
//!
//! Every Legion object is named by a **LOID**. The 128 high-order bits are
//! split into a 64-bit **Class Identifier** and a 64-bit **Class Specific**
//! field; the low-order `P` bits are the object's **Public Key**. In this
//! reproduction `P = 128` (the paper leaves `P` "a constant whose size has
//! yet to be determined").
//!
//! Conventions from the paper that this module enforces:
//!
//! * the Class Specific field of every *class object's* LOID is zero;
//! * `LegionClass` hands out unique Class Identifiers ([`crate::metaclass`]);
//! * a class may use the Class Specific field however it likes — the
//!   default [`LoidAllocator`] uses it as a sequence number;
//! * the responsible class of any non-class LOID is derivable *locally* by
//!   zeroing the Class Specific field (§4.1.3) — see [`Loid::class_loid`].

use crate::error::{CoreError, CoreResult};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Number of bits in the Public Key field (`P` in the paper).
pub const PUBLIC_KEY_BITS: usize = 128;
/// Number of bytes in the Public Key field.
pub const PUBLIC_KEY_BYTES: usize = PUBLIC_KEY_BITS / 8;

/// A 64-bit Class Identifier, unique per class, issued by LegionClass.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClassId(pub u64);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.0)
    }
}

/// A Legion Object Identifier.
///
/// Ordering and hashing consider all three fields, so LOIDs can key maps
/// and be sorted deterministically. The public key participates in equality
/// — two LOIDs with identical class/specific fields but different keys are
/// different names (the key is the identity anchor for security, §3.2).
///
/// ```
/// use legion_core::loid::Loid;
///
/// let class = Loid::class_object(16);
/// let instance = Loid::instance(16, 7);
/// assert!(class.is_class());
/// assert!(!instance.is_class());
/// // §4.1.3: the responsible class is derivable locally.
/// assert_eq!(instance.class_loid(), class);
/// // Names round-trip through text.
/// let parsed: Loid = instance.to_string().parse().unwrap();
/// assert_eq!(parsed, instance);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Loid {
    /// 64-bit Class Identifier, assigned by LegionClass.
    pub class_id: ClassId,
    /// 64-bit Class Specific field; zero for class objects.
    pub class_specific: u64,
    /// `P`-bit public key (here: 128 bits).
    pub public_key: [u8; PUBLIC_KEY_BYTES],
}

impl Loid {
    /// The all-zero LOID, used as a sentinel for "no object".
    pub const NIL: Loid = Loid {
        class_id: ClassId(0),
        class_specific: 0,
        public_key: [0; PUBLIC_KEY_BYTES],
    };

    /// Construct a LOID with an explicit key.
    pub const fn new(
        class_id: u64,
        class_specific: u64,
        public_key: [u8; PUBLIC_KEY_BYTES],
    ) -> Self {
        Loid {
            class_id: ClassId(class_id),
            class_specific,
            public_key,
        }
    }

    /// Construct a *class object* LOID (Class Specific = 0) with a key
    /// derived deterministically from the class id.
    pub const fn class_object(class_id: u64) -> Self {
        Loid {
            class_id: ClassId(class_id),
            class_specific: 0,
            public_key: derive_key(class_id, 0),
        }
    }

    /// Construct an *instance* LOID within `class_id` with the given
    /// sequence number and a deterministically derived key.
    pub const fn instance(class_id: u64, seq: u64) -> Self {
        Loid {
            class_id: ClassId(class_id),
            class_specific: seq,
            public_key: derive_key(class_id, seq),
        }
    }

    /// Is this a class object? (Class Specific field is zero, §3.7.)
    #[inline]
    pub const fn is_class(&self) -> bool {
        self.class_specific == 0
    }

    /// Is this the nil sentinel?
    #[inline]
    pub fn is_nil(&self) -> bool {
        *self == Loid::NIL
    }

    /// The LOID of the class *responsible for locating this object*
    /// (paper §4.1.3): same Class Identifier, Class Specific zeroed.
    ///
    /// For a class object this returns the LOID unchanged — locating the
    /// responsible class of a class object requires LegionClass's
    /// responsibility pairs instead ([`crate::metaclass`]).
    #[inline]
    pub const fn class_loid(&self) -> Loid {
        Loid::class_object(self.class_id.0)
    }
}

/// Derive a deterministic 128-bit pseudo-key from the identifying fields.
///
/// This stands in for the paper's (unspecified) public-key generation: the
/// model only requires that the key be stable and collision-resistant
/// enough to anchor identity. We use two rounds of SplitMix64, which is
/// adequate for a simulation substrate (documented substitution, DESIGN.md).
const fn derive_key(class_id: u64, specific: u64) -> [u8; PUBLIC_KEY_BYTES] {
    let a = splitmix64(class_id ^ 0x9e37_79b9_7f4a_7c15);
    let b = splitmix64(specific ^ a);
    let c = splitmix64(a ^ b ^ 0x6a09_e667_f3bc_c908);
    let d = splitmix64(b ^ c);
    let mut out = [0u8; PUBLIC_KEY_BYTES];
    let ab = ((a ^ c) as u128) << 64 | (b ^ d) as u128;
    let bytes = ab.to_be_bytes();
    let mut i = 0;
    while i < PUBLIC_KEY_BYTES {
        out[i] = bytes[i];
        i += 1;
    }
    out
}

const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl fmt::Display for Loid {
    /// Format: `L<class_id>.<class_specific>.<first 4 key bytes>` in hex.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L{:x}.{:x}.{:02x}{:02x}{:02x}{:02x}",
            self.class_id.0,
            self.class_specific,
            self.public_key[0],
            self.public_key[1],
            self.public_key[2],
            self.public_key[3]
        )
    }
}

impl FromStr for Loid {
    type Err = CoreError;

    /// Parse the `Display` form. The key prefix is informational: the full
    /// key is re-derived from the class/specific fields (keys are
    /// deterministic in this reproduction) and the prefix is validated.
    fn from_str(s: &str) -> CoreResult<Self> {
        let body = s
            .strip_prefix('L')
            .ok_or_else(|| CoreError::Invalid(format!("LOID must start with 'L': {s}")))?;
        let mut parts = body.split('.');
        let (cid, spec, key) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(a), Some(b), Some(c), None) => (a, b, c),
            _ => {
                return Err(CoreError::Invalid(format!(
                    "LOID must have three dot-separated fields: {s}"
                )))
            }
        };
        let class_id = u64::from_str_radix(cid, 16)
            .map_err(|e| CoreError::Invalid(format!("bad class id {cid:?}: {e}")))?;
        let class_specific = u64::from_str_radix(spec, 16)
            .map_err(|e| CoreError::Invalid(format!("bad class specific {spec:?}: {e}")))?;
        let loid = Loid::instance(class_id, class_specific);
        let expect = format!(
            "{:02x}{:02x}{:02x}{:02x}",
            loid.public_key[0], loid.public_key[1], loid.public_key[2], loid.public_key[3]
        );
        if key != expect {
            return Err(CoreError::Invalid(format!(
                "LOID key prefix mismatch: got {key}, derived {expect}"
            )));
        }
        Ok(loid)
    }
}

/// Allocates instance and subclass LOIDs on behalf of one class object.
///
/// Implements the convention of §3.7: "the class object ... assigns the
/// Class Identifier portion to match its own Class Identifier, and uses the
/// Class Specific field ... most likely as a sequence number". Sequence
/// number zero is reserved (it denotes the class object itself), so the
/// first instance receives Class Specific = 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoidAllocator {
    class_id: ClassId,
    next_specific: u64,
}

impl LoidAllocator {
    /// A fresh allocator for the class with identifier `class_id`.
    pub fn new(class_id: ClassId) -> Self {
        LoidAllocator {
            class_id,
            next_specific: 1,
        }
    }

    /// The class this allocator serves.
    pub fn class_id(&self) -> ClassId {
        self.class_id
    }

    /// How many LOIDs have been handed out so far.
    pub fn allocated(&self) -> u64 {
        self.next_specific - 1
    }

    /// Allocate the next unique instance LOID.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> CoreResult<Loid> {
        if self.next_specific == u64::MAX {
            return Err(CoreError::LoidSpaceExhausted(Loid::class_object(
                self.class_id.0,
            )));
        }
        let seq = self.next_specific;
        self.next_specific += 1;
        Ok(Loid::instance(self.class_id.0, seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn class_object_has_zero_specific() {
        let c = Loid::class_object(7);
        assert!(c.is_class());
        assert_eq!(c.class_specific, 0);
        assert_eq!(c.class_id, ClassId(7));
    }

    #[test]
    fn instance_is_not_class() {
        let o = Loid::instance(7, 3);
        assert!(!o.is_class());
    }

    #[test]
    fn class_loid_zeroes_specific_and_matches_class_object() {
        let o = Loid::instance(9, 1234);
        assert_eq!(o.class_loid(), Loid::class_object(9));
    }

    #[test]
    fn nil_is_nil() {
        assert!(Loid::NIL.is_nil());
        assert!(!Loid::class_object(1).is_nil());
    }

    #[test]
    fn keys_are_deterministic_and_distinct() {
        let a = Loid::instance(1, 1);
        let b = Loid::instance(1, 1);
        let c = Loid::instance(1, 2);
        let d = Loid::instance(2, 1);
        assert_eq!(a.public_key, b.public_key);
        assert_ne!(a.public_key, c.public_key);
        assert_ne!(a.public_key, d.public_key);
        assert_ne!(c.public_key, d.public_key);
    }

    #[test]
    fn display_roundtrip() {
        for loid in [
            Loid::class_object(0x1f),
            Loid::instance(0xdead, 0xbeef),
            Loid::instance(1, u64::MAX),
        ] {
            let s = loid.to_string();
            let back: Loid = s.parse().expect("parse");
            assert_eq!(back, loid, "roundtrip of {s}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Loid>().is_err());
        assert!("X1.2.00000000".parse::<Loid>().is_err());
        assert!("L1".parse::<Loid>().is_err());
        assert!("L1.2".parse::<Loid>().is_err());
        assert!("L1.2.3.4".parse::<Loid>().is_err());
        assert!("Lzz.2.00000000".parse::<Loid>().is_err());
    }

    #[test]
    fn parse_rejects_key_mismatch() {
        let good = Loid::instance(5, 6).to_string();
        // Corrupt the key prefix.
        let bad = format!("{}{}", &good[..good.len() - 8], "00000000");
        if bad != good {
            assert!(bad.parse::<Loid>().is_err());
        }
    }

    #[test]
    fn allocator_is_sequential_and_unique() {
        let mut alloc = LoidAllocator::new(ClassId(3));
        let mut seen = HashSet::new();
        for i in 1..=100u64 {
            let l = alloc.next().unwrap();
            assert_eq!(l.class_specific, i);
            assert_eq!(l.class_id, ClassId(3));
            assert!(!l.is_class());
            assert!(seen.insert(l));
        }
        assert_eq!(alloc.allocated(), 100);
    }

    #[test]
    fn allocator_exhaustion() {
        let mut alloc = LoidAllocator {
            class_id: ClassId(1),
            next_specific: u64::MAX,
        };
        assert!(matches!(
            alloc.next(),
            Err(CoreError::LoidSpaceExhausted(_))
        ));
    }

    #[test]
    fn ordering_is_lexicographic_by_fields() {
        let a = Loid::instance(1, 2);
        let b = Loid::instance(1, 3);
        let c = Loid::instance(2, 0);
        assert!(a < b);
        assert!(b < c);
    }
}
