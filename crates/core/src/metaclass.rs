//! The `LegionClass` authority (paper §3.2, §4.1.3).
//!
//! `LegionClass` plays two system-wide roles:
//!
//! 1. **Class Identifier authority** — "LegionClass is responsible for
//!    handing out unique Class Identifiers to each new class" (§3.2).
//! 2. **Class-location authority** — it maintains **responsibility pairs**
//!    ⟨X, Y⟩ meaning "X is responsible for locating Y". When class C
//!    derives D, LegionClass records ⟨C, D⟩; objects looking for D are
//!    pointed toward C (§4.1.3). For a *non-class* object the responsible
//!    class is derived locally by zeroing the Class Specific field — no
//!    LegionClass traffic at all.
//!
//! The authority counts every request it serves; experiment E4/E12 use
//! these counters to test the paper's claim that caching and combining
//! trees keep LegionClass off the critical path.

use crate::error::{CoreError, CoreResult};
use crate::loid::{ClassId, Loid};
use crate::wellknown::{FIRST_USER_CLASS_ID, LEGION_CLASS};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Traffic counters kept by the authority (for the scalability
/// experiments; the paper's "distributed systems principle" is about
/// exactly these numbers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuthorityStats {
    /// `IssueClassId` requests served.
    pub ids_issued: u64,
    /// `FindResponsible` requests served.
    pub find_requests: u64,
}

/// The LegionClass metaclass state: the Class Identifier counter and the
/// responsibility-pair map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LegionClassAuthority {
    next_class_id: u64,
    /// created-class → creating-class (the pair ⟨creator, created⟩ keyed
    /// by the created class for O(log n) lookup).
    responsible_for: BTreeMap<Loid, Loid>,
    stats: AuthorityStats,
}

impl Default for LegionClassAuthority {
    fn default() -> Self {
        Self::new()
    }
}

impl LegionClassAuthority {
    /// A fresh authority; user class ids start at
    /// [`FIRST_USER_CLASS_ID`], core ids are pre-reserved.
    pub fn new() -> Self {
        LegionClassAuthority {
            next_class_id: FIRST_USER_CLASS_ID,
            responsible_for: BTreeMap::new(),
            stats: AuthorityStats::default(),
        }
    }

    /// Issue the next unique Class Identifier and record that `creator` is
    /// responsible for locating the new class (§4.1.3: "When a new class
    /// object D is created, the creating class C contacts LegionClass for
    /// a new Class Identifier ... At this time, LegionClass can record
    /// that C is responsible for locating D").
    pub fn issue_class_id(&mut self, creator: Loid) -> CoreResult<(ClassId, Loid)> {
        if !creator.is_class() {
            return Err(CoreError::NotAClass(creator));
        }
        if self.next_class_id == u64::MAX {
            return Err(CoreError::ClassIdExhausted);
        }
        let id = ClassId(self.next_class_id);
        self.next_class_id += 1;
        let new_class = Loid::class_object(id.0);
        self.responsible_for.insert(new_class, creator);
        self.stats.ids_issued += 1;
        Ok((id, new_class))
    }

    /// Who is responsible for locating `target`?
    ///
    /// * non-class object → its class, derived locally (`class_loid`);
    /// * class object with a recorded pair → the creating class;
    /// * a core class (or LegionClass itself) → `LegionClass`, which "simply
    ///   hands out the appropriate binding which, as a class object, it is
    ///   responsible for maintaining".
    pub fn find_responsible(&mut self, target: &Loid) -> CoreResult<Loid> {
        self.stats.find_requests += 1;
        if !target.is_class() {
            return Ok(target.class_loid());
        }
        match self.responsible_for.get(target) {
            Some(creator) => Ok(*creator),
            None => {
                if crate::wellknown::is_core_class(target) {
                    Ok(LEGION_CLASS)
                } else {
                    Err(CoreError::UnknownLoid(*target))
                }
            }
        }
    }

    /// The full responsibility chain from `target` up to `LegionClass`:
    /// §4.1.3's "the binding process may need to be repeated in order to
    /// locate C, and again to locate C's superclass, and so on ... the
    /// process can end when the responsible class is LegionClass itself."
    pub fn responsibility_chain(&mut self, target: &Loid) -> CoreResult<Vec<Loid>> {
        let mut chain = Vec::new();
        let mut cur = *target;
        loop {
            let resp = self.find_responsible(&cur)?;
            chain.push(resp);
            if resp == LEGION_CLASS || resp == cur {
                break;
            }
            cur = resp;
        }
        Ok(chain)
    }

    /// Adopt an *externally created* class (bootstrap, §4.2.1): record
    /// that `responsible` locates it, and reserve its Class Identifier so
    /// future `IssueClassId` calls cannot collide with it.
    pub fn adopt(&mut self, created: Loid, responsible: Loid) -> CoreResult<()> {
        if !created.is_class() {
            return Err(CoreError::NotAClass(created));
        }
        if !responsible.is_class() {
            return Err(CoreError::NotAClass(responsible));
        }
        self.responsible_for.insert(created, responsible);
        if created.class_id.0 >= self.next_class_id {
            self.next_class_id = created.class_id.0 + 1;
        }
        Ok(())
    }

    /// Reassign responsibility for `target` to `new_owner` (used by class
    /// cloning, §5.2.2: "new instantiation and derivation requests are
    /// passed to the cloned object, making it responsible for the new
    /// objects").
    pub fn reassign(&mut self, target: Loid, new_owner: Loid) -> CoreResult<()> {
        if !new_owner.is_class() {
            return Err(CoreError::NotAClass(new_owner));
        }
        match self.responsible_for.get_mut(&target) {
            Some(owner) => {
                *owner = new_owner;
                Ok(())
            }
            None => Err(CoreError::UnknownLoid(target)),
        }
    }

    /// Drop the pair for a deleted class.
    pub fn forget(&mut self, target: &Loid) {
        self.responsible_for.remove(target);
    }

    /// Number of recorded responsibility pairs.
    pub fn pair_count(&self) -> usize {
        self.responsible_for.len()
    }

    /// Traffic counters.
    pub fn stats(&self) -> AuthorityStats {
        self.stats
    }

    /// Reset traffic counters (between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = AuthorityStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wellknown::{LEGION_HOST, LEGION_OBJECT};

    #[test]
    fn issues_unique_sequential_ids() {
        let mut a = LegionClassAuthority::new();
        let creator = LEGION_CLASS;
        let (id1, l1) = a.issue_class_id(creator).unwrap();
        let (id2, l2) = a.issue_class_id(creator).unwrap();
        assert_eq!(id1.0, FIRST_USER_CLASS_ID);
        assert_eq!(id2.0, FIRST_USER_CLASS_ID + 1);
        assert_ne!(l1, l2);
        assert!(l1.is_class() && l2.is_class());
        assert_eq!(a.stats().ids_issued, 2);
    }

    #[test]
    fn rejects_non_class_creator() {
        let mut a = LegionClassAuthority::new();
        assert!(matches!(
            a.issue_class_id(Loid::instance(16, 1)),
            Err(CoreError::NotAClass(_))
        ));
    }

    #[test]
    fn non_class_target_resolves_locally() {
        let mut a = LegionClassAuthority::new();
        let o = Loid::instance(77, 5);
        assert_eq!(a.find_responsible(&o).unwrap(), Loid::class_object(77));
        assert_eq!(a.stats().find_requests, 1);
    }

    #[test]
    fn class_target_resolves_via_pair() {
        let mut a = LegionClassAuthority::new();
        let (_, d) = a.issue_class_id(LEGION_HOST).unwrap();
        assert_eq!(a.find_responsible(&d).unwrap(), LEGION_HOST);
        assert_eq!(a.pair_count(), 1);
    }

    #[test]
    fn core_classes_resolve_to_legion_class() {
        let mut a = LegionClassAuthority::new();
        assert_eq!(a.find_responsible(&LEGION_HOST).unwrap(), LEGION_CLASS);
        assert_eq!(a.find_responsible(&LEGION_OBJECT).unwrap(), LEGION_CLASS);
        assert_eq!(a.find_responsible(&LEGION_CLASS).unwrap(), LEGION_CLASS);
    }

    #[test]
    fn unknown_class_is_an_error() {
        let mut a = LegionClassAuthority::new();
        assert!(matches!(
            a.find_responsible(&Loid::class_object(9999)),
            Err(CoreError::UnknownLoid(_))
        ));
    }

    #[test]
    fn responsibility_chain_ends_at_legion_class() {
        let mut a = LegionClassAuthority::new();
        // LegionHost derives UnixHost derives MyHost.
        let (_, unix_host) = a.issue_class_id(LEGION_HOST).unwrap();
        let (_, my_host) = a.issue_class_id(unix_host).unwrap();
        let chain = a.responsibility_chain(&my_host).unwrap();
        assert_eq!(chain, vec![unix_host, LEGION_HOST, LEGION_CLASS]);
    }

    #[test]
    fn chain_for_instance_starts_at_its_class() {
        let mut a = LegionClassAuthority::new();
        let (_, c) = a.issue_class_id(LEGION_CLASS).unwrap();
        let o = Loid::instance(c.class_id.0, 3);
        let chain = a.responsibility_chain(&o).unwrap();
        assert_eq!(chain, vec![c, LEGION_CLASS]);
    }

    #[test]
    fn reassign_moves_responsibility() {
        let mut a = LegionClassAuthority::new();
        let (_, d) = a.issue_class_id(LEGION_CLASS).unwrap();
        let (_, clone) = a.issue_class_id(LEGION_CLASS).unwrap();
        a.reassign(d, clone).unwrap();
        assert_eq!(a.find_responsible(&d).unwrap(), clone);
        assert!(a.reassign(Loid::class_object(9999), clone).is_err());
        assert!(a.reassign(d, Loid::instance(16, 1)).is_err());
    }

    #[test]
    fn forget_removes_pair() {
        let mut a = LegionClassAuthority::new();
        let (_, d) = a.issue_class_id(LEGION_CLASS).unwrap();
        a.forget(&d);
        assert_eq!(a.pair_count(), 0);
        assert!(a.find_responsible(&d).is_err());
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let mut a = LegionClassAuthority::new();
        let _ = a.issue_class_id(LEGION_CLASS);
        let _ = a.find_responsible(&Loid::instance(1, 1));
        a.reset_stats();
        assert_eq!(a.stats(), AuthorityStats::default());
    }
}
