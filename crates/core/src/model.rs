//! The assembled object model: classes, relations, and the metaclass
//! working together (paper §2.1, §4.2).
//!
//! [`ObjectModel`] is the in-memory registry a Legion deployment keeps of
//! its class objects. It orchestrates the class-mandatory operations
//! end-to-end:
//!
//! * `create(class)` — allocate an instance LOID, add the table row, and
//!   record the **is-a** edge;
//! * `derive(superclass, name, kind)` — obtain a Class Identifier from the
//!   LegionClass authority, copy the superclass's interface, record the
//!   **kind-of** edge and the responsibility pair;
//! * `inherit_from(class, base)` — merge the base's interface (rejecting
//!   cycles and unresolved conflicts) and record the **inherits-from**
//!   edge;
//! * `delete(loid)` — remove the object and all its edges.
//!
//! The model is purely local state; in the full system each class object
//! runs as its own endpoint and the `legion-sim` crate drives these same
//! operations through messages. Keeping the state machine here lets both
//! the message-driven system and the unit tests share one implementation.

use crate::class::{ClassKind, ClassObject};
use crate::error::{CoreError, CoreResult};
use crate::inherit;
use crate::interface::{Interface, MethodSignature};
use crate::loid::Loid;
use crate::metaclass::LegionClassAuthority;
use crate::object::object_mandatory_interface;
use crate::relations::RelationGraph;
use crate::wellknown::{
    LEGION_BINDING_AGENT, LEGION_CLASS, LEGION_HOST, LEGION_MAGISTRATE, LEGION_OBJECT,
};
use std::collections::BTreeMap;

/// The registry of class objects plus the relation graph and the
/// LegionClass authority.
///
/// ```
/// use legion_core::class::ClassKind;
/// use legion_core::model::ObjectModel;
/// use legion_core::wellknown::LEGION_CLASS;
///
/// let mut m = ObjectModel::bootstrap();
/// let file = m.derive(LEGION_CLASS, "File", ClassKind::NORMAL).unwrap();
/// let f1 = m.create(file).unwrap();
/// assert_eq!(m.graph().class_of(&f1), Some(file));
/// m.verify().unwrap(); // interfaces match from-scratch composition
/// ```
#[derive(Debug, Clone)]
pub struct ObjectModel {
    classes: BTreeMap<Loid, ClassObject>,
    /// Methods each class *declares itself* (vs inherits) — the input to
    /// from-scratch interface composition checks.
    own_methods: BTreeMap<Loid, Interface>,
    graph: RelationGraph,
    authority: LegionClassAuthority,
}

impl Default for ObjectModel {
    fn default() -> Self {
        Self::bootstrap()
    }
}

impl ObjectModel {
    /// Bring up the core Abstract classes exactly once (paper §4.2.1):
    /// `LegionObject` (the kind-of sink, providing the object-mandatory
    /// interface), `LegionClass` (kind-of LegionObject, adding the
    /// class-mandatory interface), and the three core service roots
    /// (`LegionHost`, `LegionMagistrate`, `LegionBindingAgent`, each
    /// kind-of LegionClass).
    pub fn bootstrap() -> Self {
        let mut m = ObjectModel {
            classes: BTreeMap::new(),
            own_methods: BTreeMap::new(),
            graph: RelationGraph::new(),
            authority: LegionClassAuthority::new(),
        };

        // LegionObject: the sole sink; declares the object-mandatory set.
        let mut legion_object =
            ClassObject::new(LEGION_OBJECT, "LegionObject", ClassKind::ABSTRACT);
        let obj_if = object_mandatory_interface(LEGION_OBJECT);
        legion_object.interface = obj_if.clone();
        m.own_methods.insert(LEGION_OBJECT, obj_if);
        m.classes.insert(LEGION_OBJECT, legion_object);

        // LegionClass: kind-of LegionObject; adds the class-mandatory set.
        let mut legion_class = ClassObject::new(LEGION_CLASS, "LegionClass", ClassKind::ABSTRACT);
        legion_class.superclass = Some(LEGION_OBJECT);
        let cls_if = crate::class::class_mandatory_interface(LEGION_CLASS);
        let mut eff = m.classes[&LEGION_OBJECT].interface.clone();
        eff.merge_from_with_owner(&cls_if, LEGION_CLASS)
            .expect("core interfaces cannot conflict");
        // Class-mandatory methods are LegionClass's own declarations.
        for (sig, _) in cls_if.iter_with_providers() {
            eff.define(sig.clone(), LEGION_CLASS);
        }
        legion_class.interface = eff;
        m.own_methods.insert(LEGION_CLASS, cls_if);
        m.graph
            .add_kind_of(LEGION_CLASS, LEGION_OBJECT)
            .expect("bootstrap edge");
        m.classes.insert(LEGION_CLASS, legion_class);
        m.classes
            .get_mut(&LEGION_OBJECT)
            .expect("bootstrapped")
            .record_subclass(LEGION_CLASS)
            .expect("LegionObject accepts subclasses");

        // The three core service roots: Abstract, kind-of LegionClass.
        for (loid, name) in [
            (LEGION_HOST, "LegionHost"),
            (LEGION_MAGISTRATE, "LegionMagistrate"),
            (LEGION_BINDING_AGENT, "LegionBindingAgent"),
        ] {
            let mut c = ClassObject::new(loid, name, ClassKind::ABSTRACT);
            c.superclass = Some(LEGION_CLASS);
            c.interface = m.classes[&LEGION_CLASS].interface.clone();
            m.own_methods.insert(loid, Interface::new());
            m.graph
                .add_kind_of(loid, LEGION_CLASS)
                .expect("bootstrap edge");
            m.classes.insert(loid, c);
            m.classes
                .get_mut(&LEGION_CLASS)
                .expect("bootstrapped")
                .record_subclass(loid)
                .expect("LegionClass accepts subclasses");
        }
        m
    }

    // ----- lookup -------------------------------------------------------

    /// The class object named `loid`.
    pub fn class(&self, loid: &Loid) -> CoreResult<&ClassObject> {
        self.classes.get(loid).ok_or_else(|| {
            if loid.is_class() {
                CoreError::UnknownLoid(*loid)
            } else {
                CoreError::NotAClass(*loid)
            }
        })
    }

    /// Mutable access to the class object named `loid`.
    pub fn class_mut(&mut self, loid: &Loid) -> CoreResult<&mut ClassObject> {
        self.classes.get_mut(loid).ok_or_else(|| {
            if loid.is_class() {
                CoreError::UnknownLoid(*loid)
            } else {
                CoreError::NotAClass(*loid)
            }
        })
    }

    /// The relation graph (read-only).
    pub fn graph(&self) -> &RelationGraph {
        &self.graph
    }

    /// The LegionClass authority.
    pub fn authority(&self) -> &LegionClassAuthority {
        &self.authority
    }

    /// Mutable access to the authority (for experiment counters and the
    /// message-driven system that proxies requests into it).
    pub fn authority_mut(&mut self) -> &mut LegionClassAuthority {
        &mut self.authority
    }

    /// Number of registered classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// All class LOIDs in order.
    pub fn class_loids(&self) -> Vec<Loid> {
        self.classes.keys().copied().collect()
    }

    /// The interface exported by `loid` — its class's interface for an
    /// instance, its own effective interface for a class.
    pub fn interface_of(&self, loid: &Loid) -> CoreResult<&Interface> {
        if loid.is_class() {
            Ok(&self.class(loid)?.interface)
        } else {
            let class = self
                .graph
                .class_of(loid)
                .ok_or(CoreError::UnknownLoid(*loid))?;
            Ok(&self.class(&class)?.interface)
        }
    }

    // ----- class-mandatory operations ------------------------------------

    /// `Create()`: instantiate a non-class object of `class` (Figure 3).
    pub fn create(&mut self, class: Loid) -> CoreResult<Loid> {
        let instance = self.class_mut(&class)?.create_instance()?;
        self.graph
            .add_is_a(instance, class)
            .expect("fresh instance LOID cannot collide");
        Ok(instance)
    }

    /// `Derive()`: create a subclass of `superclass` (Figure 4). The new
    /// class starts with its superclass's full interface ("a class that is
    /// derived from another class inherits the superclass's member
    /// functions and variables").
    pub fn derive(
        &mut self,
        superclass: Loid,
        name: impl Into<String>,
        kind: ClassKind,
    ) -> CoreResult<Loid> {
        // Validate the superclass exists and accepts subclasses before
        // consuming a Class Identifier.
        let sup = self.class(&superclass)?;
        if sup.kind.is_private {
            return Err(CoreError::PrivateClass(superclass));
        }
        if sup.deleted {
            return Err(CoreError::Deleted(superclass));
        }
        let inherited = sup.interface.clone();
        let default_sched = sup.default_scheduling_agent;

        let (_, new_loid) = self.authority.issue_class_id(superclass)?;
        let mut class = ClassObject::new(new_loid, name, kind);
        class.superclass = Some(superclass);
        class.interface = inherited;
        class.default_scheduling_agent = default_sched;

        self.class_mut(&superclass)?.record_subclass(new_loid)?;
        self.graph
            .add_kind_of(new_loid, superclass)
            .expect("fresh class LOID cannot collide");
        self.own_methods.insert(new_loid, Interface::new());
        self.classes.insert(new_loid, class);
        Ok(new_loid)
    }

    /// `InheritFrom()`: add `base` to `class`'s composition (Figure 5).
    pub fn inherit_from(&mut self, class: Loid, base: Loid) -> CoreResult<()> {
        // Existence and shape checks first.
        let base_interface = self.class(&base)?.interface.clone();
        let c = self.class(&class)?;
        if c.kind.is_fixed {
            return Err(CoreError::FixedClass(class));
        }
        if self.graph.would_create_inheritance_cycle(class, base) {
            return Err(CoreError::InheritanceCycle { class, base });
        }
        // Merge the interface; only then record the edge, so a conflict
        // leaves the graph untouched. The merge is the *conflict gate*;
        // the recomputation below is the authoritative composition.
        self.class_mut(&class)?
            .inherit_from(base, &base_interface)?;
        self.graph
            .add_inherits_from(class, base)
            .expect("cycle pre-checked");
        self.recompute_dependents(class);
        Ok(())
    }

    /// Declare a method on `class` itself (the class's own contribution to
    /// its instances' interface, e.g. from IDL). Subclasses and inheritors
    /// see the method too — inheritance in Legion is "an active process
    /// that is carried out at run-time" (§2.1), so future instances of
    /// every dependent class reflect the change.
    pub fn define_method(&mut self, class: Loid, sig: MethodSignature) -> CoreResult<()> {
        // Existence check.
        self.class(&class)?;
        self.own_methods
            .entry(class)
            .or_default()
            .define(sig, class);
        self.recompute_dependents(class);
        Ok(())
    }

    /// Recompute the effective interface of `changed` and every class that
    /// (transitively) inherits from it, from the composition specification
    /// in [`inherit::compose`].
    fn recompute_dependents(&mut self, changed: Loid) {
        let loids: Vec<Loid> = self.classes.keys().copied().collect();
        for d in loids {
            if inherit::resolution_order(&self.graph, d).contains(&changed) {
                let eff = inherit::compose(&self.graph, d, &self.own_methods);
                self.classes
                    .get_mut(&d)
                    .expect("iterating existing keys")
                    .interface = eff;
            }
        }
    }

    /// `Delete()`: remove an instance or an (empty) subclass.
    ///
    /// Deleting a class that still has instances or subclasses is refused —
    /// the caller must delete the children first (stale bindings to them
    /// could otherwise never be refreshed, §4.1.4).
    pub fn delete(&mut self, target: Loid) -> CoreResult<()> {
        if target.is_class() {
            let c = self.class(&target)?;
            if !c.table.is_empty() {
                return Err(CoreError::Invalid(format!(
                    "class {target} still has {} children; delete them first",
                    c.table.len()
                )));
            }
            let superclass = c.superclass;
            if let Some(sup) = superclass {
                // The parent's table row for this subclass goes away.
                let _ = self.class_mut(&sup)?.delete_child(&target);
            }
            self.classes.remove(&target);
            self.own_methods.remove(&target);
            self.graph.remove(&target);
            self.authority.forget(&target);
            Ok(())
        } else {
            let class = self
                .graph
                .class_of(&target)
                .ok_or(CoreError::UnknownLoid(target))?;
            self.class_mut(&class)?.delete_child(&target)?;
            self.graph.remove(&target);
            Ok(())
        }
    }

    // ----- consistency ----------------------------------------------------

    /// Recompose every class's interface from scratch and verify it matches
    /// the incrementally maintained one; also verify the single-sink
    /// property of the kind-of graph. Used by tests and after bulk edits.
    pub fn verify(&self) -> CoreResult<()> {
        self.graph
            .verify_single_sink()
            .map_err(|c| CoreError::Invalid(format!("kind-of chain of {c} misses LegionObject")))?;
        for (loid, class) in &self.classes {
            inherit::verify_composition(&self.graph, *loid, &self.own_methods, &class.interface)?;
        }
        Ok(())
    }

    /// The methods `class` declares itself (not inherited).
    pub fn own_methods_of(&self, class: &Loid) -> Option<&Interface> {
        self.own_methods.get(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::ParamType;

    fn sig(name: &str) -> MethodSignature {
        MethodSignature::new(name, vec![], ParamType::Void)
    }

    #[test]
    fn bootstrap_registers_core_classes() {
        let m = ObjectModel::bootstrap();
        assert_eq!(m.class_count(), 5);
        for c in crate::wellknown::CORE_CLASSES {
            assert!(m.class(&c).is_ok(), "core class {c} missing");
        }
        m.verify().expect("bootstrap model is consistent");
    }

    #[test]
    fn core_hierarchy_matches_paper() {
        let m = ObjectModel::bootstrap();
        assert_eq!(m.class(&LEGION_OBJECT).unwrap().superclass, None);
        assert_eq!(
            m.class(&LEGION_CLASS).unwrap().superclass,
            Some(LEGION_OBJECT)
        );
        for c in [LEGION_HOST, LEGION_MAGISTRATE, LEGION_BINDING_AGENT] {
            assert_eq!(m.class(&c).unwrap().superclass, Some(LEGION_CLASS));
            assert!(m.graph().is_kind_of(c, LEGION_OBJECT));
        }
    }

    #[test]
    fn classes_inherit_object_and_class_mandatory_functions() {
        let m = ObjectModel::bootstrap();
        let host = m.class(&LEGION_HOST).unwrap();
        for method in ["MayI", "SaveState", "RestoreState", "Create", "Derive"] {
            assert!(host.interface.contains(method), "missing {method}");
        }
    }

    #[test]
    fn core_classes_are_abstract() {
        let mut m = ObjectModel::bootstrap();
        for c in crate::wellknown::CORE_CLASSES {
            assert!(matches!(m.create(c), Err(CoreError::AbstractClass(_))));
        }
    }

    #[test]
    fn derive_then_create_full_path() {
        let mut m = ObjectModel::bootstrap();
        let unix_host = m
            .derive(LEGION_HOST, "UnixHost", ClassKind::NORMAL)
            .unwrap();
        let h1 = m.create(unix_host).unwrap();
        assert_eq!(m.graph().class_of(&h1), Some(unix_host));
        assert_eq!(m.graph().superclass_of(&unix_host), Some(LEGION_HOST));
        // The instance exports the inherited interface.
        let iface = m.interface_of(&h1).unwrap();
        assert!(iface.contains("MayI"));
        m.verify().unwrap();
    }

    #[test]
    fn derive_records_responsibility_pair() {
        let mut m = ObjectModel::bootstrap();
        let d = m
            .derive(LEGION_HOST, "UnixHost", ClassKind::NORMAL)
            .unwrap();
        assert_eq!(m.authority_mut().find_responsible(&d).unwrap(), LEGION_HOST);
    }

    #[test]
    fn derive_from_private_class_fails() {
        let mut m = ObjectModel::bootstrap();
        let p = m
            .derive(LEGION_CLASS, "Sealed", ClassKind::PRIVATE)
            .unwrap();
        assert!(matches!(
            m.derive(p, "Sub", ClassKind::NORMAL),
            Err(CoreError::PrivateClass(_))
        ));
        // No Class Identifier was burned by the failed derive.
        let before = m.authority().stats().ids_issued;
        let _ = m.derive(p, "Sub2", ClassKind::NORMAL);
        assert_eq!(m.authority().stats().ids_issued, before);
    }

    #[test]
    fn inherit_from_composes_interfaces() {
        let mut m = ObjectModel::bootstrap();
        let a = m.derive(LEGION_CLASS, "A", ClassKind::NORMAL).unwrap();
        let b = m.derive(LEGION_CLASS, "B", ClassKind::NORMAL).unwrap();
        m.define_method(b, sig("Render")).unwrap();
        m.inherit_from(a, b).unwrap();
        assert!(m.class(&a).unwrap().interface.contains("Render"));
        assert_eq!(m.graph().bases_of(&a), &[b]);
        m.verify().unwrap();
    }

    #[test]
    fn inherit_from_rejects_cycle_without_side_effects() {
        let mut m = ObjectModel::bootstrap();
        let a = m.derive(LEGION_CLASS, "A", ClassKind::NORMAL).unwrap();
        let b = m.derive(LEGION_CLASS, "B", ClassKind::NORMAL).unwrap();
        m.inherit_from(a, b).unwrap();
        assert!(matches!(
            m.inherit_from(b, a),
            Err(CoreError::InheritanceCycle { .. })
        ));
        assert_eq!(m.graph().bases_of(&b), &[] as &[Loid]);
        m.verify().unwrap();
    }

    #[test]
    fn inherit_from_conflict_leaves_graph_clean() {
        let mut m = ObjectModel::bootstrap();
        let a = m.derive(LEGION_CLASS, "A", ClassKind::NORMAL).unwrap();
        let b = m.derive(LEGION_CLASS, "B", ClassKind::NORMAL).unwrap();
        let c = m.derive(LEGION_CLASS, "C", ClassKind::NORMAL).unwrap();
        m.define_method(b, MethodSignature::new("f", vec![], ParamType::Int))
            .unwrap();
        m.define_method(c, MethodSignature::new("f", vec![], ParamType::Str))
            .unwrap();
        m.inherit_from(a, b).unwrap();
        assert!(matches!(
            m.inherit_from(a, c),
            Err(CoreError::InterfaceConflict { .. })
        ));
        assert_eq!(m.graph().bases_of(&a), &[b], "failed merge adds no edge");
        m.verify().unwrap();
    }

    #[test]
    fn own_redefinition_resolves_conflict() {
        let mut m = ObjectModel::bootstrap();
        let a = m.derive(LEGION_CLASS, "A", ClassKind::NORMAL).unwrap();
        let b = m.derive(LEGION_CLASS, "B", ClassKind::NORMAL).unwrap();
        let c = m.derive(LEGION_CLASS, "C", ClassKind::NORMAL).unwrap();
        m.define_method(b, MethodSignature::new("f", vec![], ParamType::Int))
            .unwrap();
        m.define_method(c, MethodSignature::new("f", vec![], ParamType::Str))
            .unwrap();
        // A declares f itself: its definition shadows both bases.
        m.define_method(a, MethodSignature::new("f", vec![], ParamType::Bool))
            .unwrap();
        m.inherit_from(a, b).unwrap();
        m.inherit_from(a, c).unwrap();
        assert_eq!(
            m.class(&a).unwrap().interface.get("f").unwrap().returns,
            ParamType::Bool
        );
        m.verify().unwrap();
    }

    #[test]
    fn delete_instance() {
        let mut m = ObjectModel::bootstrap();
        let c = m.derive(LEGION_CLASS, "C", ClassKind::NORMAL).unwrap();
        let o = m.create(c).unwrap();
        m.delete(o).unwrap();
        assert_eq!(m.graph().class_of(&o), None);
        assert!(matches!(m.delete(o), Err(CoreError::UnknownLoid(_))));
        m.verify().unwrap();
    }

    #[test]
    fn delete_class_requires_empty_table() {
        let mut m = ObjectModel::bootstrap();
        let c = m.derive(LEGION_CLASS, "C", ClassKind::NORMAL).unwrap();
        let o = m.create(c).unwrap();
        assert!(m.delete(c).is_err(), "non-empty class refuses deletion");
        m.delete(o).unwrap();
        m.delete(c).unwrap();
        assert!(m.class(&c).is_err());
        m.verify().unwrap();
    }

    #[test]
    fn fixed_class_cannot_inherit() {
        let mut m = ObjectModel::bootstrap();
        let f = m.derive(LEGION_CLASS, "F", ClassKind::FIXED).unwrap();
        let b = m.derive(LEGION_CLASS, "B", ClassKind::NORMAL).unwrap();
        assert!(matches!(
            m.inherit_from(f, b),
            Err(CoreError::FixedClass(_))
        ));
    }

    #[test]
    fn deep_hierarchy_stays_consistent() {
        let mut m = ObjectModel::bootstrap();
        let mut cur = LEGION_CLASS;
        for depth in 0..20 {
            cur = m
                .derive(cur, format!("Depth{depth}"), ClassKind::NORMAL)
                .unwrap();
            m.define_method(cur, sig(&format!("m{depth}"))).unwrap();
        }
        let leaf_if = &m.class(&cur).unwrap().interface;
        for depth in 0..20 {
            assert!(leaf_if.contains(&format!("m{depth}")));
        }
        assert_eq!(m.graph().superclass_chain(cur).len(), 22); // 20 + LegionClass + LegionObject
        m.verify().unwrap();
    }
}
