//! The object-mandatory member functions (paper §2.1, §2.4, §3.1).
//!
//! "All Legion objects export a common set of OBJECT-MANDATORY member
//! functions, including `MayI()`, `SaveState()`, and `RestoreState()`."
//! This module defines:
//!
//! * the canonical method names and their signatures
//!   ([`object_mandatory_interface`]),
//! * the two object states — **Active** and **Inert** (§3.1),
//! * the [`ObjectMandatory`] trait that in-process object implementations
//!   fulfil, and
//! * [`GenericObject`], a ready-made implementation with a key/value state
//!   used by examples and tests.

use crate::interface::{Interface, MethodSignature, ParamType};
use crate::loid::Loid;
use crate::value::LegionValue;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Canonical object-mandatory method names.
pub mod methods {
    /// Security check: may `caller` invoke `method` on me? (§2.4)
    pub const MAY_I: &str = "MayI";
    /// Identity assertion used by the security model (§2.4).
    pub const IAM: &str = "Iam";
    /// Serialize state for deactivation into an OPR (§3.1.1).
    pub const SAVE_STATE: &str = "SaveState";
    /// Restore state from an OPR on activation (§3.1.1).
    pub const RESTORE_STATE: &str = "RestoreState";
    /// Liveness probe.
    pub const PING: &str = "Ping";
    /// Return the object's interface (§3.7 lists `GetInterface()`).
    pub const GET_INTERFACE: &str = "GetInterface";
}

/// Whether an object currently runs as a process or rests in storage (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectState {
    /// Running as a process (or set of processes) on one or more hosts;
    /// described by an Object Address.
    Active,
    /// Resting in persistent storage as an Object Persistent
    /// Representation; located by an Object Persistent Address.
    Inert,
}

impl fmt::Display for ObjectState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectState::Active => write!(f, "Active"),
            ObjectState::Inert => write!(f, "Inert"),
        }
    }
}

/// The object-mandatory interface, attributed to `provider` (normally the
/// `LegionObject` core class — every object inherits these, §2.1.3).
pub fn object_mandatory_interface(provider: Loid) -> Interface {
    let mut i = Interface::new();
    i.define(
        MethodSignature::new(
            methods::MAY_I,
            vec![("caller", ParamType::Loid), ("method", ParamType::Str)],
            ParamType::Bool,
        ),
        provider,
    );
    i.define(
        MethodSignature::new(methods::IAM, vec![], ParamType::Loid),
        provider,
    );
    i.define(
        MethodSignature::new(methods::SAVE_STATE, vec![], ParamType::Bytes),
        provider,
    );
    i.define(
        MethodSignature::new(
            methods::RESTORE_STATE,
            vec![("state", ParamType::Bytes)],
            ParamType::Void,
        ),
        provider,
    );
    i.define(
        MethodSignature::new(methods::PING, vec![], ParamType::Uint),
        provider,
    );
    i.define(
        MethodSignature::new(methods::GET_INTERFACE, vec![], ParamType::Str),
        provider,
    );
    i
}

/// The behaviour every in-process Legion object implementation fulfils.
///
/// Method *invocation* is message-based and handled by the runtime; this
/// trait is the local contract the runtime calls through. The default
/// `MayI` is permissive — the paper's "functions may default to empty for
/// the case of no security" (§2.4); `legion-security` supplies real
/// policies.
pub trait ObjectMandatory {
    /// The object's own LOID (`Iam()`).
    fn iam(&self) -> Loid;

    /// May `caller` invoke `method`? Defaults to yes (no security).
    fn may_i(&self, _caller: Loid, _method: &str) -> bool {
        true
    }

    /// Serialize the object's state for an OPR payload (`SaveState()`).
    fn save_state(&self) -> Vec<u8>;

    /// Restore the object's state from an OPR payload (`RestoreState()`).
    /// Returns `false` if the payload is unintelligible.
    fn restore_state(&mut self, state: &[u8]) -> bool;

    /// The object's interface (`GetInterface()`).
    fn get_interface(&self) -> Interface;
}

/// A generic Legion object: a LOID, an interface, and a string-keyed
/// [`LegionValue`] state map with a line-oriented `SaveState` encoding.
///
/// Real deployments would generate object implementations from IDL; the
/// reproduction's examples and tests use `GenericObject` wherever the
/// paper says "an object".
#[derive(Debug, Clone, PartialEq)]
pub struct GenericObject {
    loid: Loid,
    interface: Interface,
    state: BTreeMap<String, LegionValue>,
    /// Monotone counter bumped by every mutation; exposed via `Ping`.
    version: u64,
}

impl GenericObject {
    /// A new object named `loid` exporting `interface`.
    pub fn new(loid: Loid, interface: Interface) -> Self {
        GenericObject {
            loid,
            interface,
            state: BTreeMap::new(),
            version: 0,
        }
    }

    /// Set a state field.
    pub fn set(&mut self, key: impl Into<String>, value: LegionValue) {
        self.state.insert(key.into(), value);
        self.version += 1;
    }

    /// Read a state field.
    pub fn get(&self, key: &str) -> Option<&LegionValue> {
        self.state.get(key)
    }

    /// Number of state fields.
    pub fn state_len(&self) -> usize {
        self.state.len()
    }

    /// The mutation counter.
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl ObjectMandatory for GenericObject {
    fn iam(&self) -> Loid {
        self.loid
    }

    fn save_state(&self) -> Vec<u8> {
        // Line format: version, then `key=Display(value)` pairs for the
        // scalar types. Only scalars survive a save/restore cycle — enough
        // for the model-layer experiments; richer objects override this.
        let mut out = format!("v {}\n", self.version);
        for (k, v) in &self.state {
            let enc = match v {
                LegionValue::Bool(b) => format!("b {b}"),
                LegionValue::Int(i) => format!("i {i}"),
                LegionValue::Uint(u) => format!("u {u}"),
                LegionValue::Float(x) => format!("f {x}"),
                LegionValue::Str(s) => format!("s {s}"),
                LegionValue::Loid(l) => format!("l {l}"),
                _ => continue,
            };
            out.push_str(&format!("{k}\t{enc}\n"));
        }
        out.into_bytes()
    }

    fn restore_state(&mut self, state: &[u8]) -> bool {
        let Ok(text) = std::str::from_utf8(state) else {
            return false;
        };
        let mut lines = text.lines();
        let Some(vline) = lines.next() else {
            return false;
        };
        let Some(v) = vline.strip_prefix("v ").and_then(|s| s.parse().ok()) else {
            return false;
        };
        let mut new_state = BTreeMap::new();
        for line in lines {
            let Some((k, enc)) = line.split_once('\t') else {
                return false;
            };
            let Some((tag, body)) = enc.split_once(' ') else {
                return false;
            };
            let value = match tag {
                "b" => body.parse().map(LegionValue::Bool).ok(),
                "i" => body.parse().map(LegionValue::Int).ok(),
                "u" => body.parse().map(LegionValue::Uint).ok(),
                "f" => body.parse().map(LegionValue::Float).ok(),
                "s" => Some(LegionValue::Str(body.to_owned())),
                "l" => body.parse().map(LegionValue::Loid).ok(),
                _ => None,
            };
            let Some(value) = value else {
                return false;
            };
            new_state.insert(k.to_owned(), value);
        }
        self.version = v;
        self.state = new_state;
        true
    }

    fn get_interface(&self) -> Interface {
        self.interface.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> GenericObject {
        GenericObject::new(
            Loid::instance(20, 1),
            object_mandatory_interface(crate::wellknown::LEGION_OBJECT),
        )
    }

    #[test]
    fn mandatory_interface_has_all_methods() {
        let i = object_mandatory_interface(crate::wellknown::LEGION_OBJECT);
        for m in [
            methods::MAY_I,
            methods::IAM,
            methods::SAVE_STATE,
            methods::RESTORE_STATE,
            methods::PING,
            methods::GET_INTERFACE,
        ] {
            assert!(i.contains(m), "missing {m}");
        }
        assert_eq!(i.len(), 6);
    }

    #[test]
    fn iam_returns_own_loid() {
        let o = obj();
        assert_eq!(o.iam(), Loid::instance(20, 1));
    }

    #[test]
    fn default_may_i_is_permissive() {
        let o = obj();
        assert!(o.may_i(Loid::instance(99, 9), "anything"));
    }

    #[test]
    fn save_restore_roundtrip() {
        let mut o = obj();
        o.set("count", LegionValue::Uint(42));
        o.set("name", LegionValue::Str("renderer".into()));
        o.set("owner", LegionValue::Loid(Loid::instance(3, 4)));
        o.set("flag", LegionValue::Bool(true));
        o.set("temp", LegionValue::Float(36.6));
        o.set("delta", LegionValue::Int(-5));
        let saved = o.save_state();

        let mut p = obj();
        assert!(p.restore_state(&saved));
        assert_eq!(p.get("count"), Some(&LegionValue::Uint(42)));
        assert_eq!(p.get("name"), Some(&LegionValue::Str("renderer".into())));
        assert_eq!(
            p.get("owner"),
            Some(&LegionValue::Loid(Loid::instance(3, 4)))
        );
        assert_eq!(p.get("flag"), Some(&LegionValue::Bool(true)));
        assert_eq!(p.get("delta"), Some(&LegionValue::Int(-5)));
        assert_eq!(p.version(), o.version());
    }

    #[test]
    fn restore_rejects_garbage() {
        let mut o = obj();
        assert!(!o.restore_state(b"\xff\xfe"));
        assert!(!o.restore_state(b""));
        assert!(!o.restore_state(b"not a version line\n"));
        assert!(!o.restore_state(b"v 1\nmissing-tab\n"));
        assert!(!o.restore_state(b"v 1\nk\tz bogus-tag\n"));
    }

    #[test]
    fn restore_replaces_state_atomically() {
        let mut o = obj();
        o.set("a", LegionValue::Uint(1));
        let saved = o.save_state();
        let mut p = obj();
        p.set("b", LegionValue::Uint(2));
        assert!(p.restore_state(&saved));
        assert!(p.get("b").is_none(), "old state must be replaced");
        assert_eq!(p.get("a"), Some(&LegionValue::Uint(1)));
    }

    #[test]
    fn version_bumps_on_mutation() {
        let mut o = obj();
        assert_eq!(o.version(), 0);
        o.set("x", LegionValue::Uint(1));
        o.set("x", LegionValue::Uint(2));
        assert_eq!(o.version(), 2);
    }

    #[test]
    fn object_state_display() {
        assert_eq!(ObjectState::Active.to_string(), "Active");
        assert_eq!(ObjectState::Inert.to_string(), "Inert");
    }
}
