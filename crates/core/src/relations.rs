//! The three relations between Legion objects (paper §2.1.1, Figures 2–6).
//!
//! * **is-a** — instance → class, created by `Create()`. "Classes
//!   typically instantiate many objects, but an object belongs to exactly
//!   one class."
//! * **kind-of** — subclass → superclass, created by `Derive()`. "A class
//!   can be the superclass for any number of different subclasses, but it
//!   is the subclass of exactly one superclass."
//! * **inherits-from** — class → base class, created by `InheritFrom()`.
//!   "A class can inherit from, and be a base class for, any number of
//!   other classes." No new objects are created; unlike is-a/kind-of, the
//!   base has no responsibility for locating the inheritor.
//!
//! [`RelationGraph`] maintains all three and enforces their structural
//! invariants: is-a and kind-of are functions (exactly one target);
//! kind-of chains terminate at `LegionObject` (the sole sink of
//! kind-of ∪ is-a, §2.1.3); inherits-from is acyclic.

use crate::error::{CoreError, CoreResult};
use crate::loid::Loid;
use crate::wellknown::LEGION_OBJECT;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The registry of is-a, kind-of and inherits-from edges.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RelationGraph {
    /// instance → its one class.
    is_a: BTreeMap<Loid, Loid>,
    /// subclass → its one superclass.
    kind_of: BTreeMap<Loid, Loid>,
    /// class → its base classes, in InheritFrom order.
    inherits_from: BTreeMap<Loid, Vec<Loid>>,
    /// class → its direct subclasses (inverse of kind_of, for queries).
    subclasses: BTreeMap<Loid, BTreeSet<Loid>>,
    /// class → its direct instances (inverse of is_a, for queries).
    instances: BTreeMap<Loid, BTreeSet<Loid>>,
}

impl RelationGraph {
    /// An empty graph.
    pub fn new() -> Self {
        RelationGraph::default()
    }

    // ----- mutation -----------------------------------------------------

    /// Record `instance is-a class` (the effect of `Create()`).
    pub fn add_is_a(&mut self, instance: Loid, class: Loid) -> CoreResult<()> {
        if !class.is_class() {
            return Err(CoreError::NotAClass(class));
        }
        if instance.is_class() {
            return Err(CoreError::NotAnInstance(instance));
        }
        if let Some(existing) = self.is_a.get(&instance) {
            if *existing != class {
                return Err(CoreError::Invalid(format!(
                    "{instance} already is-a {existing}; an object belongs to exactly one class"
                )));
            }
            return Ok(());
        }
        self.is_a.insert(instance, class);
        self.instances.entry(class).or_default().insert(instance);
        Ok(())
    }

    /// Record `subclass kind-of superclass` (the effect of `Derive()`).
    pub fn add_kind_of(&mut self, subclass: Loid, superclass: Loid) -> CoreResult<()> {
        if !subclass.is_class() {
            return Err(CoreError::NotAClass(subclass));
        }
        if !superclass.is_class() {
            return Err(CoreError::NotAClass(superclass));
        }
        if subclass == superclass {
            return Err(CoreError::Invalid(format!(
                "{subclass} cannot be kind-of itself"
            )));
        }
        if let Some(existing) = self.kind_of.get(&subclass) {
            if *existing != superclass {
                return Err(CoreError::Invalid(format!(
                    "{subclass} already kind-of {existing}; a class has exactly one superclass"
                )));
            }
            return Ok(());
        }
        self.kind_of.insert(subclass, superclass);
        self.subclasses
            .entry(superclass)
            .or_default()
            .insert(subclass);
        Ok(())
    }

    /// Record `class inherits-from base` (the effect of `InheritFrom()`),
    /// rejecting cycles: a class must not (transitively) inherit from
    /// itself, or interface composition would not terminate.
    pub fn add_inherits_from(&mut self, class: Loid, base: Loid) -> CoreResult<()> {
        if !class.is_class() {
            return Err(CoreError::NotAClass(class));
        }
        if !base.is_class() {
            return Err(CoreError::NotAClass(base));
        }
        if class == base || self.inheritance_reaches(base, class) {
            return Err(CoreError::InheritanceCycle { class, base });
        }
        let bases = self.inherits_from.entry(class).or_default();
        if !bases.contains(&base) {
            bases.push(base);
        }
        Ok(())
    }

    /// Remove every edge touching `loid`, on either side (the object was
    /// deleted). Instances and subclasses of a removed class lose their
    /// is-a / kind-of edges — the model layer is responsible for deleting
    /// them first if cascade semantics are wanted.
    pub fn remove(&mut self, loid: &Loid) {
        if let Some(class) = self.is_a.remove(loid) {
            if let Some(set) = self.instances.get_mut(&class) {
                set.remove(loid);
            }
        }
        if let Some(sup) = self.kind_of.remove(loid) {
            if let Some(set) = self.subclasses.get_mut(&sup) {
                set.remove(loid);
            }
        }
        // Edges pointing *to* the removed object.
        self.is_a.retain(|_, class| class != loid);
        self.kind_of.retain(|_, sup| sup != loid);
        self.inherits_from.remove(loid);
        for bases in self.inherits_from.values_mut() {
            bases.retain(|b| b != loid);
        }
        self.instances.remove(loid);
        self.subclasses.remove(loid);
    }

    // ----- queries ------------------------------------------------------

    /// The class `instance` is-a, if recorded.
    pub fn class_of(&self, instance: &Loid) -> Option<Loid> {
        self.is_a.get(instance).copied()
    }

    /// The superclass of `class`, if recorded.
    pub fn superclass_of(&self, class: &Loid) -> Option<Loid> {
        self.kind_of.get(class).copied()
    }

    /// The bases of `class`, in InheritFrom order.
    pub fn bases_of(&self, class: &Loid) -> &[Loid] {
        self.inherits_from
            .get(class)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Direct subclasses of `class`.
    pub fn subclasses_of(&self, class: &Loid) -> Vec<Loid> {
        self.subclasses
            .get(class)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Direct instances of `class`.
    pub fn instances_of(&self, class: &Loid) -> Vec<Loid> {
        self.instances
            .get(class)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The kind-of chain from `class` up to (and including) the root with
    /// no recorded superclass — for a well-formed graph, `LegionObject`.
    pub fn superclass_chain(&self, class: Loid) -> Vec<Loid> {
        let mut chain = vec![class];
        let mut cur = class;
        while let Some(sup) = self.superclass_of(&cur) {
            chain.push(sup);
            cur = sup;
        }
        chain
    }

    /// Is `descendant` transitively kind-of `ancestor`? (Reflexive.)
    pub fn is_kind_of(&self, descendant: Loid, ancestor: Loid) -> bool {
        let mut cur = descendant;
        loop {
            if cur == ancestor {
                return true;
            }
            match self.superclass_of(&cur) {
                Some(s) => cur = s,
                None => return false,
            }
        }
    }

    /// Would recording `class inherits-from base` create a cycle?
    /// (Read-only pre-check used by the model before mutating interfaces.)
    pub fn would_create_inheritance_cycle(&self, class: Loid, base: Loid) -> bool {
        class == base || self.inheritance_reaches(base, class)
    }

    /// Does `from` reach `to` through inherits-from edges (reflexive)?
    fn inheritance_reaches(&self, from: Loid, to: Loid) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            for b in self.bases_of(&c) {
                if *b == to {
                    return true;
                }
                stack.push(*b);
            }
        }
        false
    }

    /// All inheritance ancestors of `class`: the superclass chain plus the
    /// transitive closure of inherits-from along it, deduplicated, in
    /// deterministic discovery order (self first). This is the set whose
    /// interfaces compose into the class's effective interface.
    pub fn all_ancestors(&self, class: Loid) -> Vec<Loid> {
        let mut order = Vec::new();
        let mut seen = BTreeSet::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(class);
        while let Some(c) = queue.pop_front() {
            if !seen.insert(c) {
                continue;
            }
            order.push(c);
            // Own bases first (closer relationship), then the superclass.
            for b in self.bases_of(&c) {
                queue.push_back(*b);
            }
            if let Some(s) = self.superclass_of(&c) {
                queue.push_back(s);
            }
        }
        order
    }

    /// Verify the structural claim of §2.1.3: every recorded class's
    /// kind-of chain terminates at `LegionObject` (the sole sink). Returns
    /// the offending class on failure.
    pub fn verify_single_sink(&self) -> Result<(), Loid> {
        for class in self
            .kind_of
            .keys()
            .chain(self.subclasses.keys())
            .chain(self.is_a.values())
        {
            let chain = self.superclass_chain(*class);
            let last = *chain.last().expect("chain includes self");
            if last != LEGION_OBJECT {
                return Err(*class);
            }
        }
        Ok(())
    }

    /// Total number of recorded is-a edges.
    pub fn instance_count(&self) -> usize {
        self.is_a.len()
    }

    /// Total number of recorded kind-of edges.
    pub fn class_count(&self) -> usize {
        self.kind_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wellknown::{LEGION_CLASS, LEGION_OBJECT};

    fn cls(id: u64) -> Loid {
        Loid::class_object(id)
    }

    fn inst(class: u64, seq: u64) -> Loid {
        Loid::instance(class, seq)
    }

    /// A small hierarchy mirroring the paper's Figure 8.
    fn host_hierarchy() -> (RelationGraph, Loid, Loid, Loid, Loid) {
        let mut g = RelationGraph::new();
        let legion_host = cls(3);
        let unix_host = cls(16);
        let spmd_host = cls(17);
        let unix_smmp = cls(18);
        g.add_kind_of(LEGION_CLASS, LEGION_OBJECT).unwrap();
        g.add_kind_of(legion_host, LEGION_OBJECT).unwrap();
        g.add_kind_of(unix_host, legion_host).unwrap();
        g.add_kind_of(spmd_host, legion_host).unwrap();
        g.add_kind_of(unix_smmp, unix_host).unwrap();
        (g, legion_host, unix_host, spmd_host, unix_smmp)
    }

    #[test]
    fn is_a_is_a_function() {
        let mut g = RelationGraph::new();
        let c = cls(16);
        let o = inst(16, 1);
        g.add_is_a(o, c).unwrap();
        // Idempotent re-add.
        g.add_is_a(o, c).unwrap();
        // But a second class is rejected: exactly one class per object.
        assert!(g.add_is_a(o, cls(17)).is_err());
        assert_eq!(g.class_of(&o), Some(c));
        assert_eq!(g.instances_of(&c), vec![o]);
        assert_eq!(g.instance_count(), 1);
    }

    #[test]
    fn is_a_rejects_malformed_edges() {
        let mut g = RelationGraph::new();
        assert!(matches!(
            g.add_is_a(inst(16, 1), inst(16, 2)),
            Err(CoreError::NotAClass(_))
        ));
        assert!(matches!(
            g.add_is_a(cls(16), cls(17)),
            Err(CoreError::NotAnInstance(_))
        ));
    }

    #[test]
    fn kind_of_is_a_function_and_irreflexive() {
        let mut g = RelationGraph::new();
        let a = cls(16);
        let b = cls(17);
        g.add_kind_of(a, b).unwrap();
        g.add_kind_of(a, b).unwrap(); // idempotent
        assert!(g.add_kind_of(a, cls(18)).is_err()); // one superclass
        assert!(g.add_kind_of(b, b).is_err()); // irreflexive
        assert_eq!(g.superclass_of(&a), Some(b));
        assert_eq!(g.subclasses_of(&b), vec![a]);
    }

    #[test]
    fn superclass_chain_reaches_root() {
        let (g, legion_host, unix_host, _, unix_smmp) = host_hierarchy();
        assert_eq!(
            g.superclass_chain(unix_smmp),
            vec![unix_smmp, unix_host, legion_host, LEGION_OBJECT]
        );
    }

    #[test]
    fn is_kind_of_is_transitive_and_reflexive() {
        let (g, legion_host, unix_host, spmd_host, unix_smmp) = host_hierarchy();
        assert!(g.is_kind_of(unix_smmp, unix_smmp));
        assert!(g.is_kind_of(unix_smmp, unix_host));
        assert!(g.is_kind_of(unix_smmp, legion_host));
        assert!(g.is_kind_of(unix_smmp, LEGION_OBJECT));
        assert!(!g.is_kind_of(unix_smmp, spmd_host));
        assert!(!g.is_kind_of(unix_host, unix_smmp));
    }

    #[test]
    fn verify_single_sink_accepts_figure8() {
        let (g, ..) = host_hierarchy();
        assert!(g.verify_single_sink().is_ok());
    }

    #[test]
    fn verify_single_sink_catches_orphans() {
        let mut g = RelationGraph::new();
        let orphan_root = cls(50);
        let child = cls(51);
        g.add_kind_of(child, orphan_root).unwrap();
        assert_eq!(g.verify_single_sink(), Err(child));
    }

    #[test]
    fn inherits_from_allows_many_bases() {
        let mut g = RelationGraph::new();
        let c = cls(16);
        g.add_inherits_from(c, cls(17)).unwrap();
        g.add_inherits_from(c, cls(18)).unwrap();
        g.add_inherits_from(c, cls(17)).unwrap(); // idempotent
        assert_eq!(g.bases_of(&c), &[cls(17), cls(18)]);
    }

    #[test]
    fn inherits_from_rejects_self_and_cycles() {
        let mut g = RelationGraph::new();
        let a = cls(16);
        let b = cls(17);
        let c = cls(18);
        assert!(matches!(
            g.add_inherits_from(a, a),
            Err(CoreError::InheritanceCycle { .. })
        ));
        g.add_inherits_from(a, b).unwrap();
        g.add_inherits_from(b, c).unwrap();
        // c → a would close a cycle a → b → c → a.
        assert!(matches!(
            g.add_inherits_from(c, a),
            Err(CoreError::InheritanceCycle { .. })
        ));
        // Diamonds are fine (not cycles).
        let d = cls(19);
        g.add_inherits_from(d, b).unwrap();
        g.add_inherits_from(d, c).unwrap();
    }

    #[test]
    fn all_ancestors_covers_chain_and_bases() {
        let mut g = RelationGraph::new();
        let base1 = cls(20);
        let base2 = cls(21);
        let sup = cls(22);
        let c = cls(23);
        g.add_kind_of(sup, LEGION_OBJECT).unwrap();
        g.add_kind_of(c, sup).unwrap();
        g.add_inherits_from(c, base1).unwrap();
        g.add_inherits_from(sup, base2).unwrap();
        let anc = g.all_ancestors(c);
        assert_eq!(anc[0], c, "self first");
        for x in [base1, sup, base2, LEGION_OBJECT] {
            assert!(anc.contains(&x), "missing ancestor {x}");
        }
        assert_eq!(anc.len(), 5, "no duplicates");
    }

    #[test]
    fn remove_cleans_all_edges() {
        let mut g = RelationGraph::new();
        let c = cls(16);
        let d = cls(17);
        let o = inst(16, 1);
        g.add_kind_of(c, LEGION_OBJECT).unwrap();
        g.add_kind_of(d, c).unwrap();
        g.add_is_a(o, c).unwrap();
        g.add_inherits_from(d, c).unwrap();
        g.remove(&c);
        assert_eq!(g.superclass_of(&c), None);
        assert_eq!(g.subclasses_of(&LEGION_OBJECT), Vec::<Loid>::new());
        assert_eq!(g.bases_of(&d), &[] as &[Loid]);
        // The instance edge is gone too.
        assert_eq!(g.class_of(&o), None);
    }
}
