//! Symbol interning for the message hot path.
//!
//! Every message in the system names a method ("Ping", "GetBinding", …),
//! and the kernel keys its dispatch tables and per-kind metrics maps by
//! that name. Carrying the name as a heap `String` made every call
//! construction — and every per-kind metrics record — allocate. A
//! [`Sym`] is a `u32` handle into a process-wide, insertion-ordered
//! interner: constructing, copying, comparing and hashing one is free,
//! and the string itself is materialized only at snapshot/export time.
//!
//! ## Determinism contract
//!
//! Interned ids are assigned in **first-intern order**, so two processes
//! (or two runs) that intern the same sequence of new strings assign the
//! same ids. The well-known names below are seeded into the interner at
//! fixed indices before anything else, so their ids are stable across
//! processes regardless of what a run interns afterwards — those ids may
//! be compared, stored, and baked into match tables. Ids of *other*
//! strings depend on a run's intern order and must never be persisted;
//! everything serialized renders a `Sym` back to its string (a `Sym`
//! serializes as a JSON string, never as its id).
//!
//! ## Adding a new well-known symbol
//!
//! Append it to the `well_known!` list below — **never insert in the
//! middle**, existing indices are load-bearing for pre-seeded-id
//! stability — and use the generated constant. The
//! `pre_seeded_symbols_are_stable` tests (unit + proptest) pin the full
//! list.
//!
//! Interned strings are leaked (the interner is append-only and
//! process-wide); the set of distinct method and counter names in a run
//! is small and bounded by the codebase, not by traffic.

use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string handle. `Copy`, 4 bytes, allocation-free to
/// construct from an already-interned name, and ordered by intern order
/// (**not** lexicographically — sort by [`Sym::as_str`] when name order
/// matters).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

/// A deterministic, insertion-ordered string interner.
///
/// The process-wide instance behind [`Sym`] is pre-seeded with the
/// well-known names; standalone instances (tests, tools) start empty.
/// Ids are dense, starting at 0, in first-intern order.
#[derive(Debug, Default)]
pub struct Interner {
    names: Vec<&'static str>,
    ids: HashMap<&'static str, u32>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `s`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(leaked);
        self.ids.insert(leaked, id);
        id
    }

    /// The id of `s` if it is already interned (never interns).
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.ids.get(s).copied()
    }

    /// The string for `id`, if assigned.
    pub fn resolve(&self, id: u32) -> Option<&'static str> {
        self.names.get(id as usize).copied()
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the interner empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Defines the pre-seeded well-known symbols: `$name` becomes a
/// `pub const $name: Sym` with the fixed index `$idx`.
macro_rules! well_known {
    ($($idx:expr => $name:ident = $text:literal;)+) => {
        $(
            #[doc = concat!("Pre-seeded symbol `", $text, "` (id ", stringify!($idx), ").")]
            pub const $name: Sym = Sym($idx);
        )+

        /// Every pre-seeded `(Sym, name)` pair, in id order.
        pub const WELL_KNOWN: &[(Sym, &str)] = &[$((Sym($idx), $text)),+];
    };
}

well_known! {
    // Kernel kinds and counters.
    0 => REPLY = "reply";
    1 => EMPTY = "";
    // Object-mandatory methods (§2.1).
    2 => MAY_I = "MayI";
    3 => IAM = "Iam";
    4 => SAVE_STATE = "SaveState";
    5 => RESTORE_STATE = "RestoreState";
    6 => PING = "Ping";
    7 => GET_INTERFACE = "GetInterface";
    // Naming protocol.
    8 => GET_BINDING = "GetBinding";
    9 => INVALIDATE_BINDING = "InvalidateBinding";
    10 => ADD_BINDING = "AddBinding";
    11 => ISSUE_CLASS_ID = "IssueClassId";
    12 => FIND_RESPONSIBLE = "FindResponsible";
    // HA protocol.
    13 => HEARTBEAT = "Heartbeat";
    // Runtime protocol: magistrate ("Delete" is shared with class).
    14 => ACTIVATE = "Activate";
    15 => DEACTIVATE = "Deactivate";
    16 => DELETE = "Delete";
    17 => COPY = "Copy";
    18 => MOVE = "Move";
    19 => CREATE_OBJECT = "CreateObject";
    20 => RECEIVE_OPR = "ReceiveOpr";
    // Runtime protocol: host objects.
    21 => HOST_ACTIVATE = "HostActivate";
    22 => HOST_DEACTIVATE = "HostDeactivate";
    23 => SET_CPU_LOAD = "SetCPULoad";
    24 => SET_MEMORY_USAGE = "SetMemoryUsage";
    25 => GET_STATE = "GetState";
    // Runtime protocol: class objects.
    26 => CREATE = "Create";
    27 => DERIVE = "Derive";
    28 => INHERIT_FROM = "InheritFrom";
    29 => SET_ADDRESS = "SetAddress";
    30 => ADD_MAGISTRATE = "AddMagistrate";
    31 => REMOVE_MAGISTRATE = "RemoveMagistrate";
    32 => ANNOUNCE = "Announce";
    33 => GET_INSTANCE_INTERFACE = "GetInstanceInterface";
    // Runtime protocol: instance objects.
    34 => SET = "Set";
    35 => GET = "Get";
    // Kernel fault counters (hot when chaos is on).
    36 => NET_DELAYED = "net.delayed";
    37 => NET_DUPLICATED = "net.duplicated";
    38 => NET_DEDUP_DROPPED = "net.dedup_dropped";
    // Dispatch deadline sweeps (timeout accounting + flight-recorder label).
    39 => NET_TIMEOUT_EXPIRED = "net.timeout_expired";
    // HA verdict labels (flight recorder).
    40 => HA_SUSPECT = "ha.suspect";
    41 => HA_HOST_DEAD = "ha.host_dead";
    42 => HA_FALSE_POSITIVE = "ha.false_positive";
    43 => HA_RECOVERED = "ha.recovered";
    // Admission control (hot when an endpoint is overloaded).
    44 => NET_REQUESTS_SHED = "net.requests_shed";
    45 => NET_OVERLOAD_REPLIES = "net.overload_replies";
    // Auto-scaling policy (flight-recorder label for clone decisions).
    46 => POLICY_AUTOSCALE_CLONE = "policy.autoscale_clone";
}

fn global() -> &'static RwLock<Interner> {
    static GLOBAL: OnceLock<RwLock<Interner>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let mut interner = Interner::new();
        for &(sym, name) in WELL_KNOWN {
            let id = interner.intern(name);
            debug_assert_eq!(id, sym.0, "well-known seed order broken for {name:?}");
        }
        RwLock::new(interner)
    })
}

impl Sym {
    /// Intern `s` in the process-wide interner.
    pub fn intern(s: &str) -> Sym {
        if let Some(id) = global().read().expect("interner poisoned").lookup(s) {
            return Sym(id);
        }
        Sym(global().write().expect("interner poisoned").intern(s))
    }

    /// The symbol for `s` if it is already interned. Use on read paths
    /// (counter queries, signature probes) so unknown names don't grow
    /// the interner.
    pub fn try_lookup(s: &str) -> Option<Sym> {
        global()
            .read()
            .expect("interner poisoned")
            .lookup(s)
            .map(Sym)
    }

    /// The interned string. The returned reference is `'static`: interned
    /// strings live for the process.
    pub fn as_str(self) -> &'static str {
        global()
            .read()
            .expect("interner poisoned")
            .resolve(self.0)
            .expect("Sym id not in the process interner")
    }

    /// The raw id (intern order). Stable across processes only for the
    /// pre-seeded [`WELL_KNOWN`] symbols; never persist ids of anything
    /// else.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::intern(&s)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

// On the wire and in every exported artifact a symbol is its string —
// ids are a process-local encoding and never serialized.
impl Serialize for Sym {
    fn to_json_value(&self) -> Value {
        Value::Str(self.as_str().to_owned())
    }
}

impl Deserialize for Sym {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Sym::intern(s)),
            other => Err(DeError(format!("expected string for Sym, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolves() {
        let a = Sym::intern("symbol-tests.alpha");
        let b = Sym::intern("symbol-tests.alpha");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "symbol-tests.alpha");
    }

    #[test]
    fn distinct_strings_get_distinct_syms() {
        let a = Sym::intern("symbol-tests.one");
        let b = Sym::intern("symbol-tests.two");
        assert_ne!(a, b);
    }

    #[test]
    fn pre_seeded_symbols_are_stable() {
        // The indices are a cross-process contract: pin every one.
        for &(sym, name) in WELL_KNOWN {
            assert_eq!(Sym::intern(name), sym, "seed moved for {name:?}");
            assert_eq!(sym.as_str(), name);
        }
        assert_eq!(REPLY.id(), 0);
        assert_eq!(PING.as_str(), "Ping");
        assert_eq!(GET_INTERFACE.as_str(), "GetInterface");
    }

    #[test]
    fn try_lookup_never_interns() {
        assert_eq!(Sym::try_lookup("symbol-tests.never-interned"), None);
        assert_eq!(Sym::try_lookup("Ping"), Some(PING));
    }

    #[test]
    fn standalone_interner_assigns_dense_insertion_ordered_ids() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.intern("x"), 0);
        assert_eq!(i.intern("y"), 1);
        assert_eq!(i.intern("x"), 0);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(1), Some("y"));
        assert_eq!(i.resolve(2), None);
        assert_eq!(i.lookup("y"), Some(1));
        assert_eq!(i.lookup("z"), None);
    }

    #[test]
    fn sym_serializes_as_its_string() {
        let v = PING.to_json_value();
        assert_eq!(v.as_str(), Some("Ping"));
        let back = Sym::from_json_value(&v).unwrap();
        assert_eq!(back, PING);
        assert!(Sym::from_json_value(&Value::U64(6)).is_err());
    }

    #[test]
    fn display_and_debug_render_the_name() {
        assert_eq!(PING.to_string(), "Ping");
        assert_eq!(format!("{REPLY:?}"), "Sym(\"reply\")");
    }
}
