//! Virtual time for the deterministic simulation substrate.
//!
//! The paper's bindings carry "the time that the binding becomes invalid"
//! (§3.5). In this reproduction all timestamps are virtual: the
//! discrete-event kernel in `legion-net` advances a [`SimTime`] measured in
//! nanoseconds of simulated wall-clock. Keeping the type here (rather than
//! in `legion-net`) lets the model layer talk about expiry without a
//! dependency on the kernel.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in simulated nanoseconds since system boot.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin of virtual time (system boot).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as "never".
    pub const NEVER: SimTime = SimTime(u64::MAX);

    /// Construct from whole simulated nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole simulated microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole simulated milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole simulated seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// The raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (possibly fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This instant expressed in (possibly fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition of a duration in nanoseconds.
    #[inline]
    pub fn saturating_add(self, ns: u64) -> Self {
        SimTime(self.0.saturating_add(ns))
    }

    /// The elapsed nanoseconds since `earlier`, or zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: SimTime) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == SimTime::NEVER {
            write!(f, "never")
        } else if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// When a binding (or any cached fact) stops being valid (§3.5).
///
/// `Never` encodes the paper's "field may be set to some value that
/// indicates that the binding will never become explicitly invalid".
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Expiry {
    /// The fact never expires of its own accord.
    #[default]
    Never,
    /// The fact is invalid at and after this instant.
    At(SimTime),
}

impl Expiry {
    /// Is the fact still valid at virtual time `now`?
    #[inline]
    pub fn is_valid_at(self, now: SimTime) -> bool {
        match self {
            Expiry::Never => true,
            Expiry::At(t) => now < t,
        }
    }

    /// An expiry `ttl_ns` nanoseconds after `now`.
    #[inline]
    pub fn after(now: SimTime, ttl_ns: u64) -> Self {
        Expiry::At(now.saturating_add(ttl_ns))
    }
}

impl fmt::Display for Expiry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expiry::Never => write!(f, "never"),
            Expiry::At(t) => write!(f, "at {t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(5);
        assert_eq!((t + 1_000_000).as_nanos(), 6_000_000);
        let mut u = t;
        u += 2_000_000;
        assert_eq!(u - t, 2_000_000);
        assert_eq!(t.saturating_since(u), 0);
        assert_eq!(u.saturating_since(t), 2_000_000);
    }

    #[test]
    fn saturating_add_caps_at_never() {
        assert_eq!(SimTime::NEVER.saturating_add(10), SimTime::NEVER);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(3).to_string(), "3.000us");
        assert_eq!(SimTime::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::NEVER.to_string(), "never");
    }

    #[test]
    fn expiry_never_is_always_valid() {
        assert!(Expiry::Never.is_valid_at(SimTime::ZERO));
        assert!(Expiry::Never.is_valid_at(SimTime::NEVER));
    }

    #[test]
    fn expiry_at_boundary_is_invalid() {
        let e = Expiry::At(SimTime::from_secs(1));
        assert!(e.is_valid_at(SimTime::from_millis(999)));
        assert!(!e.is_valid_at(SimTime::from_secs(1)));
        assert!(!e.is_valid_at(SimTime::from_secs(2)));
    }

    #[test]
    fn expiry_after_builds_ttl() {
        let e = Expiry::after(SimTime::from_secs(1), 500);
        assert_eq!(e, Expiry::At(SimTime(1_000_000_500)));
    }
}
