//! Causal-trace identifiers carried by every invocation.
//!
//! A workload-level request is one **trace**; every message hop, timer,
//! and annotation inside it is a **span**. The identifiers live here in
//! the model layer because they travel inside [`crate::env::InvocationEnv`]
//! — the same vehicle the paper uses for the §2.4 security triple — so
//! that causality survives arbitrary forwarding chains without any
//! endpoint cooperating beyond passing the environment along.
//!
//! Identifier `0` is reserved as "no trace" ([`TraceId::NONE`]); untraced
//! runs pay nothing beyond copying two `u64`s per message.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one workload-level request end to end.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The reserved "not part of any trace" id.
    pub const NONE: TraceId = TraceId(0);

    /// Is this a real trace id?
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifies one hop or annotation within a trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The reserved "no span" id (root spans have this as their parent).
    pub const NONE: SpanId = SpanId(0);

    /// Is this a real span id?
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The `(trace, span)` pair propagated with every invocation: which
/// request this work belongs to, and which span is its causal parent.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TraceContext {
    /// The request this work belongs to.
    pub trace: TraceId,
    /// The span that caused this work (parent of any child spans).
    pub span: SpanId,
}

impl TraceContext {
    /// The empty context: not part of any trace.
    pub const NONE: TraceContext = TraceContext {
        trace: TraceId::NONE,
        span: SpanId::NONE,
    };

    /// A context rooted at `trace` / `span`.
    pub fn new(trace: TraceId, span: SpanId) -> Self {
        TraceContext { trace, span }
    }

    /// Is this context part of a real trace?
    pub fn is_active(self) -> bool {
        self.trace.is_some()
    }
}

impl fmt::Display for TraceContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_active() {
            write!(f, "{}/{}", self.trace, self.span)
        } else {
            write!(f, "untraced")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive() {
        assert!(!TraceContext::NONE.is_active());
        assert!(!TraceContext::default().is_active());
        assert!(!TraceId::NONE.is_some());
        assert!(!SpanId::NONE.is_some());
    }

    #[test]
    fn real_ids_are_active() {
        let tc = TraceContext::new(TraceId(3), SpanId(7));
        assert!(tc.is_active());
        assert_eq!(tc.to_string(), "T3/S7");
        assert_eq!(TraceContext::NONE.to_string(), "untraced");
    }
}
