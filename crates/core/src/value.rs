//! Dynamic values carried by Legion method invocations.
//!
//! Legion method calls are non-blocking messages whose parameters and
//! return values are described by method signatures (§2). Because classes
//! and interfaces are created *at run time* (Derive/InheritFrom), parameter
//! values must be dynamically typed: [`LegionValue`] is the tagged union
//! the reproduction uses on the wire and in persistent state.

use crate::address::ObjectAddress;
use crate::binding::Binding;
use crate::interface::ParamType;
use crate::loid::Loid;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dynamically typed Legion value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum LegionValue {
    /// The absence of a value (void returns).
    #[default]
    Void,
    /// A boolean.
    Bool(bool),
    /// A signed 64-bit integer.
    Int(i64),
    /// An unsigned 64-bit integer.
    Uint(u64),
    /// A 64-bit float.
    Float(f64),
    /// A UTF-8 string.
    Str(String),
    /// Raw bytes (e.g. an Object Persistent Representation payload).
    Bytes(Vec<u8>),
    /// A Legion Object Identifier.
    Loid(Loid),
    /// An Object Address.
    Address(ObjectAddress),
    /// A first-class binding triple (§3.5: "bindings ... can be passed
    /// around the system").
    Binding(Box<Binding>),
    /// An ordered list of values.
    List(Vec<LegionValue>),
}

impl LegionValue {
    /// The [`ParamType`] this value inhabits.
    pub fn param_type(&self) -> ParamType {
        match self {
            LegionValue::Void => ParamType::Void,
            LegionValue::Bool(_) => ParamType::Bool,
            LegionValue::Int(_) => ParamType::Int,
            LegionValue::Uint(_) => ParamType::Uint,
            LegionValue::Float(_) => ParamType::Float,
            LegionValue::Str(_) => ParamType::Str,
            LegionValue::Bytes(_) => ParamType::Bytes,
            LegionValue::Loid(_) => ParamType::Loid,
            LegionValue::Address(_) => ParamType::Address,
            LegionValue::Binding(_) => ParamType::Binding,
            LegionValue::List(_) => ParamType::List,
        }
    }

    /// Extract a LOID, if that is what this value is.
    pub fn as_loid(&self) -> Option<Loid> {
        match self {
            LegionValue::Loid(l) => Some(*l),
            _ => None,
        }
    }

    /// Extract a binding, if that is what this value is.
    pub fn as_binding(&self) -> Option<&Binding> {
        match self {
            LegionValue::Binding(b) => Some(b),
            _ => None,
        }
    }

    /// Extract a string slice, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            LegionValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract an unsigned integer (accepting non-negative `Int` too).
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            LegionValue::Uint(u) => Some(*u),
            LegionValue::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Extract a boolean, if that is what this value is.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            LegionValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract a list slice, if this value is a list.
    pub fn as_list(&self) -> Option<&[LegionValue]> {
        match self {
            LegionValue::List(v) => Some(v),
            _ => None,
        }
    }

    /// Does this value conform to `ty`? Lists conform structurally
    /// (every element checked against `List`'s erased element type —
    /// Legion's IDL subset uses homogeneous erased lists).
    pub fn conforms_to(&self, ty: &ParamType) -> bool {
        *ty == ParamType::Any
            || self.param_type() == *ty
            || matches!((self, ty), (LegionValue::Int(i), ParamType::Uint) if *i >= 0)
    }
}

impl fmt::Display for LegionValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegionValue::Void => write!(f, "void"),
            LegionValue::Bool(b) => write!(f, "{b}"),
            LegionValue::Int(i) => write!(f, "{i}"),
            LegionValue::Uint(u) => write!(f, "{u}u"),
            LegionValue::Float(x) => write!(f, "{x}"),
            LegionValue::Str(s) => write!(f, "{s:?}"),
            LegionValue::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            LegionValue::Loid(l) => write!(f, "{l}"),
            LegionValue::Address(a) => write!(f, "{a}"),
            LegionValue::Binding(b) => write!(f, "{b}"),
            LegionValue::List(v) => {
                write!(f, "(")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<bool> for LegionValue {
    fn from(b: bool) -> Self {
        LegionValue::Bool(b)
    }
}
impl From<i64> for LegionValue {
    fn from(i: i64) -> Self {
        LegionValue::Int(i)
    }
}
impl From<u64> for LegionValue {
    fn from(u: u64) -> Self {
        LegionValue::Uint(u)
    }
}
impl From<f64> for LegionValue {
    fn from(x: f64) -> Self {
        LegionValue::Float(x)
    }
}
impl From<&str> for LegionValue {
    fn from(s: &str) -> Self {
        LegionValue::Str(s.to_owned())
    }
}
impl From<String> for LegionValue {
    fn from(s: String) -> Self {
        LegionValue::Str(s)
    }
}
impl From<Loid> for LegionValue {
    fn from(l: Loid) -> Self {
        LegionValue::Loid(l)
    }
}
impl From<ObjectAddress> for LegionValue {
    fn from(a: ObjectAddress) -> Self {
        LegionValue::Address(a)
    }
}
impl From<Binding> for LegionValue {
    fn from(b: Binding) -> Self {
        LegionValue::Binding(Box::new(b))
    }
}
impl From<Vec<LegionValue>> for LegionValue {
    fn from(v: Vec<LegionValue>) -> Self {
        LegionValue::List(v)
    }
}
impl From<Vec<u8>> for LegionValue {
    fn from(b: Vec<u8>) -> Self {
        LegionValue::Bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::ObjectAddressElement;

    #[test]
    fn param_types_match_variants() {
        assert_eq!(LegionValue::Void.param_type(), ParamType::Void);
        assert_eq!(LegionValue::from(true).param_type(), ParamType::Bool);
        assert_eq!(LegionValue::from(-1i64).param_type(), ParamType::Int);
        assert_eq!(LegionValue::from(1u64).param_type(), ParamType::Uint);
        assert_eq!(LegionValue::from(1.5f64).param_type(), ParamType::Float);
        assert_eq!(LegionValue::from("x").param_type(), ParamType::Str);
        assert_eq!(
            LegionValue::Bytes(vec![1, 2]).param_type(),
            ParamType::Bytes
        );
        assert_eq!(
            LegionValue::from(Loid::instance(1, 1)).param_type(),
            ParamType::Loid
        );
    }

    #[test]
    fn accessors() {
        let l = Loid::instance(4, 5);
        assert_eq!(LegionValue::from(l).as_loid(), Some(l));
        assert_eq!(LegionValue::from("hi").as_str(), Some("hi"));
        assert_eq!(LegionValue::from(9u64).as_uint(), Some(9));
        assert_eq!(LegionValue::from(9i64).as_uint(), Some(9));
        assert_eq!(LegionValue::from(-9i64).as_uint(), None);
        assert_eq!(LegionValue::from(true).as_bool(), Some(true));
        assert!(LegionValue::from("hi").as_loid().is_none());
    }

    #[test]
    fn conformance_allows_nonneg_int_as_uint() {
        assert!(LegionValue::Int(3).conforms_to(&ParamType::Uint));
        assert!(!LegionValue::Int(-3).conforms_to(&ParamType::Uint));
        assert!(LegionValue::Uint(3).conforms_to(&ParamType::Uint));
        assert!(!LegionValue::Str("x".into()).conforms_to(&ParamType::Uint));
    }

    #[test]
    fn binding_value_roundtrip() {
        let b = Binding::forever(
            Loid::instance(1, 2),
            ObjectAddress::single(ObjectAddressElement::sim(3)),
        );
        let v = LegionValue::from(b.clone());
        assert_eq!(v.as_binding(), Some(&b));
    }

    #[test]
    fn list_display() {
        let v = LegionValue::List(vec![1i64.into(), "a".into()]);
        assert_eq!(v.to_string(), "(1, \"a\")");
        assert_eq!(v.as_list().unwrap().len(), 2);
    }
}
