//! Well-known LOIDs of Legion's core Abstract classes (paper §2.1.3).
//!
//! The paper names five core Abstract class objects — `LegionObject`,
//! `LegionClass`, `LegionHost`, `LegionMagistrate`, `LegionBindingAgent` —
//! that are started exactly once, "when the Legion system comes alive"
//! (§4.2.1). Their Class Identifiers are reserved here so that every
//! participant agrees on their names without any lookup.
//!
//! Class Identifiers `1..=15` are reserved for the core; user classes are
//! issued identifiers starting at [`FIRST_USER_CLASS_ID`].

use crate::loid::Loid;

/// Class Identifier of `LegionObject` — the sole sink of the kind-of ∪ is-a
/// graph; defines the object-mandatory member functions.
pub const LEGION_OBJECT_CLASS_ID: u64 = 1;
/// Class Identifier of `LegionClass` — the metaclass; defines the
/// class-mandatory member functions and issues Class Identifiers.
pub const LEGION_CLASS_CLASS_ID: u64 = 2;
/// Class Identifier of `LegionHost` — root of all Host Object classes.
pub const LEGION_HOST_CLASS_ID: u64 = 3;
/// Class Identifier of `LegionMagistrate` — root of all Magistrate classes.
pub const LEGION_MAGISTRATE_CLASS_ID: u64 = 4;
/// Class Identifier of `LegionBindingAgent` — root of all Binding Agents.
pub const LEGION_BINDING_AGENT_CLASS_ID: u64 = 5;
/// First Class Identifier available to non-core classes.
pub const FIRST_USER_CLASS_ID: u64 = 16;

/// LOID of the `LegionObject` class object.
pub const LEGION_OBJECT: Loid = Loid::class_object(LEGION_OBJECT_CLASS_ID);
/// LOID of the `LegionClass` class object (the metaclass).
pub const LEGION_CLASS: Loid = Loid::class_object(LEGION_CLASS_CLASS_ID);
/// LOID of the `LegionHost` class object.
pub const LEGION_HOST: Loid = Loid::class_object(LEGION_HOST_CLASS_ID);
/// LOID of the `LegionMagistrate` class object.
pub const LEGION_MAGISTRATE: Loid = Loid::class_object(LEGION_MAGISTRATE_CLASS_ID);
/// LOID of the `LegionBindingAgent` class object.
pub const LEGION_BINDING_AGENT: Loid = Loid::class_object(LEGION_BINDING_AGENT_CLASS_ID);

/// All core class LOIDs, in bootstrap order (paper §4.2.1: the Abstract
/// class objects are started exactly once, LegionObject first since
/// everything eventually derives from it).
pub const CORE_CLASSES: [Loid; 5] = [
    LEGION_OBJECT,
    LEGION_CLASS,
    LEGION_HOST,
    LEGION_MAGISTRATE,
    LEGION_BINDING_AGENT,
];

/// Is this LOID one of the reserved core class objects?
pub fn is_core_class(loid: &Loid) -> bool {
    loid.is_class() && loid.class_id.0 >= 1 && loid.class_id.0 < FIRST_USER_CLASS_ID
}

/// Human-readable name for a core class LOID, if it is one.
pub fn core_class_name(loid: &Loid) -> Option<&'static str> {
    if !loid.is_class() {
        return None;
    }
    match loid.class_id.0 {
        LEGION_OBJECT_CLASS_ID => Some("LegionObject"),
        LEGION_CLASS_CLASS_ID => Some("LegionClass"),
        LEGION_HOST_CLASS_ID => Some("LegionHost"),
        LEGION_MAGISTRATE_CLASS_ID => Some("LegionMagistrate"),
        LEGION_BINDING_AGENT_CLASS_ID => Some("LegionBindingAgent"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn core_class_loids_are_class_objects() {
        for c in CORE_CLASSES {
            assert!(c.is_class(), "{c} must be a class object");
            assert!(is_core_class(&c));
        }
    }

    #[test]
    fn core_class_ids_are_distinct() {
        let ids: HashSet<u64> = CORE_CLASSES.iter().map(|l| l.class_id.0).collect();
        assert_eq!(ids.len(), CORE_CLASSES.len());
    }

    #[test]
    fn user_classes_are_not_core() {
        assert!(!is_core_class(&Loid::class_object(FIRST_USER_CLASS_ID)));
        assert!(!is_core_class(&Loid::class_object(999)));
    }

    #[test]
    fn instances_are_never_core_classes() {
        let inst = Loid::instance(LEGION_HOST_CLASS_ID, 1);
        assert!(!is_core_class(&inst));
        assert_eq!(core_class_name(&inst), None);
    }

    #[test]
    fn names_resolve() {
        assert_eq!(core_class_name(&LEGION_OBJECT), Some("LegionObject"));
        assert_eq!(core_class_name(&LEGION_CLASS), Some("LegionClass"));
        assert_eq!(core_class_name(&LEGION_HOST), Some("LegionHost"));
        assert_eq!(
            core_class_name(&LEGION_MAGISTRATE),
            Some("LegionMagistrate")
        );
        assert_eq!(
            core_class_name(&LEGION_BINDING_AGENT),
            Some("LegionBindingAgent")
        );
        assert_eq!(core_class_name(&Loid::class_object(77)), None);
    }
}
