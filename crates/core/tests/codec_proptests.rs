//! Property-based round-trips for the typed argument codec
//! ([`FromArgs`]/[`IntoArgs`]): every [`LegionValue`] variant — including
//! nested `List` — survives encode → decode unchanged, typed tuples
//! decode exactly what they encoded, and wrong-typed values are rejected
//! rather than coerced.

use legion_core::address::{
    AddressKind, AddressSemantics, ObjectAddress, ObjectAddressElement, ADDRESS_INFO_BYTES,
};
use legion_core::binding::Binding;
use legion_core::dispatch::{FromArgs, IntoArgs};
use legion_core::interface::ParamType;
use legion_core::loid::Loid;
use legion_core::time::{Expiry, SimTime};
use legion_core::value::LegionValue;
use proptest::prelude::*;

fn arb_loid() -> impl Strategy<Value = Loid> {
    (any::<u64>(), any::<u64>()).prop_map(|(class, specific)| Loid::instance(class, specific))
}

fn arb_element() -> impl Strategy<Value = ObjectAddressElement> {
    (
        prop_oneof![
            Just(AddressKind::Ipv4),
            Just(AddressKind::Xtp),
            Just(AddressKind::Ipv4Node),
            Just(AddressKind::Sim),
            any::<u32>().prop_map(AddressKind::Other),
        ],
        proptest::collection::vec(any::<u8>(), ADDRESS_INFO_BYTES),
    )
        .prop_map(|(kind, bytes)| {
            let mut info = [0u8; ADDRESS_INFO_BYTES];
            info.copy_from_slice(&bytes);
            ObjectAddressElement { kind, info }
        })
}

fn arb_address() -> impl Strategy<Value = ObjectAddress> {
    (
        proptest::collection::vec(arb_element(), 0..3),
        prop_oneof![
            Just(AddressSemantics::Single),
            Just(AddressSemantics::SendToAll),
            Just(AddressSemantics::PickRandom),
        ],
    )
        .prop_map(|(elements, semantics)| ObjectAddress {
            elements,
            semantics,
        })
}

fn arb_binding() -> impl Strategy<Value = Binding> {
    (
        arb_loid(),
        arb_address(),
        prop_oneof![
            Just(Expiry::Never),
            any::<u64>().prop_map(|ns| Expiry::At(SimTime::from_nanos(ns))),
        ],
    )
        .prop_map(|(loid, address, expiry)| Binding {
            loid,
            address,
            expiry,
        })
}

/// Every variant as a leaf, then `List` layered recursively on top —
/// nested lists of lists are exercised, not just flat ones.
fn arb_value() -> impl Strategy<Value = LegionValue> {
    let leaf = prop_oneof![
        Just(LegionValue::Void),
        any::<bool>().prop_map(LegionValue::Bool),
        any::<i64>().prop_map(LegionValue::Int),
        any::<u64>().prop_map(LegionValue::Uint),
        // NaN never compares equal to itself, so it can't round-trip
        // under `==`; fold it to zero.
        any::<f64>().prop_map(|f| LegionValue::Float(if f.is_nan() { 0.0 } else { f })),
        "[A-Za-z0-9 _.-]{0,12}".prop_map(LegionValue::Str),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(LegionValue::Bytes),
        arb_loid().prop_map(LegionValue::Loid),
        arb_address().prop_map(LegionValue::Address),
        arb_binding().prop_map(|b| LegionValue::Binding(Box::new(b))),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(LegionValue::List)
    })
}

proptest! {
    /// Any single value — every variant, including nested `List` —
    /// encoded through the `Any`-typed 1-tuple decodes back to itself.
    #[test]
    fn any_value_roundtrips(v in arb_value()) {
        let args = (v.clone(),).into_args();
        prop_assert_eq!(args.len(), 1);
        let (back,) = <(LegionValue,)>::from_args(&args).unwrap();
        prop_assert_eq!(back, v);
    }

    /// A whole argument list round-trips: `Vec<LegionValue>` is
    /// `IntoArgs`'s identity, and the same list nested as a `List` value
    /// decodes intact from a single `Any` slot.
    #[test]
    fn arg_lists_roundtrip(vs in proptest::collection::vec(arb_value(), 0..5)) {
        let args = vs.clone().into_args();
        prop_assert_eq!(&args, &vs);
        let (back,) = <(LegionValue,)>::from_args(&[LegionValue::List(vs.clone())]).unwrap();
        prop_assert_eq!(back, LegionValue::List(vs));
    }

    /// Typed scalar tuple: encode → decode is the identity, and the
    /// published params match the wire types.
    #[test]
    fn scalar_tuple_roundtrips(
        b in any::<bool>(),
        i in any::<i64>(),
        u in any::<u64>(),
        s in "[A-Za-z0-9 _.-]{0,12}",
    ) {
        let tup = (b, i, u, s);
        let args = tup.clone().into_args();
        let back = <(bool, i64, u64, String)>::from_args(&args).unwrap();
        prop_assert_eq!(back, tup);
        prop_assert_eq!(
            <(bool, i64, u64, String)>::params(),
            vec![ParamType::Bool, ParamType::Int, ParamType::Uint, ParamType::Str]
        );
    }

    /// Typed object tuple: Bytes, Loid, Address, and Binding all
    /// round-trip through the wire encoding.
    #[test]
    fn object_tuple_roundtrips(
        bytes in proptest::collection::vec(any::<u8>(), 0..16),
        loid in arb_loid(),
        addr in arb_address(),
        binding in arb_binding(),
    ) {
        let args = (bytes.clone(), loid, addr.clone(), binding.clone()).into_args();
        let (b2, l2, a2, bd2) =
            <(Vec<u8>, Loid, ObjectAddress, Binding)>::from_args(&args).unwrap();
        prop_assert_eq!(b2, bytes);
        prop_assert_eq!(l2, loid);
        prop_assert_eq!(a2, addr);
        prop_assert_eq!(bd2, binding);
    }

    /// Floats round-trip bit-exactly — any bit pattern at all, NaN
    /// payloads included, since this one compares bits rather than `==`.
    #[test]
    fn float_roundtrips(f in any::<f64>()) {
        let (back,) = <(f64,)>::from_args(&(f,).into_args()).unwrap();
        prop_assert_eq!(back.to_bits(), f.to_bits());
    }

    /// Wrong-typed values are rejected, not coerced: nothing but `Str`
    /// decodes as `String`.
    #[test]
    fn wrong_type_is_rejected(v in arb_value()) {
        if v.param_type() != ParamType::Str {
            prop_assert!(<(String,)>::from_args(&[v]).is_err());
        }
    }
}
