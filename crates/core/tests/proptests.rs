//! Property-based tests for the core object model invariants.

use legion_core::class::ClassKind;
use legion_core::idl;
use legion_core::interface::{Interface, MethodSignature, Param, ParamType};
use legion_core::loid::{ClassId, Loid, LoidAllocator};
use legion_core::model::ObjectModel;
use legion_core::time::{Expiry, SimTime};
use legion_core::wellknown::LEGION_CLASS;
use proptest::prelude::*;

fn arb_param_type() -> impl Strategy<Value = ParamType> {
    prop_oneof![
        Just(ParamType::Bool),
        Just(ParamType::Int),
        Just(ParamType::Uint),
        Just(ParamType::Float),
        Just(ParamType::Str),
        Just(ParamType::Bytes),
        Just(ParamType::Loid),
        Just(ParamType::Address),
        Just(ParamType::Binding),
        Just(ParamType::List),
    ]
}

fn arb_ident() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_]{0,12}"
}

fn arb_signature() -> impl Strategy<Value = MethodSignature> {
    (
        arb_ident(),
        proptest::collection::vec((arb_ident(), arb_param_type()), 0..4),
        prop_oneof![Just(ParamType::Void), arb_param_type()],
    )
        .prop_map(|(name, params, returns)| MethodSignature {
            name,
            params: params
                .into_iter()
                .map(|(name, ty)| Param { name, ty })
                .collect(),
            returns,
        })
}

proptest! {
    /// LOID display → parse is the identity.
    #[test]
    fn loid_display_parse_roundtrip(class_id in 0u64.., specific in 0u64..) {
        let loid = Loid::instance(class_id, specific);
        let parsed: Loid = loid.to_string().parse().unwrap();
        prop_assert_eq!(parsed, loid);
    }

    /// The responsible-class rule: class_loid zeroes the specific field and
    /// preserves the class id, and is idempotent.
    #[test]
    fn class_loid_idempotent(class_id in 0u64.., specific in 0u64..) {
        let loid = Loid::instance(class_id, specific);
        let c = loid.class_loid();
        prop_assert!(c.is_class());
        prop_assert_eq!(c.class_id, loid.class_id);
        prop_assert_eq!(c.class_loid(), c);
    }

    /// Allocators never repeat a LOID and never emit a class LOID.
    #[test]
    fn allocator_unique(n in 1usize..200, class_id in 1u64..1_000_000) {
        let mut alloc = LoidAllocator::new(ClassId(class_id));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            let l = alloc.next().unwrap();
            prop_assert!(!l.is_class());
            prop_assert!(seen.insert(l));
        }
    }

    /// Expiry::is_valid_at agrees with plain comparison.
    #[test]
    fn expiry_matches_comparison(at in 0u64.., now in 0u64..) {
        let e = Expiry::At(SimTime(at));
        prop_assert_eq!(e.is_valid_at(SimTime(now)), now < at);
        prop_assert!(Expiry::Never.is_valid_at(SimTime(now)));
    }

    /// Interface merge: merged set is the union of names; merging is
    /// idempotent; self definitions survive.
    #[test]
    fn interface_merge_union(
        sigs_a in proptest::collection::vec(arb_signature(), 0..8),
        sigs_b in proptest::collection::vec(arb_signature(), 0..8),
    ) {
        let ca = Loid::class_object(100);
        let cb = Loid::class_object(101);
        let mut a = Interface::new();
        for s in &sigs_a { a.define(s.clone(), ca); }
        let mut b = Interface::new();
        for s in &sigs_b { b.define(s.clone(), cb); }
        let before: Vec<String> = a.iter().map(|s| s.name.clone()).collect();
        if a.clone().merge_from(&b).is_ok() {
            let mut merged = a.clone();
            merged.merge_from(&b).unwrap();
            // Union of names.
            for s in a.iter() {
                prop_assert!(merged.contains(&s.name));
            }
            for s in b.iter() {
                prop_assert!(merged.contains(&s.name));
            }
            // Names that were in `a` keep `a`'s signature (shadowing).
            for name in &before {
                prop_assert_eq!(merged.get(name), a.get(name));
            }
            // Idempotent.
            let mut again = merged.clone();
            again.merge_from(&b).unwrap();
            prop_assert_eq!(&again, &merged);
        }
    }

    /// IDL render → parse roundtrips any generated interface.
    #[test]
    fn idl_render_parse_roundtrip(
        sigs in proptest::collection::vec(arb_signature(), 0..8),
    ) {
        let owner = Loid::class_object(42);
        let mut iface = Interface::new();
        for s in sigs {
            iface.define(s, owner);
        }
        let text = idl::render("Gen", &iface);
        let parsed = idl::parse_one(&text).unwrap().into_interface(owner);
        prop_assert_eq!(parsed, iface);
    }

    /// Random derive/create/inherit sequences keep the model consistent:
    /// incremental interfaces equal from-scratch composition and the
    /// kind-of graph keeps its single sink.
    #[test]
    fn model_stays_consistent(ops in proptest::collection::vec((0u8..3, 0usize..8, 0usize..8), 1..40)) {
        let mut m = ObjectModel::bootstrap();
        let mut classes = vec![LEGION_CLASS];
        let mut method_n = 0u32;
        for (op, i, j) in ops {
            let a = classes[i % classes.len()];
            let b = classes[j % classes.len()];
            match op {
                0 => {
                    if let Ok(c) = m.derive(a, "P", ClassKind::NORMAL) {
                        classes.push(c);
                    }
                }
                1 => {
                    method_n += 1;
                    let _ = m.define_method(
                        a,
                        MethodSignature::new(format!("m{method_n}"), vec![], ParamType::Void),
                    );
                }
                _ => {
                    let _ = m.inherit_from(a, b); // cycles/conflicts may be rejected
                }
            }
        }
        prop_assert!(m.verify().is_ok());
    }

    /// Instances created through the model always have exactly one class,
    /// and their LOIDs never collide.
    #[test]
    fn created_instances_unique(counts in proptest::collection::vec(1usize..20, 1..5)) {
        let mut m = ObjectModel::bootstrap();
        let mut all = std::collections::HashSet::new();
        for (k, n) in counts.iter().enumerate() {
            let c = m.derive(LEGION_CLASS, format!("C{k}"), ClassKind::NORMAL).unwrap();
            for _ in 0..*n {
                let o = m.create(c).unwrap();
                prop_assert!(all.insert(o));
                prop_assert_eq!(m.graph().class_of(&o), Some(c));
            }
        }
    }
}
