//! Property-based tests for the symbol interner.
//!
//! The interner underpins the message hot path: every method name and
//! metric key becomes a `Sym`, so the properties here — round-trips,
//! collision-freedom, insertion-order determinism, and the stability of
//! the pre-seeded well-known ids — are what make symbol-keyed maps safe
//! to render back into the byte-identical transcripts the determinism
//! goldens pin down.

use legion_core::symbol::{Interner, Sym, WELL_KNOWN};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    // Method-name-ish strings plus awkward ones (empty handled by the
    // pre-seeded EMPTY symbol; unicode and whitespace must still round-trip).
    prop_oneof![
        "[A-Za-z_][A-Za-z0-9_.]{0,16}",
        "[ -~]{0,24}",
        Just("net.delayed".to_string()),
        Just("GetBinding".to_string()),
        Just("\u{3bb}\u{3bc}\u{3bd}".to_string()),
    ]
}

proptest! {
    /// intern → as_str is the identity, and interning again returns the
    /// same id (no duplicate entries for one spelling).
    #[test]
    fn intern_roundtrips_and_is_idempotent(name in arb_name()) {
        let sym = Sym::intern(&name);
        prop_assert_eq!(sym.as_str(), name.as_str());
        prop_assert_eq!(Sym::intern(&name), sym);
        prop_assert_eq!(Sym::try_lookup(&name), Some(sym));
    }

    /// Distinct strings never collide: equal ids imply equal spellings.
    #[test]
    fn distinct_strings_never_collide(a in arb_name(), b in arb_name()) {
        let sa = Sym::intern(&a);
        let sb = Sym::intern(&b);
        prop_assert_eq!(sa == sb, a == b);
        prop_assert_eq!(sa.id() == sb.id(), a == b);
    }

    /// A fresh `Interner` fed the same insertion sequence assigns the
    /// same ids — the determinism contract that makes symbol ids safe
    /// to use as map keys within a run.
    #[test]
    fn identical_sequences_yield_identical_ids(
        names in proptest::collection::vec(arb_name(), 1..24),
    ) {
        let mut a = Interner::new();
        let mut b = Interner::new();
        let ids_a: Vec<u32> = names.iter().map(|n| a.intern(n)).collect();
        let ids_b: Vec<u32> = names.iter().map(|n| b.intern(n)).collect();
        prop_assert_eq!(&ids_a, &ids_b);
        // And every id resolves back to its spelling in both.
        for (name, id) in names.iter().zip(ids_a) {
            prop_assert_eq!(a.resolve(id), Some(name.as_str()));
            prop_assert_eq!(b.resolve(id), Some(name.as_str()));
        }
    }

    /// Ids are dense: a fresh interner's len equals the number of
    /// distinct spellings fed to it, whatever the order or repetition.
    #[test]
    fn len_counts_distinct_spellings(
        names in proptest::collection::vec(arb_name(), 0..24),
    ) {
        let mut i = Interner::new();
        for n in &names {
            i.intern(n);
        }
        let mut distinct: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(i.len(), distinct.len());
        prop_assert_eq!(i.is_empty(), distinct.is_empty());
    }

    /// Interning arbitrary garbage never disturbs a well-known symbol:
    /// the pre-seeded ids keep their spellings under any workload.
    #[test]
    fn well_known_ids_are_stable(names in proptest::collection::vec(arb_name(), 0..16)) {
        for n in &names {
            Sym::intern(n);
        }
        for &(sym, text) in WELL_KNOWN {
            prop_assert_eq!(sym.as_str(), text);
            prop_assert_eq!(Sym::try_lookup(text), Some(sym));
            prop_assert_eq!(Sym::intern(text), sym);
        }
    }
}

/// `try_lookup` must never intern: an unseen spelling stays unseen.
#[test]
fn try_lookup_never_interns() {
    let name = "symbol_proptests::never_interned_probe";
    assert_eq!(Sym::try_lookup(name), None);
    assert_eq!(Sym::try_lookup(name), None);
    let sym = Sym::intern(name);
    assert_eq!(Sym::try_lookup(name), Some(sym));
}
