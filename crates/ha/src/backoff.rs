//! Capped exponential retry backoff.
//!
//! Client stubs whose in-flight requests die with a crashed host retry
//! on this schedule: the first retry is quick (the crash may be a
//! transient refusal), later retries space out so a recovering system
//! is not hammered, and the cap bounds worst-case added latency. No
//! jitter — the simulation's determinism guarantee forbids it, and the
//! discrete-event kernel already de-synchronises clients naturally.

/// A capped exponential backoff schedule.
///
/// Delay for attempt `n` (0-based) is `base_ns * factor^n`, saturating,
/// clamped to `max_delay_ns`; after `max_attempts` delays the schedule
/// is exhausted and the caller should give up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// First retry delay (virtual ns).
    pub base_ns: u64,
    /// Multiplier between successive delays.
    pub factor: u32,
    /// Upper clamp on any single delay.
    pub max_delay_ns: u64,
    /// Number of retries before giving up.
    pub max_attempts: u32,
}

impl Backoff {
    /// A doubling schedule: `base_ns`, clamped at `max_delay_ns`, for
    /// `max_attempts` retries.
    pub fn new(base_ns: u64, max_delay_ns: u64, max_attempts: u32) -> Self {
        Backoff {
            base_ns,
            factor: 2,
            max_delay_ns,
            max_attempts,
        }
    }

    /// Delay before retry `attempt` (0-based), or `None` once the
    /// schedule is exhausted.
    pub fn delay_ns(&self, attempt: u32) -> Option<u64> {
        if attempt >= self.max_attempts {
            return None;
        }
        let mut d = self.base_ns;
        for _ in 0..attempt {
            d = d.saturating_mul(u64::from(self.factor));
            if d >= self.max_delay_ns {
                break;
            }
        }
        Some(d.min(self.max_delay_ns))
    }

    /// Total virtual time spent if every retry is used.
    pub fn worst_case_total_ns(&self) -> u64 {
        (0..self.max_attempts)
            .filter_map(|a| self.delay_ns(a))
            .fold(0u64, u64::saturating_add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_cap_then_exhausts() {
        let b = Backoff::new(1_000, 5_000, 5);
        let delays: Vec<Option<u64>> = (0..6).map(|a| b.delay_ns(a)).collect();
        assert_eq!(
            delays,
            vec![
                Some(1_000),
                Some(2_000),
                Some(4_000),
                Some(5_000),
                Some(5_000),
                None
            ]
        );
        assert_eq!(b.worst_case_total_ns(), 17_000);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let b = Backoff::new(u64::MAX / 2, u64::MAX, 10);
        assert_eq!(b.delay_ns(9), Some(u64::MAX));
    }

    #[test]
    fn zero_attempts_never_retries() {
        let b = Backoff::new(1_000, 1_000, 0);
        assert_eq!(b.delay_ns(0), None);
        assert_eq!(b.worst_case_total_ns(), 0);
    }
}
