//! The per-Magistrate heartbeat failure detector.
//!
//! A Magistrate registers each Host Object in its jurisdiction, records
//! arriving heartbeats, and periodically *sweeps*: every monitored host
//! is re-classified by the [`SuspicionPolicy`], and each health change
//! is returned as a [`Transition`] for the recovery driver to act on.
//!
//! State lives in a `BTreeMap` keyed by LOID so sweeps visit hosts in a
//! deterministic order — transitions (and therefore every downstream
//! recovery event) replay bit-identically for a given seed.

use crate::policy::{Health, SuspicionPolicy};
use legion_core::loid::Loid;
use legion_core::time::SimTime;
use std::collections::BTreeMap;

/// One health change observed during a sweep (or a resurrection
/// observed when a heartbeat arrives from a non-Alive host).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The monitored Host Object.
    pub host: Loid,
    /// Health before.
    pub from: Health,
    /// Health after.
    pub to: Health,
    /// Silence at classification time (ns since last heartbeat); zero
    /// for resurrections.
    pub silence_ns: u64,
}

#[derive(Debug, Clone, Copy)]
struct Monitored {
    last_seen: SimTime,
    health: Health,
}

/// Heartbeat bookkeeping for a set of monitored hosts.
pub struct FailureDetector {
    policy: Box<dyn SuspicionPolicy>,
    interval_ns: u64,
    hosts: BTreeMap<Loid, Monitored>,
}

impl FailureDetector {
    /// A detector expecting heartbeats every `interval_ns`, classified
    /// by `policy`.
    pub fn new(policy: Box<dyn SuspicionPolicy>, interval_ns: u64) -> Self {
        FailureDetector {
            policy,
            interval_ns,
            hosts: BTreeMap::new(),
        }
    }

    /// Start monitoring `host`, treating `now` as its first heartbeat.
    pub fn register(&mut self, host: Loid, now: SimTime) {
        self.hosts.entry(host).or_insert(Monitored {
            last_seen: now,
            health: Health::Alive,
        });
    }

    /// Stop monitoring `host` (e.g. after its objects were recovered).
    pub fn deregister(&mut self, host: &Loid) {
        self.hosts.remove(host);
    }

    /// Record a heartbeat. Returns a [`Transition`] if the host was not
    /// Alive (a resurrection — the false-positive path a conservative
    /// policy is meant to make rare). Heartbeats from unregistered
    /// hosts auto-register them.
    pub fn heartbeat(&mut self, host: Loid, now: SimTime) -> Option<Transition> {
        let m = self.hosts.entry(host).or_insert(Monitored {
            last_seen: now,
            health: Health::Alive,
        });
        m.last_seen = now;
        let from = m.health;
        m.health = Health::Alive;
        (from != Health::Alive).then_some(Transition {
            host,
            from,
            to: Health::Alive,
            silence_ns: 0,
        })
    }

    /// Re-classify every monitored host at `now`; return the health
    /// changes in LOID order.
    pub fn sweep(&mut self, now: SimTime) -> Vec<Transition> {
        let mut out = Vec::new();
        for (host, m) in self.hosts.iter_mut() {
            let silence_ns = now.0.saturating_sub(m.last_seen.0);
            let to = self.policy.classify(silence_ns, self.interval_ns);
            if to != m.health {
                out.push(Transition {
                    host: *host,
                    from: m.health,
                    to,
                    silence_ns,
                });
                m.health = to;
            }
        }
        out
    }

    /// Current health of `host`, if monitored.
    pub fn health(&self, host: &Loid) -> Option<Health> {
        self.hosts.get(host).map(|m| m.health)
    }

    /// Number of monitored hosts.
    pub fn monitored(&self) -> usize {
        self.hosts.len()
    }

    /// The heartbeat period this detector expects.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Name of the active suspicion policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }
}

impl std::fmt::Debug for FailureDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailureDetector")
            .field("policy", &self.policy.name())
            .field("interval_ns", &self.interval_ns)
            .field("monitored", &self.hosts.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MissThreshold;

    fn detector() -> FailureDetector {
        FailureDetector::new(Box::new(MissThreshold::default()), 1_000)
    }

    #[test]
    fn silent_host_degrades_then_dies() {
        let mut d = detector();
        let h = Loid::instance(3, 1);
        d.register(h, SimTime(0));
        assert!(d.sweep(SimTime(1_000)).is_empty());
        let t = d.sweep(SimTime(2_000));
        assert_eq!(t.len(), 1);
        assert_eq!((t[0].from, t[0].to), (Health::Alive, Health::Suspect));
        let t = d.sweep(SimTime(4_500));
        assert_eq!((t[0].from, t[0].to), (Health::Suspect, Health::Dead));
        assert_eq!(t[0].silence_ns, 4_500);
        // Already Dead: no further transitions.
        assert!(d.sweep(SimTime(9_000)).is_empty());
        assert_eq!(d.health(&h), Some(Health::Dead));
    }

    #[test]
    fn heartbeats_keep_host_alive_and_resurrect() {
        let mut d = detector();
        let h = Loid::instance(3, 2);
        d.register(h, SimTime(0));
        assert!(d.heartbeat(h, SimTime(1_000)).is_none());
        assert!(d.sweep(SimTime(2_500)).is_empty(), "1.5 intervals silent");
        // Let it die, then hear from it again.
        assert_eq!(d.sweep(SimTime(6_000))[0].to, Health::Dead);
        let res = d.heartbeat(h, SimTime(6_100)).expect("resurrection");
        assert_eq!((res.from, res.to), (Health::Dead, Health::Alive));
        assert_eq!(d.health(&h), Some(Health::Alive));
    }

    #[test]
    fn sweep_reports_transitions_in_loid_order() {
        let mut d = detector();
        let hs: Vec<Loid> = (1..=5).rev().map(|i| Loid::instance(3, i)).collect();
        for h in &hs {
            d.register(*h, SimTime(0));
        }
        let t = d.sweep(SimTime(10_000));
        assert_eq!(t.len(), 5);
        let mut sorted = t.clone();
        sorted.sort_by_key(|x| x.host);
        assert_eq!(t, sorted, "deterministic LOID order");
    }

    #[test]
    fn unknown_heartbeat_auto_registers() {
        let mut d = detector();
        let h = Loid::instance(3, 9);
        assert!(d.heartbeat(h, SimTime(5)).is_none());
        assert_eq!(d.monitored(), 1);
        d.deregister(&h);
        assert_eq!(d.monitored(), 0);
        assert_eq!(d.health(&h), None);
    }
}
