//! # legion-ha — heartbeat failure detection and object recovery
//!
//! The paper's core objects "create, locate, manage, and remove" every
//! other object, and the OPR/vault design (§3.1, Fig. 11) together with
//! binding invalidation (§4.1.4) exist precisely so objects survive the
//! loss of the host they happen to be active on. This crate supplies the
//! mechanism the substrate was missing: *noticing* that a host has died
//! and *healing* the objects it was running.
//!
//! Pieces, bottom-up:
//!
//! - [`policy`] — pluggable [`policy::SuspicionPolicy`] (mirroring
//!   `SchedulingPolicy` in `legion-runtime`) classifying heartbeat
//!   silence as Alive / Suspect / Dead.
//! - [`detector`] — [`detector::FailureDetector`], the bookkeeping a
//!   Magistrate keeps per monitored Host Object: last heartbeat seen,
//!   current health, and the transitions each sweep produces.
//! - [`backoff`] — [`backoff::Backoff`], a deterministic capped
//!   exponential retry schedule for client stubs whose in-flight
//!   requests die with a crashed host.
//! - [`recovery`] — [`recovery::RecoveryTracker`], timing and outcome
//!   accounting for the recovery driver (time-to-detect and
//!   time-to-recover histograms, recovered/lost/false-positive counts).
//! - [`protocol`] — the heartbeat wire method shared by Host Objects
//!   and Magistrates.
//!
//! Everything here is deterministic: detectors iterate `BTreeMap`s,
//! backoff has no jitter, and no wall-clock time is consulted — the same
//! seed replays bit-identically (the property E15 enforces).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backoff;
pub mod detector;
pub mod policy;
pub mod protocol;
pub mod recovery;

pub use backoff::Backoff;
pub use detector::{FailureDetector, Transition};
pub use policy::{FixedTimeout, Health, MissThreshold, SuspicionPolicy};
pub use recovery::RecoveryTracker;
