//! Pluggable suspicion policies.
//!
//! A [`SuspicionPolicy`] turns "how long has this host been silent"
//! into a health verdict. It is deliberately shaped like
//! `SchedulingPolicy` in `legion-runtime`: a small trait object the
//! Magistrate owns, swappable per experiment, and consulted only at
//! sweep time so the choice of policy cannot perturb event ordering.

/// Classified health of a monitored host.
///
/// Ordered: `Alive < Suspect < Dead`, so "worse" compares greater.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// Heartbeats arriving on schedule.
    Alive,
    /// Silent long enough to be suspicious, not long enough to act on.
    Suspect,
    /// Confirmed dead: the recovery driver may act.
    Dead,
}

impl Health {
    /// Short lower-case label (for counters and span notes).
    pub fn label(self) -> &'static str {
        match self {
            Health::Alive => "alive",
            Health::Suspect => "suspect",
            Health::Dead => "dead",
        }
    }
}

/// A pluggable rule classifying heartbeat silence.
///
/// `silence_ns` is virtual time since the last heartbeat (or since
/// registration); `interval_ns` is the heartbeat period the hosts were
/// configured with. Implementations must be pure functions of their
/// arguments — determinism of the whole recovery flow depends on it.
pub trait SuspicionPolicy: Send {
    /// Classify a host that has been silent for `silence_ns`.
    fn classify(&self, silence_ns: u64, interval_ns: u64) -> Health;
    /// Stable name for tables and traces.
    fn name(&self) -> &'static str;
}

/// Declare Suspect/Dead after a number of *missed heartbeats* — the
/// classic φ-less accrual approximation: thresholds scale with the
/// heartbeat period, so retuning the period retunes the detector.
#[derive(Debug, Clone, Copy)]
pub struct MissThreshold {
    /// Consecutive missed intervals before Suspect.
    pub suspect_after: u32,
    /// Consecutive missed intervals before Dead. Must be ≥ `suspect_after`.
    pub dead_after: u32,
}

impl Default for MissThreshold {
    fn default() -> Self {
        MissThreshold {
            suspect_after: 2,
            dead_after: 4,
        }
    }
}

impl SuspicionPolicy for MissThreshold {
    fn classify(&self, silence_ns: u64, interval_ns: u64) -> Health {
        if interval_ns == 0 {
            return Health::Alive;
        }
        let misses = silence_ns / interval_ns;
        if misses >= u64::from(self.dead_after) {
            Health::Dead
        } else if misses >= u64::from(self.suspect_after) {
            Health::Suspect
        } else {
            Health::Alive
        }
    }

    fn name(&self) -> &'static str {
        "miss-threshold"
    }
}

/// Declare Suspect/Dead after fixed absolute silences, ignoring the
/// heartbeat period. Useful when the deployment wants a hard SLA on
/// detection latency regardless of heartbeat tuning.
#[derive(Debug, Clone, Copy)]
pub struct FixedTimeout {
    /// Silence before Suspect (virtual ns).
    pub suspect_ns: u64,
    /// Silence before Dead (virtual ns). Must be ≥ `suspect_ns`.
    pub dead_ns: u64,
}

impl SuspicionPolicy for FixedTimeout {
    fn classify(&self, silence_ns: u64, _interval_ns: u64) -> Health {
        if silence_ns >= self.dead_ns {
            Health::Dead
        } else if silence_ns >= self.suspect_ns {
            Health::Suspect
        } else {
            Health::Alive
        }
    }

    fn name(&self) -> &'static str {
        "fixed-timeout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_orders_by_severity() {
        assert!(Health::Alive < Health::Suspect);
        assert!(Health::Suspect < Health::Dead);
    }

    #[test]
    fn miss_threshold_classifies_by_intervals() {
        let p = MissThreshold::default(); // suspect 2, dead 4
        let iv = 1_000_000;
        assert_eq!(p.classify(0, iv), Health::Alive);
        assert_eq!(p.classify(iv * 2 - 1, iv), Health::Alive);
        assert_eq!(p.classify(iv * 2, iv), Health::Suspect);
        assert_eq!(p.classify(iv * 4 - 1, iv), Health::Suspect);
        assert_eq!(p.classify(iv * 4, iv), Health::Dead);
    }

    #[test]
    fn miss_threshold_zero_interval_never_suspects() {
        let p = MissThreshold::default();
        assert_eq!(p.classify(u64::MAX, 0), Health::Alive);
    }

    #[test]
    fn fixed_timeout_ignores_interval() {
        let p = FixedTimeout {
            suspect_ns: 10,
            dead_ns: 20,
        };
        assert_eq!(p.classify(9, 1), Health::Alive);
        assert_eq!(p.classify(10, 1_000_000), Health::Suspect);
        assert_eq!(p.classify(20, u64::MAX), Health::Dead);
    }
}
