//! The heartbeat wire protocol between Host Objects and Magistrates.

use legion_core::loid::Loid;
use legion_core::symbol::{self, Sym};
use legion_core::value::LegionValue;
use legion_net::message::Message;

/// Host → Magistrate liveness report. Args: `[Loid(host), Uint(running)]`
/// where `running` is the host's current active-object count (a cheap
/// piggybacked load signal). Fire-and-forget: no reply is sent, so a
/// dead Magistrate cannot wedge its hosts.
pub const HEARTBEAT: Sym = symbol::HEARTBEAT;

/// Build the `Heartbeat` argument vector.
pub fn heartbeat_args(host: Loid, running: usize) -> Vec<LegionValue> {
    vec![LegionValue::Loid(host), LegionValue::Uint(running as u64)]
}

/// Parse a `Heartbeat` call's arguments.
pub fn parse_heartbeat(msg: &Message) -> Option<(Loid, u64)> {
    match msg.args() {
        [LegionValue::Loid(host), LegionValue::Uint(running)] => Some((*host, *running)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_core::env::InvocationEnv;
    use legion_net::message::CallId;

    #[test]
    fn heartbeat_args_round_trip() {
        let host = Loid::instance(3, 4);
        let msg = Message::call(
            CallId(1),
            host,
            HEARTBEAT,
            heartbeat_args(host, 7),
            InvocationEnv::solo(host),
        );
        assert_eq!(parse_heartbeat(&msg), Some((host, 7)));
    }
}
