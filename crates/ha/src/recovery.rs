//! Recovery timing and outcome accounting.
//!
//! The recovery driver (the Magistrate, in `legion-runtime`) feeds this
//! tracker as it works: a host is confirmed dead, each of its objects
//! starts re-activation, each finishes (or cannot be recovered). The
//! tracker turns that into the two latencies E15 reports — time-to-detect
//! (heartbeat silence at the Dead verdict) and time-to-recover (Dead
//! verdict to the object answering from its new host) — plus the
//! recovered / lost / false-positive counts.

use legion_core::loid::Loid;
use legion_core::time::SimTime;
use legion_net::metrics::Histogram;
use std::collections::BTreeMap;

/// Accounting for one Magistrate's recovery activity.
#[derive(Debug, Default)]
pub struct RecoveryTracker {
    /// Heartbeat silence when each crash was confirmed (ns).
    pub detect: Histogram,
    /// Dead-verdict → re-activation-complete latency per object (ns).
    pub recover: Histogram,
    /// Objects whose re-activation is still in flight (object → start).
    in_flight: BTreeMap<Loid, SimTime>,
    /// Hosts confirmed dead.
    pub hosts_lost: u64,
    /// Objects successfully re-activated elsewhere.
    pub recovered: u64,
    /// Objects that could not be recovered (no OPR, or no live host).
    pub lost: u64,
    /// Dead verdicts later contradicted by a heartbeat.
    pub false_positives: u64,
}

impl RecoveryTracker {
    /// Fresh, empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// A host was confirmed dead after `silence_ns` of heartbeat silence.
    pub fn host_dead(&mut self, silence_ns: u64) {
        self.hosts_lost += 1;
        self.detect.record(silence_ns);
    }

    /// Re-activation of `object` (lost with its host) began at `now`.
    pub fn begin_object(&mut self, object: Loid, now: SimTime) {
        self.in_flight.insert(object, now);
    }

    /// Re-activation of `object` completed at `now`.
    pub fn object_recovered(&mut self, object: &Loid, now: SimTime) {
        if let Some(start) = self.in_flight.remove(object) {
            self.recovered += 1;
            self.recover.record(now.0.saturating_sub(start.0));
        }
    }

    /// `object` could not be recovered.
    pub fn object_lost(&mut self, object: &Loid) {
        if self.in_flight.remove(object).is_some() {
            self.lost += 1;
        }
    }

    /// A supposedly dead host produced a heartbeat.
    pub fn false_positive(&mut self) {
        self.false_positives += 1;
    }

    /// Is a recovery currently in flight for `object`?
    pub fn recovering(&self, object: &Loid) -> bool {
        self.in_flight.contains_key(object)
    }

    /// Number of recoveries still in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_detection_and_recovery_latencies() {
        let mut t = RecoveryTracker::new();
        t.host_dead(8_000);
        let a = Loid::instance(7, 1);
        let b = Loid::instance(7, 2);
        t.begin_object(a, SimTime(100));
        t.begin_object(b, SimTime(100));
        assert!(t.recovering(&a));
        t.object_recovered(&a, SimTime(600));
        t.object_lost(&b);
        assert_eq!((t.hosts_lost, t.recovered, t.lost), (1, 1, 1));
        assert_eq!(t.detect.max(), 8_000);
        assert_eq!(t.recover.max(), 500);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn completion_without_begin_is_ignored() {
        let mut t = RecoveryTracker::new();
        let a = Loid::instance(7, 3);
        t.object_recovered(&a, SimTime(50));
        t.object_lost(&a);
        assert_eq!((t.recovered, t.lost), (0, 0));
    }
}
