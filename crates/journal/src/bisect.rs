//! Divergence bisection: binary-search two journals to the first
//! differing record.
//!
//! Both journals are indexed once (O(n) — this also builds cumulative
//! prefix hashes), then the first differing prefix length is found by
//! **binary search** over the hash arrays with a direct byte comparison
//! at the boundary, and the divergence is reported with a rendered
//! flight-recorder-style context window from each journal.

use crate::journal::{index, render_context, RecordSlice};
use crate::record::{decode_body, JournalError};
use legion_persist::checksum;

/// Radius of the rendered context windows.
const CONTEXT_RADIUS: usize = 8;

/// The bisector's verdict on two journals.
#[derive(Debug, Clone)]
pub struct BisectReport {
    /// Records in journal A.
    pub total_a: u64,
    /// Records in journal B.
    pub total_b: u64,
    /// Seq of the first differing record; `None` when the journals are
    /// identical.
    pub diverged_seq: Option<u64>,
    /// Binary-search probes taken (≈ log₂ of the record count).
    pub probes: u32,
    /// Rendered context around the divergence in journal A.
    pub context_a: String,
    /// Rendered context around the divergence in journal B.
    pub context_b: String,
}

impl std::fmt::Display for BisectReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.diverged_seq {
            None => writeln!(
                f,
                "journals identical ({} records, {} probes)",
                self.total_a, self.probes
            ),
            Some(seq) => {
                writeln!(
                    f,
                    "journals diverge at seq {seq} ({} vs {} records, {} probes)",
                    self.total_a, self.total_b, self.probes
                )?;
                writeln!(f, "journal A context:")?;
                for line in self.context_a.lines() {
                    writeln!(f, "  {line}")?;
                }
                writeln!(f, "journal B context:")?;
                for line in self.context_b.lines() {
                    writeln!(f, "  {line}")?;
                }
                Ok(())
            }
        }
    }
}

/// Cumulative CRC-32 chain over record bodies: `cum[i]` covers records
/// `0..i`, so prefix equality is one comparison.
fn prefix_hashes(data: &[u8], slices: &[RecordSlice]) -> Vec<u32> {
    let mut cum = Vec::with_capacity(slices.len() + 1);
    let mut state = 0u32;
    cum.push(state);
    for s in slices {
        state = checksum::update(state, s.body(data));
        cum.push(state);
    }
    cum
}

fn bodies_equal(a: &[u8], sa: &RecordSlice, b: &[u8], sb: &RecordSlice) -> bool {
    sa.body(a) == sb.body(b)
}

/// Find the first record where journals `a` and `b` differ.
pub fn bisect(a: &[u8], b: &[u8]) -> Result<BisectReport, JournalError> {
    let (_, slices_a) = index(a)?;
    let (_, slices_b) = index(b)?;
    let common = slices_a.len().min(slices_b.len());
    let cum_a = prefix_hashes(a, &slices_a);
    let cum_b = prefix_hashes(b, &slices_b);
    let mut probes = 0u32;

    // Binary search the largest m ≤ common with equal prefix hashes.
    let (mut lo, mut hi) = (0usize, common);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        probes += 1;
        if cum_a[mid] == cum_b[mid] {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    // `lo` records agree by hash. Walk forward with direct byte
    // comparison to absorb (vanishingly unlikely) CRC collisions.
    let mut first_diff = lo;
    while first_diff < common && bodies_equal(a, &slices_a[first_diff], b, &slices_b[first_diff]) {
        first_diff += 1;
    }

    let diverged = if first_diff < common {
        Some(first_diff)
    } else if slices_a.len() != slices_b.len() {
        // Equal common prefix, one journal simply has more records.
        Some(common)
    } else {
        None
    };

    let (context_a, context_b) = match diverged {
        None => (String::new(), String::new()),
        Some(idx) => (
            context_or_end(a, &slices_a, idx),
            context_or_end(b, &slices_b, idx),
        ),
    };
    Ok(BisectReport {
        total_a: slices_a.len() as u64,
        total_b: slices_b.len() as u64,
        diverged_seq: diverged.map(|i| i as u64),
        probes,
        context_a,
        context_b,
    })
}

fn context_or_end(data: &[u8], slices: &[RecordSlice], idx: usize) -> String {
    if slices.is_empty() {
        return "<empty journal>\n".to_string();
    }
    if idx >= slices.len() {
        let mut out = render_context(data, slices, slices.len() - 1, CONTEXT_RADIUS);
        out.push_str(">> <end of journal>\n");
        return out;
    }
    render_context(data, slices, idx, CONTEXT_RADIUS)
}

/// The seq recorded inside journal `data`'s record at index `idx`
/// (convenience for reporting).
pub fn seq_at(data: &[u8], idx: usize) -> Result<Option<u64>, JournalError> {
    let (_, slices) = index(data)?;
    match slices.get(idx) {
        None => Ok(None),
        Some(s) => Ok(Some(decode_body(s.body(data), s.offset)?.seq)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalWriter;
    use crate::record::RecordKind;
    use crate::sink::MemSink;

    fn journal_of(n: u64, mutate_at: Option<u64>) -> Vec<u8> {
        let sink = MemSink::new();
        let mut w = JournalWriter::new(Box::new(sink.clone()), 0);
        for i in 0..n {
            let label = if Some(i) == mutate_at {
                "MUTANT"
            } else {
                "Ping"
            };
            w.append(i * 10, RecordKind::Deliver, i % 5, i, 0, label);
        }
        w.finish().unwrap();
        sink.contents()
    }

    #[test]
    fn identical_journals_report_no_divergence() {
        let a = journal_of(100, None);
        let r = bisect(&a, &a.clone()).unwrap();
        assert_eq!(r.diverged_seq, None);
        assert_eq!(r.total_a, 100);
    }

    #[test]
    fn planted_divergence_found_exactly() {
        for plant in [0u64, 1, 17, 63, 99] {
            let a = journal_of(100, None);
            let b = journal_of(100, Some(plant));
            let r = bisect(&a, &b).unwrap();
            assert_eq!(r.diverged_seq, Some(plant), "plant at {plant}");
            assert!(r.probes <= 8, "log₂(100) ≈ 7 probes, used {}", r.probes);
            assert!(r.context_a.contains(">>"));
            assert!(r.context_b.contains("MUTANT"));
        }
    }

    #[test]
    fn length_mismatch_diverges_at_common_end() {
        let a = journal_of(50, None);
        let b = journal_of(40, None);
        let r = bisect(&a, &b).unwrap();
        assert_eq!(r.diverged_seq, Some(40));
        assert!(r.context_b.contains("<end of journal>"));
        assert!(r.to_string().contains("diverge at seq 40"));
    }

    #[test]
    fn corrupt_input_is_typed() {
        let a = journal_of(5, None);
        assert!(matches!(
            bisect(&a, b"garbage"),
            Err(JournalError::BadMagic)
        ));
        let mut cut = a.clone();
        cut.truncate(a.len() - 2);
        assert!(matches!(
            bisect(&a, &cut),
            Err(JournalError::TruncatedRecord { .. })
        ));
    }

    #[test]
    fn seq_at_reads_through() {
        let a = journal_of(5, None);
        assert_eq!(seq_at(&a, 3).unwrap(), Some(3));
        assert_eq!(seq_at(&a, 9).unwrap(), None);
    }
}
