//! Writing and reading whole journals: header framing, the append-only
//! [`JournalWriter`], and the checked reader/indexer.

use crate::record::{
    decode_body, encode_body, JournalError, JournalRecord, RecordKind, MAGIC, MAX_BODY, VERSION,
};
use crate::sink::JournalSink;
use legion_persist::checksum::crc32;

/// The decoded journal header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// Format version.
    pub version: u8,
    /// Snapshot cadence the recording run used (events between snapshot
    /// marks; 0 = no snapshots). Stored in the journal so a verifying
    /// run snapshots at exactly the same points.
    pub snap_every: u64,
    /// Byte offset of the first record frame.
    pub records_at: usize,
}

/// Read and validate the header.
pub fn read_header(data: &[u8]) -> Result<JournalHeader, JournalError> {
    if data.len() < 4 {
        return Err(if data.is_empty() || MAGIC.starts_with(data) {
            JournalError::TruncatedHeader
        } else {
            JournalError::BadMagic
        });
    }
    if data[..4] != MAGIC {
        return Err(JournalError::BadMagic);
    }
    let version = *data.get(4).ok_or(JournalError::TruncatedHeader)?;
    if version != VERSION {
        return Err(JournalError::BadVersion(version));
    }
    // Inline varint: the header predates any Reader framing.
    let mut snap_every: u64 = 0;
    for (i, shift) in (0..64).step_by(7).enumerate() {
        let byte = *data.get(5 + i).ok_or(JournalError::TruncatedHeader)?;
        snap_every |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(JournalHeader {
                version,
                snap_every,
                records_at: 5 + i + 1,
            });
        }
    }
    Err(JournalError::TruncatedHeader)
}

/// The location of one framed record inside a journal byte buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordSlice {
    /// Byte offset of the frame (length prefix).
    pub offset: usize,
    /// Byte offset of the body.
    pub body_start: usize,
    /// Body length in bytes.
    pub body_len: usize,
    /// The stored (and verified) CRC-32 of the body.
    pub crc: u32,
}

impl RecordSlice {
    /// The body bytes within `data`.
    pub fn body<'a>(&self, data: &'a [u8]) -> &'a [u8] {
        &data[self.body_start..self.body_start + self.body_len]
    }
}

/// Walk the whole journal, verifying framing and checksums, returning
/// the header and the location of every record. This is the integrity
/// pass — every error a corrupt journal can produce is typed.
pub fn index(data: &[u8]) -> Result<(JournalHeader, Vec<RecordSlice>), JournalError> {
    let header = read_header(data)?;
    let mut slices = Vec::new();
    let mut pos = header.records_at;
    while pos < data.len() {
        let offset = pos;
        if data.len() - pos < 8 {
            return Err(JournalError::TruncatedRecord { offset });
        }
        let body_len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let stored = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        if body_len > MAX_BODY {
            return Err(JournalError::RecordTooLarge {
                offset,
                len: body_len as u64,
            });
        }
        pos += 8;
        if data.len() - pos < body_len {
            return Err(JournalError::TruncatedRecord { offset });
        }
        let body = &data[pos..pos + body_len];
        let computed = crc32(body);
        if computed != stored {
            return Err(JournalError::BadChecksum {
                offset,
                stored,
                computed,
            });
        }
        slices.push(RecordSlice {
            offset,
            body_start: pos,
            body_len,
            crc: stored,
        });
        pos += body_len;
    }
    Ok((header, slices))
}

/// Index and fully decode every record.
pub fn read_all(data: &[u8]) -> Result<(JournalHeader, Vec<JournalRecord>), JournalError> {
    let (header, slices) = index(data)?;
    let mut records = Vec::with_capacity(slices.len());
    for s in &slices {
        records.push(decode_body(s.body(data), s.offset)?);
    }
    Ok((header, records))
}

/// Render the records around `center` (± `radius`), flight-recorder
/// style, marking the center line. Used for divergence and bisect
/// post-mortems.
pub fn render_context(data: &[u8], slices: &[RecordSlice], center: usize, radius: usize) -> String {
    let lo = center.saturating_sub(radius);
    let hi = (center + radius + 1).min(slices.len());
    let mut out = String::new();
    for (i, s) in slices.iter().enumerate().take(hi).skip(lo) {
        let marker = if i == center { ">>" } else { "  " };
        match decode_body(s.body(data), s.offset) {
            Ok(rec) => out.push_str(&format!("{marker} {rec}\n")),
            Err(e) => out.push_str(&format!("{marker} <undecodable record: {e}>\n")),
        }
    }
    out
}

/// The append-only journal writer.
///
/// `append` is infallible on the hot path: the first sink error is
/// latched and surfaced by [`JournalWriter::error`] / `finish`-time
/// checks rather than plumbed through the kernel. Encoding reuses two
/// internal buffers, so steady-state appends do not allocate.
pub struct JournalWriter {
    sink: Box<dyn JournalSink>,
    next_seq: u64,
    body: Vec<u8>,
    frame: Vec<u8>,
    bytes: u64,
    error: Option<JournalError>,
}

impl JournalWriter {
    /// Start a journal on `sink`, writing the header.
    pub fn new(mut sink: Box<dyn JournalSink>, snap_every: u64) -> Self {
        let mut header = Vec::with_capacity(16);
        header.extend_from_slice(&MAGIC);
        header.push(VERSION);
        crate::record::push_varint(&mut header, snap_every);
        let error = sink
            .write(&header)
            .err()
            .map(|e| JournalError::Io(e.to_string()));
        JournalWriter {
            sink,
            next_seq: 0,
            body: Vec::with_capacity(64),
            frame: Vec::with_capacity(80),
            bytes: header.len() as u64,
            error,
        }
    }

    /// Sequence number the next record will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Total bytes written (header + frames).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The first sink error, if any occurred.
    pub fn error(&self) -> Option<&JournalError> {
        self.error.as_ref()
    }

    /// Append one record; returns its sequence number.
    #[allow(clippy::too_many_arguments)]
    pub fn append(
        &mut self,
        at: u64,
        kind: RecordKind,
        endpoint: u64,
        a: u64,
        b: u64,
        label: &str,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        encode_body(&mut self.body, seq, at, kind, endpoint, a, b, label);
        let crc = crc32(&self.body);
        self.frame.clear();
        self.frame
            .extend_from_slice(&(self.body.len() as u32).to_le_bytes());
        self.frame.extend_from_slice(&crc.to_le_bytes());
        self.frame.extend_from_slice(&self.body);
        if self.error.is_none() {
            if let Err(e) = self.sink.write(&self.frame) {
                self.error = Some(JournalError::Io(e.to_string()));
            }
        }
        self.bytes += self.frame.len() as u64;
        seq
    }

    /// Flush the sink, surfacing any latched or flush-time error.
    pub fn finish(&mut self) -> Result<(), JournalError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.sink
            .flush()
            .map_err(|e| JournalError::Io(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemSink;

    fn sample_journal() -> (Vec<u8>, usize) {
        let sink = MemSink::new();
        let mut w = JournalWriter::new(Box::new(sink.clone()), 4);
        w.append(10, RecordKind::Attach, 1, 0, 0, "magistrate");
        w.append(20, RecordKind::Deliver, 1, 77, 0, "BindingLookup");
        w.append(30, RecordKind::TimerFire, 2, 5, 0, "heartbeat");
        w.finish().unwrap();
        (sink.contents(), 3)
    }

    #[test]
    fn write_read_roundtrip() {
        let (data, n) = sample_journal();
        let (header, records) = read_all(&data).unwrap();
        assert_eq!(header.version, VERSION);
        assert_eq!(header.snap_every, 4);
        assert_eq!(records.len(), n);
        assert_eq!(records[0].kind, RecordKind::Attach);
        assert_eq!(records[0].label, "magistrate");
        assert_eq!(records[1].a, 77);
        assert_eq!(records[2].at, 30);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "seqs are dense from 0");
        }
    }

    #[test]
    fn header_errors_are_typed() {
        assert_eq!(read_header(b"").unwrap_err(), JournalError::TruncatedHeader);
        assert_eq!(
            read_header(b"LJ").unwrap_err(),
            JournalError::TruncatedHeader
        );
        assert_eq!(read_header(b"NOPE!!").unwrap_err(), JournalError::BadMagic);
        assert_eq!(
            read_header(b"LJNL\x63\x00").unwrap_err(),
            JournalError::BadVersion(0x63)
        );
        assert_eq!(
            read_header(b"LJNL\x01").unwrap_err(),
            JournalError::TruncatedHeader
        );
    }

    #[test]
    fn truncation_is_typed_at_every_cut() {
        let (data, _) = sample_journal();
        let (header, _) = read_all(&data).unwrap();
        for cut in header.records_at..data.len() {
            if cut == data.len() {
                continue;
            }
            match read_all(&data[..cut]) {
                Ok((_, records)) => {
                    // A cut exactly on a frame boundary yields a shorter
                    // but valid journal.
                    assert!(records.len() < 3);
                }
                Err(
                    JournalError::TruncatedRecord { .. }
                    | JournalError::TruncatedHeader
                    | JournalError::RecordTooLarge { .. }
                    | JournalError::BadChecksum { .. },
                ) => {}
                Err(other) => panic!("cut {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flip_in_body_is_caught_by_checksum() {
        let (mut data, _) = sample_journal();
        let last = data.len() - 1; // inside the final record's label
        data[last] ^= 0x01;
        assert!(matches!(
            read_all(&data),
            Err(JournalError::BadChecksum { .. })
        ));
    }

    #[test]
    fn implausible_length_is_rejected() {
        let (mut data, _) = sample_journal();
        let (header, slices) = index(&data).unwrap();
        let _ = header;
        let off = slices[1].offset;
        data[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_all(&data),
            Err(JournalError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn sink_error_is_latched_not_panicked() {
        struct FailSink;
        impl JournalSink for FailSink {
            fn write(&mut self, _: &[u8]) -> std::io::Result<()> {
                Err(std::io::Error::other("disk gone"))
            }
        }
        let mut w = JournalWriter::new(Box::new(FailSink), 0);
        w.append(1, RecordKind::Note, 0, 0, 0, "x");
        assert!(w.error().is_some());
        assert!(matches!(w.finish(), Err(JournalError::Io(_))));
    }

    #[test]
    fn context_renders_window() {
        let (data, _) = sample_journal();
        let (_, slices) = index(&data).unwrap();
        let ctx = render_context(&data, &slices, 1, 1);
        assert_eq!(ctx.lines().count(), 3);
        assert!(ctx.contains(">> seq      1"));
        assert!(ctx.contains("BindingLookup"));
    }
}
