//! # legion-journal — the journaled kernel substrate
//!
//! The durability and reproducibility story for the Legion simulator,
//! following the AgentOS journal/snapshotter/CAS architecture: **the
//! journal is authoritative, snapshots are a cache** — the same journal
//! always produces the same state.
//!
//! * [`record`] — the wire format: one compact, length-prefixed,
//!   CRC-checksummed record per kernel ingress (delivery, timer fire,
//!   chaos verdict, HA verdict…), with a typed [`JournalError`] for
//!   every way a corrupt journal can fail to parse;
//! * [`sink`] — pluggable byte sinks ([`MemSink`], [`FileSink`]);
//! * [`journal`] — the append-only [`JournalWriter`] and the checked
//!   reader/indexer;
//! * [`snapshot`] — content-addressed state snapshots over the
//!   `legion-persist` CAS: unchanged sections dedup across snapshots,
//!   and a SHA-256 **state root** names the whole kernel state;
//! * [`replay`] — [`KernelJournal`], the kernel-facing facade
//!   (off / record / verify), and the time-travel [`Verifier`]:
//!   re-execute a run and check every event byte-for-byte against the
//!   reference journal, starting from the origin or from a snapshot
//!   (skipped prefix, root-checked waypoint, byte-verified tail);
//! * [`bisect`] — binary-search two journals to the first differing
//!   record and dump flight-recorder-style context around it.
//!
//! The simulator kernel (`legion-net`) embeds a [`KernelJournal`] and
//! calls [`KernelJournal::note`] at every ingress; `legion-exp` exposes
//! it as `--journal-out` / `--replay-from`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bisect;
pub mod journal;
pub mod record;
pub mod replay;
pub mod sink;
pub mod snapshot;

pub use bisect::{bisect, BisectReport};
pub use journal::{index, read_all, read_header, JournalHeader, JournalWriter, RecordSlice};
pub use record::{JournalError, JournalRecord, RecordKind};
pub use replay::{Divergence, JournalSummary, KernelJournal, ReplayStart, Verifier};
pub use sink::{FileSink, JournalSink, MemSink};
pub use snapshot::{sections_root, state_root, SnapshotMeta, SnapshotStore};
