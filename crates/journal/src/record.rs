//! The journal wire format: one compact, checksummed record per kernel
//! ingress event.
//!
//! A journal is `header · record*`:
//!
//! ```text
//! header : "LJNL" | version u8 | snap_every varint
//! record : body_len u32-le | crc32(body) u32-le | body
//! body   : seq varint | at varint | kind u8 | endpoint varint
//!        | a varint | b varint | label_len varint | label utf-8
//! ```
//!
//! The framing mirrors the OPR container (`legion-persist`): length
//! prefix for skipping, CRC-32 for integrity, varints for density.
//! Labels are stored as **strings**, never interner ids — symbol ids
//! depend on interning order, which is not stable across processes.

use legion_persist::codec::{CodecError, Reader};
use std::fmt;

/// Journal magic: "Legion JourNaL".
pub const MAGIC: [u8; 4] = *b"LJNL";

/// Current format version.
pub const VERSION: u8 = 1;

/// Sanity cap on a single record body.
pub const MAX_BODY: usize = 1 << 20;

/// Everything that can go wrong reading or writing a journal. Corrupt
/// input must surface one of these — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The input does not start with [`MAGIC`].
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// The input ends inside the header.
    TruncatedHeader,
    /// The input ends inside a record frame or body.
    TruncatedRecord {
        /// Byte offset of the frame that was cut short.
        offset: usize,
    },
    /// A record body does not match its stored CRC-32.
    BadChecksum {
        /// Byte offset of the frame.
        offset: usize,
        /// CRC stored in the frame.
        stored: u32,
        /// CRC computed over the body bytes.
        computed: u32,
    },
    /// A length prefix exceeds [`MAX_BODY`] — almost certainly a
    /// corrupted length field.
    RecordTooLarge {
        /// Byte offset of the frame.
        offset: usize,
        /// The (implausible) claimed body length.
        len: u64,
    },
    /// A record body failed to decode.
    BadBody {
        /// Byte offset of the frame.
        offset: usize,
        /// The codec-level failure.
        source: CodecError,
    },
    /// A record carries an unknown kind tag.
    BadKind {
        /// Byte offset of the frame.
        offset: usize,
        /// The unknown tag.
        tag: u8,
    },
    /// An I/O failure in a file-backed sink, rendered.
    Io(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::BadMagic => write!(f, "not a journal (bad magic)"),
            JournalError::BadVersion(v) => write!(f, "unsupported journal version {v}"),
            JournalError::TruncatedHeader => write!(f, "journal truncated inside header"),
            JournalError::TruncatedRecord { offset } => {
                write!(f, "journal truncated inside record at offset {offset}")
            }
            JournalError::BadChecksum {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "record at offset {offset} fails checksum (stored {stored:#010x}, computed {computed:#010x})"
            ),
            JournalError::RecordTooLarge { offset, len } => {
                write!(f, "record at offset {offset} claims implausible length {len}")
            }
            JournalError::BadBody { offset, source } => {
                write!(f, "record body at offset {offset} undecodable: {source}")
            }
            JournalError::BadKind { offset, tag } => {
                write!(f, "record at offset {offset} has unknown kind tag {tag}")
            }
            JournalError::Io(e) => write!(f, "journal sink I/O error: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// What a journal record describes: every kernel ingress or verdict that
/// can influence the deterministic run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// An endpoint attached to the kernel.
    Attach = 0,
    /// An endpoint detached (or was killed).
    Detach = 1,
    /// An endpoint's `on_start` ran.
    Start = 2,
    /// A message was delivered to an endpoint.
    Deliver = 3,
    /// A timer fired at an endpoint.
    TimerFire = 4,
    /// A message was injected from outside the simulation.
    Inject = 5,
    /// The fault plan dropped a message.
    Drop = 6,
    /// The fault plan duplicated a message.
    Duplicate = 7,
    /// The fault plan delayed a message.
    Delay = 8,
    /// The receiver's dedup window suppressed a duplicate.
    Dedup = 9,
    /// A message had no live destination.
    DeadLetter = 10,
    /// The topology refused a send.
    Refuse = 11,
    /// A tracked call timed out.
    Timeout = 12,
    /// The HA layer reached a verdict (suspect/dead/recovered/...).
    HaVerdict = 13,
    /// A snapshot mark: `a` = section count, `b` = snapshot ordinal,
    /// label = content-addressed state root (hex).
    Snapshot = 14,
    /// Anything else worth journaling.
    Note = 15,
    /// Admission control shed a call at an overloaded endpoint.
    /// (Appended after Note: journals written before this tag existed
    /// never contain it, and `from_tag` rejects it when replaying *into*
    /// an older build — append-compatible in the forward direction.)
    Shed = 16,
}

impl RecordKind {
    /// The wire tag.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Decode a wire tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        use RecordKind::*;
        Some(match tag {
            0 => Attach,
            1 => Detach,
            2 => Start,
            3 => Deliver,
            4 => TimerFire,
            5 => Inject,
            6 => Drop,
            7 => Duplicate,
            8 => Delay,
            9 => Dedup,
            10 => DeadLetter,
            11 => Refuse,
            12 => Timeout,
            13 => HaVerdict,
            14 => Snapshot,
            15 => Note,
            16 => Shed,
            _ => return None,
        })
    }

    /// Fixed-width label for rendering.
    pub fn label(self) -> &'static str {
        match self {
            RecordKind::Attach => "attach",
            RecordKind::Detach => "detach",
            RecordKind::Start => "start",
            RecordKind::Deliver => "deliver",
            RecordKind::TimerFire => "timer-fire",
            RecordKind::Inject => "inject",
            RecordKind::Drop => "drop",
            RecordKind::Duplicate => "duplicate",
            RecordKind::Delay => "delay",
            RecordKind::Dedup => "dedup",
            RecordKind::DeadLetter => "dead-letter",
            RecordKind::Refuse => "refuse",
            RecordKind::Timeout => "timeout",
            RecordKind::HaVerdict => "ha-verdict",
            RecordKind::Snapshot => "snapshot",
            RecordKind::Note => "note",
            RecordKind::Shed => "shed",
        }
    }
}

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Position in the journal (0-based, dense).
    pub seq: u64,
    /// Virtual time of the event, in nanoseconds.
    pub at: u64,
    /// What happened.
    pub kind: RecordKind,
    /// The kernel endpoint id involved (0 when none).
    pub endpoint: u64,
    /// Kind-specific detail (e.g. message id, timer token).
    pub a: u64,
    /// Second kind-specific detail.
    pub b: u64,
    /// Human-readable tag — method name, verdict name, or state root.
    pub label: String,
}

impl fmt::Display for JournalRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seq {:>6} [{:>12}ns] {:<11} ep{:<4} {} ({},{})",
            self.seq,
            self.at,
            self.kind.label(),
            self.endpoint,
            self.label,
            self.a,
            self.b
        )
    }
}

/// Append a varint to `buf` (no allocation beyond `buf` growth).
pub(crate) fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            break;
        }
        buf.push(byte | 0x80);
    }
}

/// Encode a record body into `buf` (cleared first). Allocation-free once
/// `buf` has warmed to its steady-state capacity.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_body(
    buf: &mut Vec<u8>,
    seq: u64,
    at: u64,
    kind: RecordKind,
    endpoint: u64,
    a: u64,
    b: u64,
    label: &str,
) {
    buf.clear();
    push_varint(buf, seq);
    push_varint(buf, at);
    buf.push(kind.tag());
    push_varint(buf, endpoint);
    push_varint(buf, a);
    push_varint(buf, b);
    push_varint(buf, label.len() as u64);
    buf.extend_from_slice(label.as_bytes());
}

/// Decode one record body (the bytes after the frame prefix). `offset`
/// is the frame's byte offset, for error reporting only.
pub fn decode_body(body: &[u8], offset: usize) -> Result<JournalRecord, JournalError> {
    let mut r = Reader::new(body);
    let bad = |source| JournalError::BadBody { offset, source };
    let seq = r.get_varint().map_err(bad)?;
    let at = r.get_varint().map_err(bad)?;
    let tag = r.get_u8().map_err(bad)?;
    let kind = RecordKind::from_tag(tag).ok_or(JournalError::BadKind { offset, tag })?;
    let endpoint = r.get_varint().map_err(bad)?;
    let a = r.get_varint().map_err(bad)?;
    let b = r.get_varint().map_err(bad)?;
    let label = r.get_str().map_err(bad)?;
    Ok(JournalRecord {
        seq,
        at,
        kind,
        endpoint,
        a,
        b,
        label,
    })
}

/// Decode just the leading `seq` varint of a body — the cheap alignment
/// check used while skipping an already-snapshotted prefix.
pub(crate) fn decode_seq(body: &[u8]) -> Option<u64> {
    let mut r = Reader::new(body);
    r.get_varint().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_roundtrip() {
        let mut buf = Vec::new();
        encode_body(
            &mut buf,
            42,
            1_000_000,
            RecordKind::Deliver,
            7,
            99,
            3,
            "BindingLookup",
        );
        let rec = decode_body(&buf, 0).unwrap();
        assert_eq!(rec.seq, 42);
        assert_eq!(rec.at, 1_000_000);
        assert_eq!(rec.kind, RecordKind::Deliver);
        assert_eq!(rec.endpoint, 7);
        assert_eq!(rec.a, 99);
        assert_eq!(rec.b, 3);
        assert_eq!(rec.label, "BindingLookup");
        assert_eq!(decode_seq(&buf), Some(42));
    }

    #[test]
    fn every_kind_tags_roundtrip() {
        for tag in 0..=16u8 {
            let kind = RecordKind::from_tag(tag).unwrap();
            assert_eq!(kind.tag(), tag);
            assert!(!kind.label().is_empty());
        }
        assert_eq!(RecordKind::from_tag(17), None);
    }

    #[test]
    fn bad_tag_is_typed() {
        let mut buf = Vec::new();
        encode_body(&mut buf, 0, 0, RecordKind::Note, 0, 0, 0, "x");
        // The kind tag sits after the two leading varints (both 1 byte).
        buf[2] = 0xEE;
        assert!(matches!(
            decode_body(&buf, 5),
            Err(JournalError::BadKind {
                offset: 5,
                tag: 0xEE
            })
        ));
    }

    #[test]
    fn truncated_body_is_typed() {
        let mut buf = Vec::new();
        encode_body(&mut buf, 1, 2, RecordKind::Start, 3, 4, 5, "hello");
        for cut in 0..buf.len() {
            match decode_body(&buf[..cut], 0) {
                Err(JournalError::BadBody { .. }) | Err(JournalError::BadKind { .. }) => {}
                other => panic!("cut {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn record_renders() {
        let rec = JournalRecord {
            seq: 9,
            at: 500,
            kind: RecordKind::Snapshot,
            endpoint: 0,
            a: 6,
            b: 1,
            label: "abcd".into(),
        };
        let s = rec.to_string();
        assert!(s.contains("snapshot"));
        assert!(s.contains("seq"));
    }
}
