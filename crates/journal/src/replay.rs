//! Time-travel replay: re-execute a run and verify it against a
//! reference journal, record by record.
//!
//! The kernel's state includes arbitrary user endpoints (`Box<dyn
//! Endpoint>`), which cannot be serialized and restored — so "replay"
//! here is **verified deterministic re-execution**: the same seed and
//! workload re-run from the origin, with every kernel ingress compared
//! byte-for-byte against the reference journal. Snapshots make this
//! cheap to *check* from the middle: starting [`ReplayStart::LatestSnapshot`]
//! (or [`ReplayStart::SnapshotAtOrBefore`]), the already-snapshotted
//! prefix is skipped with only a sequence-alignment check, the snapshot
//! mark's content-addressed state root is compared — proving the
//! re-executed state is byte-identical to the recorded one at that point
//! — and full byte verification covers only the tail.
//!
//! A mismatch produces a [`Divergence`] naming the exact journal seq,
//! what the journal expected, what the run produced, and a
//! flight-recorder-style context window around the divergent record.

use crate::journal::{index, render_context, JournalHeader, JournalWriter, RecordSlice};
use crate::record::{decode_body, decode_seq, encode_body, JournalError, RecordKind};
use crate::sink::JournalSink;
use crate::snapshot::{state_root, SnapshotStore};

/// Where verification starts within the reference journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayStart {
    /// Verify every record from the beginning.
    Origin,
    /// Skip to the last snapshot mark; verify its state root and the
    /// records after it.
    LatestSnapshot,
    /// Skip to the last snapshot at or before virtual time `t` ns.
    SnapshotAtOrBefore(u64),
}

/// The first difference between a run and its reference journal.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Journal seq of the first differing record.
    pub seq: u64,
    /// What the journal recorded, rendered.
    pub expected: String,
    /// What the re-execution produced, rendered.
    pub got: String,
    /// A rendered window of journal records around the divergence.
    pub context: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "replay diverged at journal seq {}", self.seq)?;
        writeln!(f, "  expected: {}", self.expected)?;
        writeln!(f, "  got:      {}", self.got)?;
        writeln!(f, "  journal context:")?;
        for line in self.context.lines() {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

/// What a finished journal session reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalSummary {
    /// Records written (record mode) or present in the reference
    /// (verify mode).
    pub records: u64,
    /// Snapshot marks among them.
    pub snapshots: u64,
    /// Journal size in bytes.
    pub bytes: u64,
    /// Records byte-verified against the reference (verify mode).
    pub verified: u64,
    /// Records skipped via the snapshot fast path (verify mode).
    pub skipped: u64,
}

/// Radius of the rendered context window around a divergence.
const CONTEXT_RADIUS: usize = 8;

/// Verifies a re-execution against a reference journal.
pub struct Verifier {
    data: Vec<u8>,
    header: JournalHeader,
    slices: Vec<RecordSlice>,
    /// Next reference record to consume.
    pos: usize,
    /// First record index that gets full byte verification.
    verify_from: usize,
    scratch: Vec<u8>,
    verified: u64,
    skipped: u64,
    snapshots_seen: u64,
    divergence: Option<Divergence>,
}

impl Verifier {
    /// Index `data` and resolve `start` to a record position.
    pub fn new(data: Vec<u8>, start: ReplayStart) -> Result<Self, JournalError> {
        let (header, slices) = index(&data)?;
        let snapshot_at = |cutoff: Option<u64>| -> Result<usize, JournalError> {
            for (i, s) in slices.iter().enumerate().rev() {
                let rec = decode_body(s.body(&data), s.offset)?;
                if rec.kind == RecordKind::Snapshot && cutoff.is_none_or(|t| rec.at <= t) {
                    return Ok(i);
                }
            }
            Ok(0)
        };
        let verify_from = match start {
            ReplayStart::Origin => 0,
            ReplayStart::LatestSnapshot => snapshot_at(None)?,
            ReplayStart::SnapshotAtOrBefore(t) => snapshot_at(Some(t))?,
        };
        Ok(Verifier {
            data,
            header,
            slices,
            pos: 0,
            verify_from,
            scratch: Vec::with_capacity(64),
            verified: 0,
            skipped: 0,
            snapshots_seen: 0,
            divergence: None,
        })
    }

    /// The snapshot cadence the recording run used.
    pub fn snap_every(&self) -> u64 {
        self.header.snap_every
    }

    /// The first divergence found, if any.
    pub fn divergence(&self) -> Option<&Divergence> {
        self.divergence.as_ref()
    }

    fn diverge(&mut self, idx: usize, expected: String, got: String) {
        if self.divergence.is_some() {
            return;
        }
        let center = idx.min(self.slices.len().saturating_sub(1));
        let context = render_context(&self.data, &self.slices, center, CONTEXT_RADIUS);
        self.divergence = Some(Divergence {
            seq: idx as u64,
            expected,
            got,
            context,
        });
    }

    fn rendered(&self, idx: usize) -> String {
        self.slices
            .get(idx)
            .and_then(|s| decode_body(s.body(&self.data), s.offset).ok())
            .map(|r| r.to_string())
            .unwrap_or_else(|| "<end of journal>".to_string())
    }

    /// Consume the next reference record, comparing it with the event the
    /// re-execution just produced. Returns the record's seq.
    #[allow(clippy::too_many_arguments)]
    pub fn check(
        &mut self,
        at: u64,
        kind: RecordKind,
        endpoint: u64,
        a: u64,
        b: u64,
        label: &str,
    ) -> u64 {
        let idx = self.pos;
        self.pos += 1;
        let seq = idx as u64;
        if self.divergence.is_some() {
            return seq;
        }
        let Some(slice) = self.slices.get(idx).copied() else {
            let got = render_event(seq, at, kind, endpoint, a, b, label);
            self.diverge(
                idx,
                "<end of journal: run produced more events than recorded>".to_string(),
                got,
            );
            return seq;
        };
        let body = slice.body(&self.data);
        if idx < self.verify_from {
            // Snapshot fast path: alignment check only.
            self.skipped += 1;
            if decode_seq(body) != Some(seq) {
                let got = render_event(seq, at, kind, endpoint, a, b, label);
                self.diverge(idx, self.rendered(idx), got);
            }
            return seq;
        }
        encode_body(&mut self.scratch, seq, at, kind, endpoint, a, b, label);
        if self.scratch != body {
            let got = render_event(seq, at, kind, endpoint, a, b, label);
            self.diverge(idx, self.rendered(idx), got);
            return seq;
        }
        self.verified += 1;
        seq
    }

    /// Consume a snapshot mark. Roots are compared even inside the
    /// skipped prefix — a root match proves the re-executed state is
    /// byte-identical to the recorded state at this point.
    pub fn check_snapshot(&mut self, at: u64, sections: u64, ordinal: u64, root_hex: &str) -> u64 {
        let idx = self.pos;
        self.snapshots_seen += 1;
        if self.divergence.is_some() {
            self.pos += 1;
            return idx as u64;
        }
        let in_skip = idx < self.verify_from;
        let seq = self.check(at, RecordKind::Snapshot, 0, sections, ordinal, root_hex);
        if in_skip && self.divergence.is_none() {
            // `check` only compared seq alignment; compare the root too.
            if let Some(slice) = self.slices.get(idx) {
                if let Ok(rec) = decode_body(slice.body(&self.data), slice.offset) {
                    if rec.kind != RecordKind::Snapshot || rec.label != root_hex {
                        let got = render_event(
                            seq,
                            at,
                            RecordKind::Snapshot,
                            0,
                            sections,
                            ordinal,
                            root_hex,
                        );
                        self.diverge(idx, self.rendered(idx), got);
                    }
                }
            }
        }
        seq
    }

    /// Quiescence check: the whole reference journal must have been
    /// consumed. Returns the summary (and sets a divergence if the run
    /// stopped short).
    pub fn finish(&mut self) -> JournalSummary {
        if self.pos < self.slices.len() && self.divergence.is_none() {
            let expected = self.rendered(self.pos);
            self.diverge(
                self.pos,
                expected,
                format!(
                    "<run quiesced after {} events; journal has {}>",
                    self.pos,
                    self.slices.len()
                ),
            );
        }
        JournalSummary {
            records: self.slices.len() as u64,
            snapshots: self.snapshots_seen,
            bytes: self.data.len() as u64,
            verified: self.verified,
            skipped: self.skipped,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn render_event(
    seq: u64,
    at: u64,
    kind: RecordKind,
    endpoint: u64,
    a: u64,
    b: u64,
    label: &str,
) -> String {
    format!(
        "seq {:>6} [{:>12}ns] {:<11} ep{:<4} {} ({},{})",
        seq,
        at,
        kind.label(),
        endpoint,
        label,
        a,
        b
    )
}

/// The kernel-facing journal facade: off, recording, or verifying.
///
/// `Off` keeps the hot path at one enum-tag check and zero allocations;
/// the kernel calls [`KernelJournal::note`] unconditionally.
#[derive(Default)]
pub enum KernelJournal {
    /// Journaling disabled (the default).
    #[default]
    Off,
    /// Recording: append every event, snapshot on cadence.
    Record {
        /// The append-only writer.
        writer: JournalWriter,
        /// Events between snapshot marks (0 = never).
        snap_every: u64,
        /// Content-addressed snapshots taken so far.
        snapshots: SnapshotStore,
        /// Event count at the last snapshot (dedups the due-check).
        last_snap_events: u64,
    },
    /// Verifying a re-execution against a reference journal.
    Verify {
        /// The reference-journal verifier.
        verifier: Verifier,
        /// Event count at the last snapshot mark.
        last_snap_events: u64,
    },
}

impl KernelJournal {
    /// Start recording to `sink`, snapshotting every `snap_every` events
    /// (0 = never).
    pub fn record(sink: Box<dyn JournalSink>, snap_every: u64) -> Self {
        KernelJournal::Record {
            writer: JournalWriter::new(sink, snap_every),
            snap_every,
            snapshots: SnapshotStore::new(),
            last_snap_events: 0,
        }
    }

    /// Start verifying against reference journal bytes. The snapshot
    /// cadence is read from the journal header, so the verifying run
    /// snapshots at exactly the recorded points.
    pub fn verify(data: Vec<u8>, start: ReplayStart) -> Result<Self, JournalError> {
        Ok(KernelJournal::Verify {
            verifier: Verifier::new(data, start)?,
            last_snap_events: 0,
        })
    }

    /// Is the journal on (recording or verifying)?
    #[inline]
    pub fn is_on(&self) -> bool {
        !matches!(self, KernelJournal::Off)
    }

    /// Journal one event; returns its seq (0 when off).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn note(
        &mut self,
        at: u64,
        kind: RecordKind,
        endpoint: u64,
        a: u64,
        b: u64,
        label: &str,
    ) -> u64 {
        match self {
            KernelJournal::Off => 0,
            KernelJournal::Record { writer, .. } => writer.append(at, kind, endpoint, a, b, label),
            KernelJournal::Verify { verifier, .. } => {
                verifier.check(at, kind, endpoint, a, b, label)
            }
        }
    }

    /// Should a snapshot be taken now, given the kernel has processed
    /// `events` events?
    #[inline]
    pub fn snapshot_due(&self, events: u64) -> bool {
        let (snap_every, last) = match self {
            KernelJournal::Off => return false,
            KernelJournal::Record {
                snap_every,
                last_snap_events,
                ..
            } => (*snap_every, *last_snap_events),
            KernelJournal::Verify {
                verifier,
                last_snap_events,
            } => (verifier.snap_every(), *last_snap_events),
        };
        snap_every != 0 && events > 0 && events.is_multiple_of(snap_every) && events != last
    }

    /// Take (record mode) or verify (verify mode) a snapshot of
    /// `sections` at virtual time `at`, after `events` kernel events.
    pub fn on_snapshot(&mut self, at: u64, events: u64, sections: &[(String, Vec<u8>)]) {
        match self {
            KernelJournal::Off => {}
            KernelJournal::Record {
                writer,
                snapshots,
                last_snap_events,
                ..
            } => {
                *last_snap_events = events;
                let seq = writer.next_seq();
                let meta = snapshots.take(at, seq, sections);
                let root_hex = meta.root.to_hex();
                let (count, ordinal) = (meta.sections.len() as u64, meta.ordinal);
                writer.append(at, RecordKind::Snapshot, 0, count, ordinal, &root_hex);
            }
            KernelJournal::Verify {
                verifier,
                last_snap_events,
            } => {
                *last_snap_events = events;
                let ordinal = verifier.snapshots_seen;
                let root_hex = state_root(sections).to_hex();
                verifier.check_snapshot(at, sections.len() as u64, ordinal, &root_hex);
            }
        }
    }

    /// The first divergence, if verifying and one was found.
    pub fn divergence(&self) -> Option<&Divergence> {
        match self {
            KernelJournal::Verify { verifier, .. } => verifier.divergence(),
            _ => None,
        }
    }

    /// Seq the next record will get (how many events journaled so far).
    pub fn next_seq(&self) -> u64 {
        match self {
            KernelJournal::Off => 0,
            KernelJournal::Record { writer, .. } => writer.next_seq(),
            KernelJournal::Verify { verifier, .. } => verifier.pos as u64,
        }
    }

    /// `(ordinal, journal seq)` of the most recent snapshot mark, for
    /// post-mortem dumps.
    pub fn last_snapshot(&self) -> Option<(u64, u64)> {
        match self {
            KernelJournal::Off => None,
            KernelJournal::Record { snapshots, .. } => {
                snapshots.latest().map(|s| (s.ordinal, s.seq))
            }
            KernelJournal::Verify { verifier, .. } => {
                if verifier.snapshots_seen == 0 {
                    None
                } else {
                    Some((verifier.snapshots_seen - 1, 0))
                }
            }
        }
    }

    /// Access the snapshots of a recording session.
    pub fn snapshots(&self) -> Option<&SnapshotStore> {
        match self {
            KernelJournal::Record { snapshots, .. } => Some(snapshots),
            _ => None,
        }
    }

    /// Finish the session: flush (record) or require full consumption
    /// (verify). Returns the summary; a verify-mode divergence is also
    /// surfaced via [`KernelJournal::divergence`] before the reset.
    pub fn finish(&mut self) -> Result<(JournalSummary, Option<Divergence>), JournalError> {
        match self {
            KernelJournal::Off => Ok((JournalSummary::default(), None)),
            KernelJournal::Record {
                writer, snapshots, ..
            } => {
                writer.finish()?;
                Ok((
                    JournalSummary {
                        records: writer.next_seq(),
                        snapshots: snapshots.snapshots().len() as u64,
                        bytes: writer.bytes(),
                        verified: 0,
                        skipped: 0,
                    },
                    None,
                ))
            }
            KernelJournal::Verify { verifier, .. } => {
                let summary = verifier.finish();
                Ok((summary, verifier.divergence.clone()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemSink;

    /// Drive a toy "kernel": a fixed script of events with snapshots on
    /// the facade's cadence, state = running digest of events seen.
    fn drive(journal: &mut KernelJournal, script: &[(u64, RecordKind, u64, &str)]) {
        let mut state: u64 = 0;
        for (i, (at, kind, a, label)) in script.iter().enumerate() {
            let events = i as u64;
            if journal.snapshot_due(events) {
                let sections = vec![
                    ("core".to_string(), state.to_le_bytes().to_vec()),
                    ("count".to_string(), events.to_le_bytes().to_vec()),
                ];
                journal.on_snapshot(*at, events, &sections);
            }
            journal.note(*at, *kind, 1, *a, 0, label);
            state = state.wrapping_mul(31).wrapping_add(*a);
        }
    }

    fn script() -> Vec<(u64, RecordKind, u64, &'static str)> {
        (0..10u64)
            .map(|i| {
                (
                    100 * (i + 1),
                    if i % 3 == 0 {
                        RecordKind::TimerFire
                    } else {
                        RecordKind::Deliver
                    },
                    i * 7,
                    if i % 2 == 0 { "Ping" } else { "Pong" },
                )
            })
            .collect()
    }

    fn record_script() -> Vec<u8> {
        let sink = MemSink::new();
        let mut journal = KernelJournal::record(Box::new(sink.clone()), 4);
        drive(&mut journal, &script());
        let (summary, div) = journal.finish().unwrap();
        assert!(div.is_none());
        assert_eq!(summary.snapshots, 2, "events 4 and 8 snapshot");
        assert_eq!(summary.records, 12, "10 events + 2 snapshot marks");
        sink.contents()
    }

    #[test]
    fn identical_rerun_verifies_from_origin() {
        let data = record_script();
        let mut journal = KernelJournal::verify(data, ReplayStart::Origin).unwrap();
        drive(&mut journal, &script());
        let (summary, div) = journal.finish().unwrap();
        assert!(div.is_none(), "{div:?}");
        assert_eq!(summary.verified, 12);
        assert_eq!(summary.skipped, 0);
    }

    #[test]
    fn identical_rerun_verifies_from_latest_snapshot() {
        let data = record_script();
        let mut journal = KernelJournal::verify(data, ReplayStart::LatestSnapshot).unwrap();
        drive(&mut journal, &script());
        let (summary, div) = journal.finish().unwrap();
        assert!(div.is_none(), "{div:?}");
        assert!(summary.skipped > 0, "snapshot fast path skipped a prefix");
        assert!(summary.verified < 12);
        assert_eq!(summary.verified + summary.skipped, 12);
    }

    #[test]
    fn divergent_event_is_pinpointed() {
        let data = record_script();
        let mut bad = script();
        bad[6].3 = "Evil"; // plant a divergence at the 7th event
        let mut journal = KernelJournal::verify(data, ReplayStart::Origin).unwrap();
        drive(&mut journal, &bad);
        let (_, div) = journal.finish().unwrap();
        let div = div.expect("must diverge");
        // Events 0..6 plus the snapshot mark at event 4 → journal seq 7.
        assert_eq!(div.seq, 7);
        assert!(div.expected.contains("Ping"));
        assert!(div.got.contains("Evil"));
        assert!(div.context.contains(">>"));
    }

    #[test]
    fn state_divergence_in_skipped_prefix_caught_at_snapshot_root() {
        let data = record_script();
        let mut bad = script();
        bad[1].2 = 999; // different event → different digested state
        let mut journal = KernelJournal::verify(data, ReplayStart::LatestSnapshot).unwrap();
        drive(&mut journal, &bad);
        let (_, div) = journal.finish().unwrap();
        let div = div.expect("root check must catch the divergence");
        assert_eq!(div.seq, 4, "first snapshot mark (after events 0..=3)");
        assert!(div.expected.contains("snapshot"));
    }

    #[test]
    fn short_run_is_a_divergence() {
        let data = record_script();
        let mut journal = KernelJournal::verify(data, ReplayStart::Origin).unwrap();
        let half: Vec<_> = script().into_iter().take(5).collect();
        drive(&mut journal, &half);
        let (_, div) = journal.finish().unwrap();
        let div = div.expect("missing tail must diverge");
        assert!(div.got.contains("quiesced"));
    }

    #[test]
    fn long_run_is_a_divergence() {
        let data = record_script();
        let mut journal = KernelJournal::verify(data, ReplayStart::Origin).unwrap();
        let mut long = script();
        long.push((2000, RecordKind::Deliver, 1, "Extra"));
        drive(&mut journal, &long);
        let (_, div) = journal.finish().unwrap();
        let div = div.expect("extra event must diverge");
        assert!(div.expected.contains("end of journal"));
        assert!(div.got.contains("Extra"));
    }

    #[test]
    fn off_is_inert() {
        let mut journal = KernelJournal::default();
        assert!(!journal.is_on());
        assert_eq!(journal.note(1, RecordKind::Deliver, 1, 2, 3, "x"), 0);
        assert!(!journal.snapshot_due(100));
        assert!(journal.divergence().is_none());
        let (summary, div) = journal.finish().unwrap();
        assert_eq!(summary, JournalSummary::default());
        assert!(div.is_none());
    }

    #[test]
    fn time_travel_start_picks_earlier_snapshot() {
        let data = record_script();
        // Snapshot marks land at t=500 (events 0..=3) and t=900.
        let mut journal =
            KernelJournal::verify(data, ReplayStart::SnapshotAtOrBefore(600)).unwrap();
        drive(&mut journal, &script());
        let (summary, div) = journal.finish().unwrap();
        assert!(div.is_none(), "{div:?}");
        assert_eq!(summary.skipped, 4, "events before the t=500 snapshot");
    }
}
