//! Pluggable journal byte sinks.
//!
//! The writer appends framed records; where the bytes go is a
//! [`JournalSink`]: in-memory for tests and same-process replay
//! ([`MemSink`]), a buffered file for `--journal-out` ([`FileSink`]).

use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Destination for journal bytes. Implementations must preserve append
/// order; the writer never seeks.
pub trait JournalSink: Send {
    /// Append `bytes`.
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<()>;

    /// Flush any buffering to the backing store.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// An in-memory sink. Cloning shares the same buffer, so a test can keep
/// one handle and hand the other to the kernel, then read
/// [`MemSink::contents`] after the run.
#[derive(Default, Clone)]
pub struct MemSink {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl MemSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.buf.lock().expect("journal sink poisoned").clone()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("journal sink poisoned").len()
    }

    /// Has nothing been written?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl JournalSink for MemSink {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.buf
            .lock()
            .expect("journal sink poisoned")
            .extend_from_slice(bytes);
        Ok(())
    }
}

/// A buffered file sink for `--journal-out`.
pub struct FileSink {
    w: std::io::BufWriter<std::fs::File>,
}

impl FileSink {
    /// Create (truncating) the journal file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(FileSink {
            w: std::io::BufWriter::new(std::fs::File::create(path)?),
        })
    }
}

impl JournalSink for FileSink {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.w.write_all(bytes)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_sink_shares_buffer_across_clones() {
        let sink = MemSink::new();
        let mut handle = sink.clone();
        assert!(sink.is_empty());
        handle.write(b"abc").unwrap();
        handle.write(b"def").unwrap();
        assert_eq!(sink.contents(), b"abcdef");
        assert_eq!(sink.len(), 6);
    }

    #[test]
    fn file_sink_writes_through() {
        let path = std::env::temp_dir().join(format!("legion-journal-sink-{}", std::process::id()));
        {
            let mut sink = FileSink::create(&path).unwrap();
            sink.write(b"hello ").unwrap();
            sink.write(b"journal").unwrap();
            sink.flush().unwrap();
        }
        assert_eq!(std::fs::read(&path).unwrap(), b"hello journal");
        let _ = std::fs::remove_file(&path);
    }
}
