//! Content-addressed state snapshots.
//!
//! A snapshot materializes the kernel's deterministic state as named
//! **sections** (core counters, RNG, event queue, one per endpoint…),
//! each stored as a chunk in a content-addressed blob store. Sections
//! that did not change between snapshots hash to the same [`ChunkId`]
//! and are stored once — snapshots are incremental by construction, the
//! same trick the OPR vault uses for unchanged object checkpoints.
//!
//! The **state root** — a hash over the ordered (section name, chunk id)
//! list — names the whole state in one value. Two runs whose roots match
//! at a snapshot point have byte-identical serialized state there; the
//! journal stores the root in the snapshot mark record, which is how a
//! replay proves it has reconstructed the recorded state.

use legion_persist::cas::{BlobStore, ChunkId, MemBlobStore, Sha256};

/// Metadata for one snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotMeta {
    /// 0-based snapshot number within the run.
    pub ordinal: u64,
    /// Virtual time the snapshot was taken.
    pub at: u64,
    /// Journal seq of the snapshot mark record.
    pub seq: u64,
    /// Hash over the ordered (section, chunk) list.
    pub root: ChunkId,
    /// Every section with its chunk id.
    pub sections: Vec<(String, ChunkId)>,
    /// Chunks this snapshot added to the store.
    pub new_chunks: u64,
    /// Chunks shared with earlier snapshots (the incremental win).
    pub deduped: u64,
}

/// Compute the state root of an ordered (section name, chunk id) list.
pub fn sections_root(sections: &[(String, ChunkId)]) -> ChunkId {
    let mut h = Sha256::new();
    for (name, id) in sections {
        h.update(&(name.len() as u64).to_le_bytes());
        h.update(name.as_bytes());
        h.update(&id.0);
    }
    ChunkId(h.finish())
}

/// Hash raw sections straight to a root without storing anything — the
/// verify path, which only needs to compare roots.
pub fn state_root(sections: &[(String, Vec<u8>)]) -> ChunkId {
    let ids: Vec<(String, ChunkId)> = sections
        .iter()
        .map(|(name, bytes)| (name.clone(), ChunkId::of(bytes)))
        .collect();
    sections_root(&ids)
}

/// A run's snapshots plus the chunk store deduplicating their content.
#[derive(Debug, Default, Clone)]
pub struct SnapshotStore {
    blobs: MemBlobStore,
    snaps: Vec<SnapshotMeta>,
}

impl SnapshotStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a snapshot taken at virtual time `at`, whose mark record
    /// will be journal seq `seq`. Returns the new snapshot's metadata.
    pub fn take(&mut self, at: u64, seq: u64, sections: &[(String, Vec<u8>)]) -> &SnapshotMeta {
        let mut ids = Vec::with_capacity(sections.len());
        let mut new_chunks = 0;
        let mut deduped = 0;
        for (name, bytes) in sections {
            let (id, dup) = self.blobs.put(bytes);
            if dup {
                deduped += 1;
            } else {
                new_chunks += 1;
            }
            ids.push((name.clone(), id));
        }
        let root = sections_root(&ids);
        self.snaps.push(SnapshotMeta {
            ordinal: self.snaps.len() as u64,
            at,
            seq,
            root,
            sections: ids,
            new_chunks,
            deduped,
        });
        self.snaps.last().expect("just pushed")
    }

    /// All snapshots in order.
    pub fn snapshots(&self) -> &[SnapshotMeta] {
        &self.snaps
    }

    /// The most recent snapshot.
    pub fn latest(&self) -> Option<&SnapshotMeta> {
        self.snaps.last()
    }

    /// The most recent snapshot at or before virtual time `t`.
    pub fn latest_at_or_before(&self, t: u64) -> Option<&SnapshotMeta> {
        self.snaps.iter().rev().find(|s| s.at <= t)
    }

    /// The backing chunk store.
    pub fn blobs(&self) -> &MemBlobStore {
        &self.blobs
    }

    /// Fetch one section of one snapshot.
    pub fn section(&self, ordinal: u64, name: &str) -> Option<Vec<u8>> {
        let snap = self.snaps.get(ordinal as usize)?;
        let (_, id) = snap.sections.iter().find(|(n, _)| n == name)?;
        self.blobs.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sections(core: &str, queue: &str) -> Vec<(String, Vec<u8>)> {
        vec![
            ("core".to_string(), core.as_bytes().to_vec()),
            ("queue".to_string(), queue.as_bytes().to_vec()),
        ]
    }

    #[test]
    fn snapshots_dedup_unchanged_sections() {
        let mut store = SnapshotStore::new();
        let s0 = store.take(100, 5, &sections("state-a", "q1")).clone();
        assert_eq!(s0.new_chunks, 2);
        assert_eq!(s0.deduped, 0);
        // Only the queue changed: core is shared with snapshot 0.
        let s1 = store.take(200, 9, &sections("state-a", "q2")).clone();
        assert_eq!(s1.new_chunks, 1);
        assert_eq!(s1.deduped, 1);
        assert_ne!(s0.root, s1.root);
        assert_eq!(store.blobs().len(), 3);
        // Identical state later: fully deduplicated, same root.
        let s2 = store.take(300, 14, &sections("state-a", "q1")).clone();
        assert_eq!(s2.new_chunks, 0);
        assert_eq!(s2.deduped, 2);
        assert_eq!(s2.root, s0.root);
    }

    #[test]
    fn root_depends_on_names_order_and_content() {
        let a = state_root(&sections("x", "y"));
        let b = state_root(&sections("y", "x"));
        assert_ne!(a, b);
        let renamed = state_root(&[("kore".to_string(), b"x".to_vec())]);
        let named = state_root(&[("core".to_string(), b"x".to_vec())]);
        assert_ne!(renamed, named);
    }

    #[test]
    fn time_travel_lookup() {
        let mut store = SnapshotStore::new();
        store.take(100, 1, &sections("a", "1"));
        store.take(200, 2, &sections("b", "2"));
        store.take(300, 3, &sections("c", "3"));
        assert_eq!(store.latest().unwrap().at, 300);
        assert_eq!(store.latest_at_or_before(250).unwrap().at, 200);
        assert_eq!(store.latest_at_or_before(200).unwrap().at, 200);
        assert!(store.latest_at_or_before(50).is_none());
        assert_eq!(store.section(1, "core").unwrap(), b"b");
        assert_eq!(store.section(1, "missing"), None);
    }
}
