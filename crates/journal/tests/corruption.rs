//! Property-based corruption tests for the journal codec: truncation,
//! bit flips, and mid-record EOF must never panic and always surface a
//! typed [`JournalError`] (mirroring the OPR codec proptests in
//! `legion-persist`).

use legion_journal::record::RecordKind;
use legion_journal::{bisect, read_all, JournalError, JournalWriter, MemSink};
use proptest::prelude::*;

/// An arbitrary record as (at, kind tag, endpoint, a, b, label).
fn arb_record() -> impl Strategy<Value = (u64, u8, u64, u64, u64, String)> {
    (
        any::<u64>(),
        0u8..16,
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        "[a-zA-Z0-9:._-]{0,24}",
    )
}

fn journal_of(records: &[(u64, u8, u64, u64, u64, String)], snap_every: u64) -> Vec<u8> {
    let sink = MemSink::new();
    let mut w = JournalWriter::new(Box::new(sink.clone()), snap_every);
    for (at, tag, ep, a, b, label) in records {
        w.append(*at, RecordKind::from_tag(*tag).unwrap(), *ep, *a, *b, label);
    }
    w.finish().unwrap();
    sink.contents()
}

proptest! {
    /// Round-trip: whatever we write, we read back identically.
    #[test]
    fn journal_roundtrips(
        records in proptest::collection::vec(arb_record(), 0..20),
        snap_every in 0u64..512,
    ) {
        let data = journal_of(&records, snap_every);
        let (header, decoded) = read_all(&data).unwrap();
        prop_assert_eq!(header.snap_every, snap_every);
        prop_assert_eq!(decoded.len(), records.len());
        for (i, (rec, (at, tag, ep, a, b, label))) in
            decoded.iter().zip(records.iter()).enumerate()
        {
            prop_assert_eq!(rec.seq, i as u64);
            prop_assert_eq!(rec.at, *at);
            prop_assert_eq!(rec.kind.tag(), *tag);
            prop_assert_eq!(rec.endpoint, *ep);
            prop_assert_eq!(rec.a, *a);
            prop_assert_eq!(rec.b, *b);
            prop_assert_eq!(&rec.label, label);
        }
    }

    /// Truncation at any byte (torn write, short read) never panics: it
    /// either yields a shorter valid journal (cut on a frame boundary)
    /// or a typed error.
    #[test]
    fn truncation_never_panics(
        records in proptest::collection::vec(arb_record(), 1..12),
        cut_seed in any::<usize>(),
    ) {
        let data = journal_of(&records, 8);
        let cut = cut_seed % data.len();
        match read_all(&data[..cut]) {
            Ok((_, decoded)) => prop_assert!(decoded.len() < records.len()),
            Err(
                JournalError::TruncatedHeader
                | JournalError::BadMagic
                | JournalError::TruncatedRecord { .. }
                | JournalError::RecordTooLarge { .. }
                | JournalError::BadChecksum { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// Any single-byte flip is detected: header flips fail header
    /// validation, frame/body flips fail the checksum or framing. A flip
    /// can never silently decode to different records.
    #[test]
    fn single_byte_flip_is_detected(
        records in proptest::collection::vec(arb_record(), 1..12),
        pos_seed in any::<usize>(),
        flip in 1u8..,
    ) {
        let mut data = journal_of(&records, 8);
        let pos = pos_seed % data.len();
        data[pos] ^= flip;
        if let Ok((_header, decoded)) = read_all(&data) {
            // A flip in the snap_every varint of the header leaves
            // every record intact; nothing else may decode cleanly.
            prop_assert!((5..5 + 10).contains(&pos), "flip at {pos} undetected");
            prop_assert_eq!(decoded.len(), records.len());
        }
    }

    /// Multi-byte corruption across the whole buffer never panics.
    #[test]
    fn multi_flip_never_panics(
        records in proptest::collection::vec(arb_record(), 1..10),
        flips in proptest::collection::vec((any::<usize>(), 1u8..), 1..8),
    ) {
        let mut data = journal_of(&records, 4);
        for (pos_seed, flip) in flips {
            let pos = pos_seed % data.len();
            data[pos] ^= flip;
        }
        let _ = read_all(&data); // must not panic
    }

    /// The bisector is total over corrupt input: typed error or report,
    /// never a panic.
    #[test]
    fn bisect_never_panics_on_corrupt_input(
        records in proptest::collection::vec(arb_record(), 1..10),
        pos_seed in any::<usize>(),
        flip in 1u8..,
    ) {
        let a = journal_of(&records, 4);
        let mut b = a.clone();
        let pos = pos_seed % b.len();
        b[pos] ^= flip;
        let _ = bisect(&a, &b); // must not panic
    }
}
