//! Binding Agents (paper §3.6, §4.1, §5.2.2).
//!
//! A Binding Agent "acts on behalf of other Legion objects to bind LOID's
//! to Object Addresses". This endpoint implements the full §4.1 procedure:
//!
//! 1. answer from its **cache** when possible;
//! 2. otherwise consult its **parent** Binding Agent, if configured — the
//!    k-ary tree of §5.2.2 ("a software combining tree");
//! 3. otherwise locate the **responsible class** (locally for instances by
//!    zeroing the Class Specific field; via LegionClass responsibility
//!    pairs for classes) and ask it with `GetBinding()`.
//!
//! Concurrent requests for the same LOID are **combined**: only one
//! upstream request is in flight per target, and every waiter is answered
//! from the single reply — this is what makes the tree a combining tree.
//!
//! The `GetBinding(binding)` overload is a *refresh*: the stale binding is
//! evicted and the resolution bypasses both cache and parent, going
//! straight to the class ("the Binding Agent might contact the class
//! object for an updated binding", §3.6).
//!
//! Upstream replies resume typed continuations from the shared
//! [`Continuations`] store; each call is registered with a deadline and
//! a per-call timer drives the shared deadline sweep, which resolves
//! overdue continuations with the uniform timeout error — so the retry
//! policy lives in exactly one place.

use crate::cache::BindingCache;
use crate::protocol::{
    self, BindingArg, ADD_BINDING, FIND_RESPONSIBLE, GET_BINDING, INVALIDATE_BINDING,
};
use legion_core::address::ObjectAddressElement;
use legion_core::binding::Binding;
use legion_core::env::InvocationEnv;
use legion_core::fxmap::FxHashMap;
use legion_core::interface::ParamType;
use legion_core::loid::Loid;
use legion_core::symbol::Sym;
use legion_core::value::LegionValue;
use legion_core::wellknown::{is_core_class, LEGION_CLASS};
use legion_net::dispatch::{
    cont, insert_pending, is_timeout, reply_id, serve, sweep_expired, take_reply_result,
    Continuation, Continuations, MethodTable, Outcome, TableBuilder,
};
use legion_net::message::Message;
use legion_net::sim::{Ctx, Endpoint};
use std::rc::Rc;

/// Configuration of one Binding Agent.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// The agent's own LOID (an instance of `LegionBindingAgent`).
    pub loid: Loid,
    /// Cache capacity (bindings).
    pub cache_capacity: usize,
    /// Parent agent in the k-ary tree; `None` for roots, which go to
    /// classes directly.
    pub parent: Option<ObjectAddressElement>,
    /// Address of the LegionClass endpoint (bootstrap knowledge).
    pub legion_class: ObjectAddressElement,
    /// Per-request upstream timeout.
    pub request_timeout_ns: u64,
    /// Retries after a timeout before failing waiters.
    pub max_retries: u32,
    /// Ablation switch (experiment E3): a disabled cache never answers
    /// and never stores.
    pub cache_enabled: bool,
}

impl AgentConfig {
    /// A root agent with sane defaults.
    pub fn root(loid: Loid, legion_class: ObjectAddressElement) -> Self {
        AgentConfig {
            loid,
            cache_capacity: 4096,
            parent: None,
            legion_class,
            request_timeout_ns: 500_000_000, // 500 ms
            max_retries: 2,
            cache_enabled: true,
        }
    }

    /// Same, but with a parent (an interior/leaf node of the tree).
    pub fn with_parent(mut self, parent: ObjectAddressElement) -> Self {
        self.parent = Some(parent);
        self
    }
}

/// What a completed resolution must service.
enum Waiter {
    /// Reply to this original external call.
    External(Box<Message>),
    /// We resolved a *class*; now ask it for `next_target`'s binding.
    Chained { next_target: Loid },
}

/// Per-target in-flight bookkeeping (request combining).
struct Inflight {
    attempts: u32,
    /// Refresh resolutions bypass cache & parent.
    force_fresh: bool,
    /// The stale binding that triggered the refresh, forwarded to the
    /// class through the `GetBinding(binding)` overload so the class
    /// knows its own table entry is suspect (§3.6).
    stale: Option<Binding>,
}

/// The Binding Agent endpoint.
pub struct BindingAgentEndpoint {
    cfg: AgentConfig,
    cache: BindingCache,
    waiting: FxHashMap<Loid, Vec<Waiter>>,
    inflight: FxHashMap<Loid, Inflight>,
    continuations: Continuations<Self>,
    table: Rc<MethodTable<Self>>,
}

impl BindingAgentEndpoint {
    /// Build from config.
    pub fn new(cfg: AgentConfig) -> Self {
        let cache = BindingCache::new(cfg.cache_capacity);
        let table = Self::table(cfg.loid);
        BindingAgentEndpoint {
            cfg,
            cache,
            waiting: FxHashMap::default(),
            inflight: FxHashMap::default(),
            continuations: Continuations::new(),
            table,
        }
    }

    /// Cache statistics (for experiments).
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Cached binding count.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The agent's configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.cfg
    }

    fn table(loid: Loid) -> Rc<MethodTable<Self>> {
        TableBuilder::new("ba", "LegionBindingAgent", loid)
            .get_interface()
            .method::<(BindingArg,), _>(
                GET_BINDING,
                &["target"],
                ParamType::Binding,
                |e: &mut Self, ctx, msg, (arg,)| match arg {
                    BindingArg::Loid(l) => e.handle_get(ctx, msg, l, false, None),
                    BindingArg::Binding(stale) => {
                        // Refresh: evict the stale binding and bypass the
                        // cache and parent on the way to the class.
                        ctx.count("ba.refresh");
                        e.cache.invalidate_exact(&stale);
                        let target = stale.loid;
                        e.handle_get(ctx, msg, target, true, Some(stale))
                    }
                },
            )
            .method::<(BindingArg,), _>(
                INVALIDATE_BINDING,
                &["target"],
                ParamType::Void,
                |e: &mut Self, _ctx, _msg, (arg,)| {
                    match arg {
                        BindingArg::Loid(l) => {
                            e.cache.invalidate(&l);
                        }
                        BindingArg::Binding(b) => {
                            e.cache.invalidate_exact(&b);
                        }
                    }
                    Outcome::Reply(Ok(LegionValue::Void))
                },
            )
            .method::<(Binding,), _>(
                ADD_BINDING,
                &["binding"],
                ParamType::Void,
                |e: &mut Self, _ctx, _msg, (b,)| {
                    // "used ... to explicitly propagate binding information
                    // for performance purposes" (§3.6).
                    if e.cfg.cache_enabled {
                        e.cache.insert(b);
                    }
                    Outcome::Reply(Ok(LegionValue::Void))
                },
            )
            .seal()
    }

    // ----- resolution machinery -------------------------------------------

    fn handle_get(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: &Message,
        target: Loid,
        force_fresh: bool,
        stale: Option<Binding>,
    ) -> Outcome {
        if !force_fresh && self.cfg.cache_enabled {
            // `get_ref` + `binding_value`: a cache hit copies the binding
            // into a recycled shell instead of boxing a fresh clone.
            if let Some(b) = self.cache.get_ref(&target, ctx.now()) {
                ctx.count("ba.cache_hit");
                if ctx.trace_active() {
                    ctx.trace_note(&format!("ba.cache_hit:{target}"));
                }
                let value = ctx.binding_value(b);
                return Outcome::Reply(Ok(value));
            }
        }
        ctx.count("ba.cache_miss");
        if ctx.trace_active() {
            ctx.trace_note(&format!("ba.cache_miss:{target}"));
        }
        self.enqueue(
            ctx,
            target,
            Waiter::External(Box::new(msg.clone())),
            force_fresh,
            stale,
        );
        Outcome::Pending
    }

    /// Add a waiter for `target`, starting an upstream resolution if none
    /// is in flight (request combining).
    fn enqueue(
        &mut self,
        ctx: &mut Ctx<'_>,
        target: Loid,
        waiter: Waiter,
        force_fresh: bool,
        stale: Option<Binding>,
    ) {
        self.waiting.entry(target).or_default().push(waiter);
        if let Some(inf) = self.inflight.get_mut(&target) {
            inf.force_fresh |= force_fresh;
            if inf.stale.is_none() {
                inf.stale = stale;
            }
            ctx.count("ba.combined");
            return;
        }
        self.inflight.insert(
            target,
            Inflight {
                attempts: 0,
                force_fresh,
                stale,
            },
        );
        self.start_upstream(ctx, target);
    }

    /// The continuation for an expected binding reply: timeouts retry,
    /// everything else completes the resolution.
    fn binding_continuation(target: Loid) -> Continuation<Self> {
        cont(
            move |e: &mut Self, ctx, result| match protocol::binding_from_result(&result) {
                Some(b) => e.complete(ctx, target, Ok(b)),
                None => {
                    let reason = match result {
                        Err(err) => err,
                        Ok(v) => format!("unexpected payload {v}"),
                    };
                    if is_timeout(&reason) {
                        e.retry_or_fail(ctx, target, &reason);
                    } else {
                        e.complete(ctx, target, Err(reason));
                    }
                }
            },
        )
    }

    /// The continuation for LegionClass's `FindResponsible(target)`.
    fn responsible_continuation(target: Loid) -> Continuation<Self> {
        cont(move |e: &mut Self, ctx, result| match result {
            Ok(LegionValue::Loid(responsible)) => {
                e.ensure_class_then_ask(ctx, responsible, target);
            }
            Ok(v) => {
                let v = format!("unexpected payload {v}");
                e.complete(ctx, target, Err(v));
            }
            Err(err) => {
                if is_timeout(&err) {
                    e.retry_or_fail(ctx, target, &err);
                } else {
                    e.complete(ctx, target, Err(err));
                }
            }
        })
    }

    /// Issue (or re-issue) the upstream request for `target`.
    fn start_upstream(&mut self, ctx: &mut Ctx<'_>, target: Loid) {
        let force_fresh = self
            .inflight
            .get(&target)
            .map(|i| i.force_fresh)
            .unwrap_or(false);

        // Route 1: parent agent — for *class objects* only (unless
        // refreshing). §5.2.2 is explicit about the division of labour:
        // on an instance miss "the Binding Agent consults the class
        // object of the object ... thus, the load is distributed to the
        // class objects", while the k-ary tree exists to "eliminate
        // traffic from 'leaf' Binding Agents to LegionClass" — i.e. the
        // combining tree carries class-object lookups.
        if !force_fresh && target.is_class() {
            if let Some(parent) = self.cfg.parent {
                ctx.count("ba.to_parent");
                let mut args = ctx.take_args();
                args.push(LegionValue::Loid(target));
                if self.send_pending(
                    ctx,
                    parent,
                    LEGION_CLASS, // nominal target loid of the call frame
                    GET_BINDING,
                    args,
                    Self::binding_continuation(target),
                ) {
                    return;
                }
                // Parent unreachable: fall through to the class route.
                ctx.count("ba.parent_unreachable");
            }
        }

        // Route 2: the responsible class.
        if !target.is_class() {
            // §4.1.3: derive the class LOID locally, then ask the class.
            let class = target.class_loid();
            self.ensure_class_then_ask(ctx, class, target);
        } else if target == LEGION_CLASS || is_core_class(&target) {
            // The chain ends at LegionClass, which "simply hands out the
            // appropriate binding".
            ctx.count("ba.to_legion_class");
            let lc = self.cfg.legion_class;
            let mut args = ctx.take_args();
            args.push(LegionValue::Loid(target));
            if !self.send_pending(
                ctx,
                lc,
                LEGION_CLASS,
                GET_BINDING,
                args,
                Self::binding_continuation(target),
            ) {
                self.complete(ctx, target, Err("LegionClass unreachable".into()));
            }
        } else {
            // A user class: ask LegionClass who is responsible, then ask
            // that class.
            ctx.count("ba.to_legion_class");
            let lc = self.cfg.legion_class;
            let mut args = ctx.take_args();
            args.push(LegionValue::Loid(target));
            if !self.send_pending(
                ctx,
                lc,
                LEGION_CLASS,
                FIND_RESPONSIBLE,
                args,
                Self::responsible_continuation(target),
            ) {
                self.complete(ctx, target, Err("LegionClass unreachable".into()));
            }
        }
    }

    /// Once we hold a binding for `class`, ask it for `next_target`.
    fn ensure_class_then_ask(&mut self, ctx: &mut Ctx<'_>, class: Loid, next_target: Loid) {
        if class == LEGION_CLASS {
            // LegionClass's address is bootstrap knowledge (§4.2.1): no
            // resolution needed, ask it directly — "LegionClass simply
            // hands out the appropriate binding".
            let b = Binding::forever(
                LEGION_CLASS,
                legion_core::address::ObjectAddress::single(self.cfg.legion_class),
            );
            self.ask_class(ctx, &b, next_target);
            return;
        }
        let cached = if self.cfg.cache_enabled {
            self.cache.get(&class, ctx.now())
        } else {
            None
        };
        if let Some(b) = cached {
            ctx.count("ba.class_addr_hit");
            self.ask_class(ctx, &b, next_target);
        } else {
            ctx.count("ba.class_addr_miss");
            self.enqueue(ctx, class, Waiter::Chained { next_target }, false, None);
        }
    }

    /// Send `GetBinding(next_target)` to a resolved class. A refresh
    /// travels as the `GetBinding(binding)` overload end to end, so the
    /// class bypasses its own (suspect) Object Address column and
    /// consults a Magistrate (§3.6, §4.1.4).
    fn ask_class(&mut self, ctx: &mut Ctx<'_>, class_binding: &Binding, next_target: Loid) {
        ctx.count("ba.to_class");
        let Some(primary) = class_binding.address.primary().copied() else {
            self.complete(ctx, next_target, Err("class has empty address".into()));
            return;
        };
        let arg = match self.inflight.get(&next_target) {
            Some(inf) if inf.force_fresh => {
                let stale = inf.stale.clone().unwrap_or_else(|| Binding {
                    loid: next_target,
                    address: legion_core::address::ObjectAddress {
                        elements: Vec::new(),
                        semantics: legion_core::address::AddressSemantics::Single,
                    },
                    expiry: legion_core::time::Expiry::Never,
                });
                LegionValue::from(stale)
            }
            _ => LegionValue::Loid(next_target),
        };
        let mut args = ctx.take_args();
        args.push(arg);
        if !self.send_pending(
            ctx,
            primary,
            class_binding.loid,
            GET_BINDING,
            args,
            Self::binding_continuation(next_target),
        ) {
            // The class endpoint itself is unreachable — its cached
            // binding is stale. Evict and retry through the full path.
            self.cache.invalidate(&class_binding.loid);
            self.retry_or_fail(ctx, next_target, "class unreachable");
        }
    }

    /// Send a call, register its continuation, and arm its timeout.
    /// Returns `false` on a detectable refusal (nothing registered).
    fn send_pending(
        &mut self,
        ctx: &mut Ctx<'_>,
        to: ObjectAddressElement,
        frame_target: Loid,
        method: impl Into<Sym>,
        args: Vec<LegionValue>,
        k: Continuation<Self>,
    ) -> bool {
        let env = InvocationEnv::solo(self.cfg.loid);
        match ctx.call(to, frame_target, method, args, env, Some(self.cfg.loid)) {
            Some(call_id) => {
                // Tag the sweep timer with the raw call id so traces stay
                // attributable to the call that armed them.
                insert_pending(
                    &mut self.continuations,
                    ctx,
                    call_id,
                    k,
                    Some(self.cfg.request_timeout_ns),
                    call_id.0,
                );
                true
            }
            None => false,
        }
    }

    fn retry_or_fail(&mut self, ctx: &mut Ctx<'_>, target: Loid, reason: &str) {
        let attempts = match self.inflight.get_mut(&target) {
            Some(inf) => {
                inf.attempts += 1;
                inf.attempts
            }
            None => return, // already completed
        };
        if attempts <= self.cfg.max_retries {
            ctx.count("ba.retry");
            self.start_upstream(ctx, target);
        } else {
            self.complete(ctx, target, Err(format!("binding failed: {reason}")));
        }
    }

    /// Finish a resolution: cache, then service every waiter.
    fn complete(&mut self, ctx: &mut Ctx<'_>, target: Loid, result: Result<Binding, String>) {
        self.inflight.remove(&target);
        if let Ok(b) = &result {
            if self.cfg.cache_enabled {
                self.cache.insert(b.clone());
            }
        }
        let waiters = self.waiting.remove(&target).unwrap_or_default();
        for w in waiters {
            match w {
                Waiter::External(msg) => {
                    let payload = match &result {
                        Ok(b) => Ok(ctx.binding_value(b)),
                        Err(e) => Err(format!("GetBinding({target}): {e}")),
                    };
                    ctx.reply(&msg, payload);
                }
                Waiter::Chained { next_target } => match &result {
                    Ok(class_binding) => {
                        let b = class_binding.clone();
                        self.ask_class(ctx, &b, next_target);
                    }
                    Err(e) => {
                        let e = e.clone();
                        self.complete(ctx, next_target, Err(e));
                    }
                },
            }
        }
    }
}

impl Endpoint for BindingAgentEndpoint {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        if let Some(id) = reply_id(&msg) {
            match self.continuations.take(&id) {
                Some(resume) => resume(self, ctx, take_reply_result(msg)),
                None => ctx.count("ba.late_reply"),
            }
            return;
        }
        if msg.is_reply() {
            return;
        }
        let table = Rc::clone(&self.table);
        serve(&table, self, ctx, msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _tag: u64) {
        fn conts(e: &mut BindingAgentEndpoint) -> &mut Continuations<BindingAgentEndpoint> {
            &mut e.continuations
        }
        let after_ns = self.cfg.request_timeout_ns;
        let expired = sweep_expired(self, ctx, conts, after_ns);
        for _ in 0..expired {
            ctx.count("ba.timeout");
        }
    }
}
