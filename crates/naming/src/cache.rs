//! Binding caches (paper §3.5, §3.6, §4.1).
//!
//! "Bindings are first class entities that can be passed around the system
//! and cached within objects." Caches appear at three tiers (Fig. 17):
//! inside every object's communication layer, inside Binding Agents, and
//! inside class objects. All three use this [`BindingCache`]: an LRU with
//! per-entry expiry and hit/miss/stale accounting.
//!
//! The LRU is implemented as a slab-backed doubly linked list plus a hash
//! index — O(1) lookup, insert and eviction, suitable for the large agent
//! caches in the scalability experiments.

use legion_core::binding::Binding;
use legion_core::fxmap::FxHashMap;
use legion_core::loid::Loid;
use legion_core::time::SimTime;

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a live binding.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Lookups that found an entry but it had expired (counted as miss).
    pub expired: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
    /// Entries explicitly invalidated.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.expired;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

struct Node {
    loid: Loid,
    binding: Binding,
    prev: usize,
    next: usize,
}

/// An LRU + TTL cache from LOID to [`Binding`].
///
/// ```
/// use legion_core::address::{ObjectAddress, ObjectAddressElement};
/// use legion_core::binding::Binding;
/// use legion_core::loid::Loid;
/// use legion_core::time::SimTime;
/// use legion_naming::cache::BindingCache;
///
/// let mut cache = BindingCache::new(128);
/// let b = Binding::forever(
///     Loid::instance(16, 1),
///     ObjectAddress::single(ObjectAddressElement::sim(9)),
/// );
/// cache.insert(b.clone());
/// assert_eq!(cache.get(&b.loid, SimTime::ZERO), Some(b));
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct BindingCache {
    map: FxHashMap<Loid, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    stats: CacheStats,
}

impl BindingCache {
    /// A cache holding at most `capacity` bindings (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BindingCache {
            map: FxHashMap::with_capacity_and_hasher(capacity.min(1 << 20), Default::default()),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// Number of cached bindings (including not-yet-expired-checked ones).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    // ----- linked-list plumbing ------------------------------------------

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn remove_node(&mut self, idx: usize) -> Binding {
        self.detach(idx);
        let loid = self.nodes[idx].loid;
        self.map.remove(&loid);
        self.free.push(idx);
        self.nodes[idx].binding.clone()
    }

    // ----- public API ------------------------------------------------------

    /// Look up a live binding, refreshing its LRU position. Expired
    /// entries are removed and counted.
    pub fn get(&mut self, loid: &Loid, now: SimTime) -> Option<Binding> {
        let Some(&idx) = self.map.get(loid) else {
            self.stats.misses += 1;
            return None;
        };
        if !self.nodes[idx].binding.is_valid_at(now) {
            self.stats.expired += 1;
            self.remove_node(idx);
            return None;
        }
        self.stats.hits += 1;
        self.detach(idx);
        self.push_front(idx);
        Some(self.nodes[idx].binding.clone())
    }

    /// [`BindingCache::get`] without the clone: same LRU refresh and
    /// stats, but hands back a borrow. The §5.2 hot path pairs this with
    /// `Ctx::binding_value` so a cache hit copies into a recycled shell
    /// instead of allocating a fresh one.
    pub fn get_ref(&mut self, loid: &Loid, now: SimTime) -> Option<&Binding> {
        let Some(&idx) = self.map.get(loid) else {
            self.stats.misses += 1;
            return None;
        };
        if !self.nodes[idx].binding.is_valid_at(now) {
            self.stats.expired += 1;
            self.remove_node(idx);
            return None;
        }
        self.stats.hits += 1;
        self.detach(idx);
        self.push_front(idx);
        Some(&self.nodes[idx].binding)
    }

    /// Peek without touching LRU order or stats (for tests/inspection).
    pub fn peek(&self, loid: &Loid) -> Option<&Binding> {
        self.map.get(loid).map(|&idx| &self.nodes[idx].binding)
    }

    /// [`BindingCache::insert`] from a borrow. Replacing an existing
    /// entry copies field-wise into the resident node (reusing its
    /// element buffer — allocation-free on the steady refresh path);
    /// only a genuinely new entry clones.
    pub fn insert_ref(&mut self, binding: &Binding) {
        if let Some(&idx) = self.map.get(&binding.loid) {
            let node = &mut self.nodes[idx].binding;
            node.loid = binding.loid;
            node.expiry = binding.expiry;
            node.address.semantics = binding.address.semantics;
            node.address.elements.clone_from(&binding.address.elements);
            self.detach(idx);
            self.push_front(idx);
            return;
        }
        self.insert(binding.clone());
    }

    /// Insert or replace a binding (`AddBinding`). Evicts the LRU entry
    /// when at capacity.
    pub fn insert(&mut self, binding: Binding) {
        if let Some(&idx) = self.map.get(&binding.loid) {
            self.nodes[idx].binding = binding;
            self.detach(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            if lru != NIL {
                self.remove_node(lru);
                self.stats.evictions += 1;
            }
        }
        let loid = binding.loid;
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node {
                    loid,
                    binding,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    loid,
                    binding,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.map.insert(loid, idx);
        self.push_front(idx);
    }

    /// Remove any binding for `loid` (`InvalidateBinding(LOID)`).
    /// Returns the removed binding.
    pub fn invalidate(&mut self, loid: &Loid) -> Option<Binding> {
        let idx = *self.map.get(loid)?;
        self.stats.invalidations += 1;
        Some(self.remove_node(idx))
    }

    /// Remove a binding only if it *exactly matches* the argument
    /// (`InvalidateBinding(binding)` — the paper's second overload).
    pub fn invalidate_exact(&mut self, binding: &Binding) -> bool {
        let Some(&idx) = self.map.get(&binding.loid) else {
            return false;
        };
        if &self.nodes[idx].binding != binding {
            return false;
        }
        self.stats.invalidations += 1;
        self.remove_node(idx);
        true
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// LOIDs currently cached, most recently used first.
    pub fn loids_mru_order(&self) -> Vec<Loid> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.nodes[cur].loid);
            cur = self.nodes[cur].next;
        }
        out
    }
}

impl std::fmt::Debug for BindingCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BindingCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_core::address::{ObjectAddress, ObjectAddressElement};
    use legion_core::time::Expiry;

    fn b(seq: u64, ep: u64) -> Binding {
        Binding::forever(
            Loid::instance(16, seq),
            ObjectAddress::single(ObjectAddressElement::sim(ep)),
        )
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = BindingCache::new(4);
        c.insert(b(1, 10));
        let got = c.get(&Loid::instance(16, 1), SimTime::ZERO).unwrap();
        assert_eq!(got, b(1, 10));
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn miss_is_counted() {
        let mut c = BindingCache::new(4);
        assert!(c.get(&Loid::instance(16, 9), SimTime::ZERO).is_none());
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn expired_entries_are_removed_and_counted() {
        let mut c = BindingCache::new(4);
        let mut binding = b(1, 10);
        binding.expiry = Expiry::At(SimTime::from_secs(1));
        c.insert(binding);
        assert!(c
            .get(&Loid::instance(16, 1), SimTime::from_millis(500))
            .is_some());
        assert!(c
            .get(&Loid::instance(16, 1), SimTime::from_secs(2))
            .is_none());
        assert_eq!(c.stats().expired, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = BindingCache::new(3);
        c.insert(b(1, 1));
        c.insert(b(2, 2));
        c.insert(b(3, 3));
        // Touch 1 so 2 becomes LRU.
        c.get(&Loid::instance(16, 1), SimTime::ZERO);
        c.insert(b(4, 4));
        assert_eq!(c.len(), 3);
        assert!(c.peek(&Loid::instance(16, 2)).is_none(), "2 evicted");
        assert!(c.peek(&Loid::instance(16, 1)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(
            c.loids_mru_order(),
            vec![
                Loid::instance(16, 4),
                Loid::instance(16, 1),
                Loid::instance(16, 3)
            ]
        );
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = BindingCache::new(2);
        c.insert(b(1, 1));
        c.insert(b(2, 2));
        c.insert(b(1, 99)); // replace, no eviction
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(
            c.get(&Loid::instance(16, 1), SimTime::ZERO).unwrap(),
            b(1, 99)
        );
    }

    #[test]
    fn invalidate_by_loid() {
        let mut c = BindingCache::new(4);
        c.insert(b(1, 1));
        assert_eq!(c.invalidate(&Loid::instance(16, 1)), Some(b(1, 1)));
        assert_eq!(c.invalidate(&Loid::instance(16, 1)), None);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_exact_requires_match() {
        let mut c = BindingCache::new(4);
        c.insert(b(1, 1));
        // Same LOID, different address: not removed.
        assert!(!c.invalidate_exact(&b(1, 99)));
        assert_eq!(c.len(), 1);
        assert!(c.invalidate_exact(&b(1, 1)));
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_one_works() {
        let mut c = BindingCache::new(1);
        c.insert(b(1, 1));
        c.insert(b(2, 2));
        assert_eq!(c.len(), 1);
        assert!(c.peek(&Loid::instance(16, 2)).is_some());
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = BindingCache::new(4);
        c.insert(b(1, 1));
        c.insert(b(2, 2));
        c.clear();
        assert!(c.is_empty());
        assert!(c.loids_mru_order().is_empty());
        // And the cache still works after clearing.
        c.insert(b(3, 3));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn heavy_churn_preserves_invariants() {
        let mut c = BindingCache::new(16);
        for i in 0..1000u64 {
            c.insert(b(i % 64, i));
            if i % 3 == 0 {
                c.get(&Loid::instance(16, i % 64), SimTime::ZERO);
            }
            if i % 7 == 0 {
                c.invalidate(&Loid::instance(16, (i + 1) % 64));
            }
            assert!(c.len() <= 16);
            assert_eq!(c.loids_mru_order().len(), c.len());
        }
    }

    #[test]
    fn hit_rate_math() {
        let mut c = BindingCache::new(4);
        c.insert(b(1, 1));
        c.get(&Loid::instance(16, 1), SimTime::ZERO); // hit
        c.get(&Loid::instance(16, 2), SimTime::ZERO); // miss
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
    }
}
