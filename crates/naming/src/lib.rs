//! # legion-naming — bindings, Binding Agents, and the resolution protocol
//!
//! The paper's single persistent name space: LOIDs are bound to Object
//! Addresses through first-class binding triples (§3.5), cached at three
//! tiers (client, Binding Agent, class — Fig. 17), resolved through the
//! §4.1 protocol, and kept honest by the stale-binding rules of §4.1.4.
//!
//! * [`cache`] — the LRU + TTL [`cache::BindingCache`] used at all tiers;
//! * [`protocol`] — method names and the `GetBinding` overloads;
//! * [`agent`] — the Binding Agent endpoint (caching, combining,
//!   class consultation, refresh, retries);
//! * [`resolver`] — the client-side communication layer;
//! * [`tree`] — k-ary combining-tree topology (§5.2.2);
//! * [`stale`] — eager invalidation/propagation helpers (§4.1.4);
//! * [`stubs`] — static class/LegionClass endpoints for tests and
//!   naming-only benchmarks (the live ones are in `legion-runtime`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent;
pub mod cache;
pub mod protocol;
pub mod resolver;
pub mod stale;
pub mod stubs;
pub mod tree;

pub use agent::{AgentConfig, BindingAgentEndpoint};
pub use cache::{BindingCache, CacheStats};
pub use resolver::{ClientResolver, Lookup, ResolverStats};
pub use tree::TreeShape;

// Re-export the binding triple: it is defined in `legion-core` (it is
// core model vocabulary) but naming is where users look for it.
pub use legion_core::binding::Binding;
