//! The naming wire protocol: method names and argument helpers.
//!
//! Method names follow the paper exactly. `GetBinding` is *overloaded* —
//! "passed an LOID or a binding" (§3.6) — so the wire dispatch inspects
//! the argument type rather than the name, mirroring the paper's
//! overloading.

use legion_core::binding::Binding;
use legion_core::loid::Loid;
use legion_core::value::LegionValue;
use legion_net::message::Message;

/// `binding GetBinding(LOID)` / `binding GetBinding(binding)` (§3.6).
pub const GET_BINDING: &str = "GetBinding";
/// `InvalidateBinding(LOID)` / `InvalidateBinding(binding)` (§3.6).
pub const INVALIDATE_BINDING: &str = "InvalidateBinding";
/// `AddBinding(binding)` (§3.6).
pub const ADD_BINDING: &str = "AddBinding";
/// LegionClass: issue a Class Identifier to a deriving class (§3.2).
pub const ISSUE_CLASS_ID: &str = "IssueClassId";
/// LegionClass: who is responsible for locating this LOID? (§4.1.3).
pub const FIND_RESPONSIBLE: &str = "FindResponsible";

/// The argument forms of the overloaded `GetBinding`/`InvalidateBinding`.
#[derive(Debug, Clone, PartialEq)]
pub enum BindingArg {
    /// The LOID overload.
    Loid(Loid),
    /// The binding overload (refresh / exact-invalidate).
    Binding(Binding),
}

impl BindingArg {
    /// The LOID the argument is about, whichever overload.
    pub fn loid(&self) -> Loid {
        match self {
            BindingArg::Loid(l) => *l,
            BindingArg::Binding(b) => b.loid,
        }
    }
}

/// Parse the single argument of an overloaded binding method.
pub fn parse_binding_arg(msg: &Message) -> Option<BindingArg> {
    match msg.args() {
        [LegionValue::Loid(l)] => Some(BindingArg::Loid(*l)),
        [LegionValue::Binding(b)] => Some(BindingArg::Binding((**b).clone())),
        _ => None,
    }
}

/// Parse a single-LOID argument list.
pub fn parse_loid_arg(msg: &Message) -> Option<Loid> {
    match msg.args() {
        [LegionValue::Loid(l)] => Some(*l),
        _ => None,
    }
}

/// Parse a single-binding argument list.
pub fn parse_binding(msg: &Message) -> Option<Binding> {
    match msg.args() {
        [LegionValue::Binding(b)] => Some((**b).clone()),
        _ => None,
    }
}

/// Extract a binding from a reply payload.
pub fn binding_from_result(result: &Result<LegionValue, String>) -> Option<Binding> {
    match result {
        Ok(LegionValue::Binding(b)) => Some((**b).clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_core::address::{ObjectAddress, ObjectAddressElement};
    use legion_core::env::InvocationEnv;
    use legion_net::message::CallId;

    fn call_with(args: Vec<LegionValue>) -> Message {
        Message::call(
            CallId(1),
            Loid::class_object(5),
            GET_BINDING,
            args,
            InvocationEnv::anonymous(),
        )
    }

    fn binding() -> Binding {
        Binding::forever(
            Loid::instance(16, 2),
            ObjectAddress::single(ObjectAddressElement::sim(4)),
        )
    }

    #[test]
    fn loid_overload_parses() {
        let m = call_with(vec![LegionValue::Loid(Loid::instance(16, 2))]);
        match parse_binding_arg(&m) {
            Some(BindingArg::Loid(l)) => assert_eq!(l, Loid::instance(16, 2)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(parse_loid_arg(&m), Some(Loid::instance(16, 2)));
        assert_eq!(parse_binding(&m), None);
    }

    #[test]
    fn binding_overload_parses() {
        let b = binding();
        let m = call_with(vec![LegionValue::from(b.clone())]);
        match parse_binding_arg(&m) {
            Some(BindingArg::Binding(got)) => assert_eq!(got, b),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(parse_binding_arg(&m).unwrap().loid(), b.loid);
        assert_eq!(parse_loid_arg(&m), None);
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let m = call_with(vec![]);
        assert_eq!(parse_binding_arg(&m), None);
        let m2 = call_with(vec![LegionValue::Uint(1), LegionValue::Uint(2)]);
        assert_eq!(parse_binding_arg(&m2), None);
        let m3 = call_with(vec![LegionValue::Str("x".into())]);
        assert_eq!(parse_binding_arg(&m3), None);
    }

    #[test]
    fn binding_from_result_extracts() {
        let b = binding();
        assert_eq!(
            binding_from_result(&Ok(LegionValue::from(b.clone()))),
            Some(b)
        );
        assert_eq!(binding_from_result(&Ok(LegionValue::Void)), None);
        assert_eq!(binding_from_result(&Err("x".into())), None);
    }
}
