//! The naming wire protocol: method names and argument helpers.
//!
//! Method names follow the paper exactly. `GetBinding` is *overloaded* —
//! "passed an LOID or a binding" (§3.6) — so the wire dispatch inspects
//! the argument type rather than the name, mirroring the paper's
//! overloading.

use legion_core::binding::Binding;
use legion_core::dispatch::FromArg;
use legion_core::interface::ParamType;
use legion_core::loid::Loid;
use legion_core::symbol::{self, Sym};
use legion_core::value::LegionValue;

/// `binding GetBinding(LOID)` / `binding GetBinding(binding)` (§3.6).
pub const GET_BINDING: Sym = symbol::GET_BINDING;
/// `InvalidateBinding(LOID)` / `InvalidateBinding(binding)` (§3.6).
pub const INVALIDATE_BINDING: Sym = symbol::INVALIDATE_BINDING;
/// `AddBinding(binding)` (§3.6).
pub const ADD_BINDING: Sym = symbol::ADD_BINDING;
/// LegionClass: issue a Class Identifier to a deriving class (§3.2).
pub const ISSUE_CLASS_ID: Sym = symbol::ISSUE_CLASS_ID;
/// LegionClass: who is responsible for locating this LOID? (§4.1.3).
pub const FIND_RESPONSIBLE: Sym = symbol::FIND_RESPONSIBLE;

/// The argument forms of the overloaded `GetBinding`/`InvalidateBinding`.
#[derive(Debug, Clone, PartialEq)]
pub enum BindingArg {
    /// The LOID overload.
    Loid(Loid),
    /// The binding overload (refresh / exact-invalidate).
    Binding(Binding),
}

impl BindingArg {
    /// The LOID the argument is about, whichever overload.
    pub fn loid(&self) -> Loid {
        match self {
            BindingArg::Loid(l) => *l,
            BindingArg::Binding(b) => b.loid,
        }
    }
}

/// Codec impl for the overload: the *published* parameter type is `loid`
/// (the common case), but a `binding` value is accepted too — exactly the
/// paper's "passed an LOID or a binding".
impl FromArg for BindingArg {
    const PARAM: ParamType = ParamType::Loid;

    fn from_value(v: &LegionValue) -> Option<Self> {
        match v {
            LegionValue::Loid(l) => Some(BindingArg::Loid(*l)),
            LegionValue::Binding(b) => Some(BindingArg::Binding((**b).clone())),
            _ => None,
        }
    }
}

/// Extract a binding from a reply payload.
pub fn binding_from_result(result: &Result<LegionValue, String>) -> Option<Binding> {
    match result {
        Ok(LegionValue::Binding(b)) => Some((**b).clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_core::address::{ObjectAddress, ObjectAddressElement};

    fn binding() -> Binding {
        Binding::forever(
            Loid::instance(16, 2),
            ObjectAddress::single(ObjectAddressElement::sim(4)),
        )
    }

    #[test]
    fn loid_overload_parses() {
        let v = LegionValue::Loid(Loid::instance(16, 2));
        match BindingArg::from_value(&v) {
            Some(BindingArg::Loid(l)) => assert_eq!(l, Loid::instance(16, 2)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn binding_overload_parses() {
        let b = binding();
        let v = LegionValue::from(b.clone());
        match BindingArg::from_value(&v) {
            Some(BindingArg::Binding(got)) => assert_eq!(got, b),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(BindingArg::from_value(&v).unwrap().loid(), b.loid);
    }

    #[test]
    fn wrong_type_is_rejected() {
        assert_eq!(BindingArg::from_value(&LegionValue::Uint(1)), None);
        assert_eq!(BindingArg::from_value(&LegionValue::Str("x".into())), None);
        assert_eq!(BindingArg::PARAM, ParamType::Loid);
    }

    #[test]
    fn binding_from_result_extracts() {
        let b = binding();
        assert_eq!(
            binding_from_result(&Ok(LegionValue::from(b.clone()))),
            Some(b)
        );
        assert_eq!(binding_from_result(&Ok(LegionValue::Void)), None);
        assert_eq!(binding_from_result(&Err("x".into())), None);
    }
}
