//! The client-side communication layer (paper §4.1.2, §4.1.4).
//!
//! "Since A is a Legion object, it contains a Legion-aware communication
//! layer which may implement a binding cache. Therefore, A will often have
//! a cached binding for B, and external objects will be unnecessary."
//!
//! [`ClientResolver`] is that layer: a local cache in front of the
//! object's Binding Agent (whose Object Address is "part of its persistent
//! state", §3.6). It also implements stale-binding recovery: when a send
//! through a cached binding is refused, [`ClientResolver::report_stale`]
//! evicts it and requests a refresh via the `GetBinding(binding)` overload.

use crate::cache::{BindingCache, CacheStats};
use crate::protocol::{self, GET_BINDING};
use legion_core::address::ObjectAddressElement;
use legion_core::binding::Binding;
use legion_core::env::InvocationEnv;
use legion_core::fxmap::FxHashMap;
use legion_core::loid::Loid;
use legion_core::value::LegionValue;
use legion_net::message::{Body, CallId, Message};
use legion_net::sim::Ctx;

/// Counters for the three §4.1 outcomes at the client tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Lookups served from the local cache.
    pub local_hits: u64,
    /// Lookups that went to the Binding Agent.
    pub agent_requests: u64,
    /// Refresh requests after stale-binding detection.
    pub refreshes: u64,
    /// Lookups that ultimately failed.
    pub failures: u64,
}

/// Outcome of a lookup attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// Served locally.
    Cached(Binding),
    /// A request to the Binding Agent is in flight under this id.
    Requested(CallId),
    /// The Binding Agent could not be reached.
    AgentUnreachable,
}

/// The Legion-aware communication layer embedded in client objects.
pub struct ClientResolver {
    /// The owning object's LOID (used as the call environment).
    me: Loid,
    /// The Binding Agent's address — persistent state per §3.6.
    agent: ObjectAddressElement,
    cache: BindingCache,
    cache_enabled: bool,
    pending: FxHashMap<CallId, Loid>,
    stats: ResolverStats,
}

impl ClientResolver {
    /// A resolver for object `me` using the agent at `agent`.
    pub fn new(me: Loid, agent: ObjectAddressElement, cache_capacity: usize) -> Self {
        ClientResolver {
            me,
            agent,
            cache: BindingCache::new(cache_capacity),
            cache_enabled: true,
            pending: FxHashMap::default(),
            stats: ResolverStats::default(),
        }
    }

    /// Disable (or re-enable) the local cache — the ablation switch for
    /// experiment E3. A disabled cache neither answers nor stores.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
    }

    /// The owning object's LOID.
    pub fn me(&self) -> Loid {
        self.me
    }

    /// Resolver statistics.
    pub fn stats(&self) -> ResolverStats {
        self.stats
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Look up a binding for `target`: local cache first, else ask the
    /// Binding Agent.
    pub fn lookup(&mut self, ctx: &mut Ctx<'_>, target: Loid) -> Lookup {
        if self.cache_enabled {
            if let Some(b) = self.cache.get(&target, ctx.now()) {
                self.stats.local_hits += 1;
                ctx.count("client.cache_hit");
                if ctx.trace_active() {
                    ctx.trace_note(&format!("client.cache_hit:{target}"));
                }
                return Lookup::Cached(b);
            }
        }
        ctx.count("client.cache_miss");
        if ctx.trace_active() {
            ctx.trace_note(&format!("client.cache_miss:{target}"));
        }
        self.request(ctx, target, LegionValue::Loid(target))
    }

    /// Report that a binding failed in use (§4.1.4) and request a refresh
    /// through the `GetBinding(binding)` overload.
    pub fn report_stale(&mut self, ctx: &mut Ctx<'_>, stale: Binding) -> Lookup {
        ctx.count("client.stale_detected");
        if ctx.trace_active() {
            ctx.trace_note(&format!("client.stale_detected:{}", stale.loid));
        }
        self.stats.refreshes += 1;
        self.cache.invalidate_exact(&stale);
        let target = stale.loid;
        self.request(ctx, target, LegionValue::from(stale))
    }

    fn request(&mut self, ctx: &mut Ctx<'_>, target: Loid, arg: LegionValue) -> Lookup {
        self.stats.agent_requests += 1;
        let env = InvocationEnv::solo(self.me);
        let mut args = ctx.take_args();
        args.push(arg);
        match ctx.call(self.agent, target, GET_BINDING, args, env, Some(self.me)) {
            Some(id) => {
                self.pending.insert(id, target);
                Lookup::Requested(id)
            }
            None => {
                self.stats.failures += 1;
                Lookup::AgentUnreachable
            }
        }
    }

    /// Offer a reply message to the resolver. Returns `Some((target,
    /// result))` if the message answered one of our binding requests
    /// (the caller should not process it further); `None` otherwise.
    pub fn handle_reply(&mut self, msg: &Message) -> Option<(Loid, Result<Binding, String>)> {
        let Body::Reply {
            in_reply_to,
            result,
        } = &msg.body
        else {
            return None;
        };
        let target = self.pending.remove(in_reply_to)?;
        match protocol::binding_from_result(result) {
            Some(b) => {
                if self.cache_enabled {
                    self.cache.insert(b.clone());
                }
                Some((target, Ok(b)))
            }
            None => {
                self.stats.failures += 1;
                let err = match result {
                    Err(e) => e.clone(),
                    Ok(v) => format!("unexpected payload {v}"),
                };
                Some((target, Err(err)))
            }
        }
    }

    /// [`ClientResolver::handle_reply`] by value — the hot-path variant.
    /// On a match the reply's binding box is recycled into the kernel
    /// pool after one clone for the caller, and the cache is refreshed
    /// in place ([`BindingCache::insert_ref`]): one allocation per
    /// answered lookup in steady state instead of three. Returns the
    /// message untouched (`Err`) when it isn't one of ours.
    #[allow(clippy::result_large_err)] // Err is the unconsumed message, by design
    pub fn handle_reply_owned(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: Message,
    ) -> Result<(Loid, Result<Binding, String>), Message> {
        let Body::Reply { in_reply_to, .. } = &msg.body else {
            return Err(msg);
        };
        let Some(target) = self.pending.remove(in_reply_to) else {
            return Err(msg);
        };
        match msg.body {
            Body::Reply {
                result: Ok(LegionValue::Binding(shell)),
                ..
            } => {
                let b = (*shell).clone();
                if self.cache_enabled {
                    self.cache.insert_ref(&shell);
                }
                ctx.recycle_value(LegionValue::Binding(shell));
                Ok((target, Ok(b)))
            }
            Body::Reply { result, .. } => {
                self.stats.failures += 1;
                let err = match result {
                    Err(e) => e,
                    Ok(v) => {
                        let e = format!("unexpected payload {v}");
                        ctx.recycle_value(v);
                        e
                    }
                };
                Ok((target, Err(err)))
            }
            // The borrow-check prelude above returned `Err(msg)` for calls.
            Body::Call { .. } => unreachable!("checked to be a reply"),
        }
    }

    /// Insert a binding directly (e.g. received via `AddBinding`
    /// propagation or carried in another reply).
    pub fn learn(&mut self, binding: Binding) {
        self.cache.insert(binding);
    }

    /// Evict a binding (e.g. on a class's eager invalidation broadcast).
    pub fn forget(&mut self, loid: &Loid) {
        self.cache.invalidate(loid);
    }

    /// Number of requests awaiting replies.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}
