//! Stale-binding hygiene (paper §4.1.4).
//!
//! "Legion expects the presence of stale bindings ... When an object
//! attempts to communicate with an invalid Object Address, the Legion
//! communication layer of the object is expected to detect that it has
//! become invalid ... Some classes may even attempt to reduce the number
//! of stale bindings by explicitly propagating news of an object's
//! migration or removal."
//!
//! Detection and refresh live in [`crate::resolver::ClientResolver`] and
//! [`crate::agent::BindingAgentEndpoint`]; this module provides the
//! *eager propagation* helpers a class (or Magistrate) uses after a
//! migration or deletion, plus the positive variant — pushing a fresh
//! binding with `AddBinding` "to explicitly propagate binding information
//! for performance purposes" (§3.6).

use crate::protocol::{ADD_BINDING, INVALIDATE_BINDING};
use legion_core::address::ObjectAddressElement;
use legion_core::binding::Binding;
use legion_core::env::InvocationEnv;
use legion_core::loid::Loid;
use legion_core::value::LegionValue;
use legion_net::sim::Ctx;

/// Broadcast `InvalidateBinding(loid)` to the given Binding Agents.
/// Returns how many sends were accepted.
pub fn propagate_invalidation(
    ctx: &mut Ctx<'_>,
    sender: Loid,
    agents: &[ObjectAddressElement],
    stale: Loid,
) -> usize {
    let mut accepted = 0;
    for &agent in agents {
        let ok = ctx
            .call(
                agent,
                stale,
                INVALIDATE_BINDING,
                vec![LegionValue::Loid(stale)],
                InvocationEnv::solo(sender),
                Some(sender),
            )
            .is_some();
        if ok {
            accepted += 1;
        }
    }
    ctx.count_n("stale.invalidations_propagated", accepted as u64);
    accepted
}

/// Broadcast a fresh binding with `AddBinding` to the given agents
/// (post-migration push). Returns how many sends were accepted.
pub fn propagate_binding(
    ctx: &mut Ctx<'_>,
    sender: Loid,
    agents: &[ObjectAddressElement],
    fresh: &Binding,
) -> usize {
    let mut accepted = 0;
    for &agent in agents {
        let ok = ctx
            .call(
                agent,
                fresh.loid,
                ADD_BINDING,
                vec![LegionValue::from(fresh.clone())],
                InvocationEnv::solo(sender),
                Some(sender),
            )
            .is_some();
        if ok {
            accepted += 1;
        }
    }
    ctx.count_n("stale.bindings_propagated", accepted as u64);
    accepted
}
