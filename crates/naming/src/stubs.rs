//! Static protocol stubs: minimal class and LegionClass endpoints that
//! answer the naming protocol from fixed tables.
//!
//! The *real* class and LegionClass endpoints live in `legion-runtime`
//! (they cooperate with Magistrates to activate Inert objects). These
//! stubs serve the naming crate's tests and the naming-only benchmarks,
//! where every object is permanently Active and the interesting variable
//! is the resolution path itself. They still answer through the shared
//! dispatch layer, so their error behaviour matches the real endpoints.

use crate::protocol::{BindingArg, FIND_RESPONSIBLE, GET_BINDING};
use legion_core::binding::Binding;
use legion_core::fxmap::FxHashMap;
use legion_core::interface::ParamType;
use legion_core::loid::Loid;
use legion_core::value::LegionValue;
use legion_core::wellknown::{is_core_class, LEGION_CLASS};
use legion_net::dispatch::{serve, MethodTable, Outcome, TableBuilder};
use legion_net::message::Message;
use legion_net::sim::{Ctx, Endpoint};
use std::rc::Rc;

/// A class endpoint that answers `GetBinding` from a fixed table.
pub struct StaticClassEndpoint {
    /// The class object's own LOID.
    pub loid: Loid,
    /// The (frozen) logical-table view: object → binding.
    pub table: FxHashMap<Loid, Binding>,
    /// `GetBinding` requests served (per-component load, §5.2).
    pub requests: u64,
    dispatch: Rc<MethodTable<Self>>,
}

impl StaticClassEndpoint {
    /// A class endpoint with an empty table.
    pub fn new(loid: Loid) -> Self {
        StaticClassEndpoint {
            loid,
            table: FxHashMap::default(),
            requests: 0,
            dispatch: Self::dispatch_table(loid),
        }
    }

    /// Add a row.
    pub fn with(mut self, binding: Binding) -> Self {
        self.table.insert(binding.loid, binding);
        self
    }

    fn dispatch_table(loid: Loid) -> Rc<MethodTable<Self>> {
        TableBuilder::new("class", "StaticClass", loid)
            .get_interface()
            .method::<(BindingArg,), _>(
                GET_BINDING,
                &["target"],
                ParamType::Binding,
                |e: &mut Self, ctx, _msg, (arg,)| {
                    e.requests += 1;
                    ctx.count("class.get_binding");
                    Outcome::Reply(match e.table.get(&arg.loid()) {
                        Some(b) => Ok(ctx.binding_value(b)),
                        None => Err(format!("{}: unknown object {}", e.loid, arg.loid())),
                    })
                },
            )
            .seal()
    }
}

impl Endpoint for StaticClassEndpoint {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        if msg.is_reply() {
            return;
        }
        let table = Rc::clone(&self.dispatch);
        serve(&table, self, ctx, msg);
    }
}

/// A LegionClass endpoint answering `FindResponsible` and `GetBinding`
/// (for core classes and chain ends) from fixed tables.
pub struct StaticLegionClassEndpoint {
    /// created-class → creating-class responsibility pairs (§4.1.3).
    pub responsible: FxHashMap<Loid, Loid>,
    /// Bindings LegionClass itself maintains (core classes, and any class
    /// whose chain ends here).
    pub class_bindings: FxHashMap<Loid, Binding>,
    /// `FindResponsible` requests served.
    pub find_requests: u64,
    /// `GetBinding` requests served.
    pub binding_requests: u64,
    dispatch: Rc<MethodTable<Self>>,
}

impl Default for StaticLegionClassEndpoint {
    fn default() -> Self {
        Self::new()
    }
}

impl StaticLegionClassEndpoint {
    /// Empty tables.
    pub fn new() -> Self {
        StaticLegionClassEndpoint {
            responsible: FxHashMap::default(),
            class_bindings: FxHashMap::default(),
            find_requests: 0,
            binding_requests: 0,
            dispatch: Self::dispatch_table(),
        }
    }

    /// Record ⟨creator responsible-for created⟩.
    pub fn with_pair(mut self, created: Loid, creator: Loid) -> Self {
        self.responsible.insert(created, creator);
        self
    }

    /// Record a class binding LegionClass maintains itself.
    pub fn with_binding(mut self, b: Binding) -> Self {
        self.class_bindings.insert(b.loid, b);
        self
    }

    /// Total requests of both kinds (the §5.2.2 bottleneck measure).
    pub fn total_requests(&self) -> u64 {
        self.find_requests + self.binding_requests
    }

    fn dispatch_table() -> Rc<MethodTable<Self>> {
        TableBuilder::new("legion_class", "LegionClass", LEGION_CLASS)
            .get_interface()
            .method::<(Loid,), _>(
                FIND_RESPONSIBLE,
                &["target"],
                ParamType::Loid,
                |e: &mut Self, ctx, _msg, (target,)| {
                    e.find_requests += 1;
                    ctx.count("legion_class.find");
                    Outcome::Reply(if !target.is_class() {
                        Ok(LegionValue::Loid(target.class_loid()))
                    } else {
                        match e.responsible.get(&target) {
                            Some(creator) => Ok(LegionValue::Loid(*creator)),
                            None if is_core_class(&target) || target == LEGION_CLASS => {
                                Ok(LegionValue::Loid(LEGION_CLASS))
                            }
                            None => Err(format!("no responsibility pair for {target}")),
                        }
                    })
                },
            )
            .method::<(BindingArg,), _>(
                GET_BINDING,
                &["target"],
                ParamType::Binding,
                |e: &mut Self, ctx, _msg, (arg,)| {
                    e.binding_requests += 1;
                    ctx.count("legion_class.get_binding");
                    let l = arg.loid();
                    Outcome::Reply(match e.class_bindings.get(&l) {
                        Some(b) => Ok(ctx.binding_value(b)),
                        None => Err(format!("LegionClass has no binding for {l}")),
                    })
                },
            )
            .seal()
    }
}

impl Endpoint for StaticLegionClassEndpoint {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        if msg.is_reply() {
            return;
        }
        let table = Rc::clone(&self.dispatch);
        serve(&table, self, ctx, msg);
    }
}
