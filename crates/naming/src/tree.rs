//! k-ary Binding Agent trees (paper §5.2.2).
//!
//! "By constructing a k-ary tree of Binding Agents, eliminating traffic
//! from 'leaf' Binding Agents to LegionClass, we can arbitrarily reduce
//! the load placed on LegionClass. In essence, Binding Agents could be
//! organized to implement a software combining tree."
//!
//! This module is the pure topology arithmetic: node `0` is the root
//! (no parent, consults classes/LegionClass directly); node `i > 0` has
//! parent `(i - 1) / k`. Clients attach to the leaves. `legion-sim`
//! instantiates the actual endpoints from this shape.

use serde::{Deserialize, Serialize};

/// The shape of a k-ary agent tree with `count` nodes.
///
/// ```
/// use legion_naming::tree::TreeShape;
///
/// let t = TreeShape::new(2, 7); // a full binary tree
/// assert_eq!(t.parent(0), None);
/// assert_eq!(t.children(0), vec![1, 2]);
/// assert_eq!(t.leaves(), vec![3, 4, 5, 6]);
/// assert_eq!(t.path_to_root(6), vec![6, 2, 0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeShape {
    /// Branching factor (≥ 1).
    pub arity: usize,
    /// Total number of agents (≥ 1).
    pub count: usize,
}

impl TreeShape {
    /// A tree of `count` nodes with branching factor `arity`.
    pub fn new(arity: usize, count: usize) -> Self {
        TreeShape {
            arity: arity.max(1),
            count: count.max(1),
        }
    }

    /// A degenerate "tree": one root agent only.
    pub fn single() -> Self {
        TreeShape::new(1, 1)
    }

    /// Parent of node `i`, or `None` for the root.
    pub fn parent(&self, i: usize) -> Option<usize> {
        if i == 0 || i >= self.count {
            None
        } else {
            Some((i - 1) / self.arity)
        }
    }

    /// Children of node `i`.
    pub fn children(&self, i: usize) -> Vec<usize> {
        let first = i * self.arity + 1;
        (first..first + self.arity)
            .take_while(|&c| c < self.count)
            .collect()
    }

    /// Is node `i` a leaf?
    pub fn is_leaf(&self, i: usize) -> bool {
        i < self.count && self.children(i).is_empty()
    }

    /// The leaves, in index order. A single-node tree's root is its leaf.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.count).filter(|&i| self.is_leaf(i)).collect()
    }

    /// Depth of node `i` (root = 0).
    pub fn depth(&self, i: usize) -> usize {
        let mut d = 0;
        let mut cur = i;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Height of the tree (max depth).
    pub fn height(&self) -> usize {
        (0..self.count).map(|i| self.depth(i)).max().unwrap_or(0)
    }

    /// The path from node `i` to the root, inclusive.
    pub fn path_to_root(&self, i: usize) -> Vec<usize> {
        let mut path = vec![i];
        let mut cur = i;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Assign clients to leaves round-robin: which leaf serves client `c`
    /// out of `n_clients`?
    pub fn leaf_for_client(&self, c: usize) -> usize {
        let leaves = self.leaves();
        leaves[c % leaves.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_tree() {
        let t = TreeShape::single();
        assert_eq!(t.parent(0), None);
        assert!(t.is_leaf(0));
        assert_eq!(t.leaves(), vec![0]);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn binary_tree_of_seven() {
        let t = TreeShape::new(2, 7);
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.parent(2), Some(0));
        assert_eq!(t.parent(3), Some(1));
        assert_eq!(t.parent(6), Some(2));
        assert_eq!(t.children(0), vec![1, 2]);
        assert_eq!(t.children(1), vec![3, 4]);
        assert_eq!(t.children(3), Vec::<usize>::new());
        assert_eq!(t.leaves(), vec![3, 4, 5, 6]);
        assert_eq!(t.height(), 2);
        assert_eq!(t.path_to_root(6), vec![6, 2, 0]);
    }

    #[test]
    fn partial_last_level() {
        let t = TreeShape::new(4, 6); // root + 4 children + 1 grandchild
        assert_eq!(t.children(0), vec![1, 2, 3, 4]);
        assert_eq!(t.children(1), vec![5]);
        assert!(t.is_leaf(5));
        assert!(!t.is_leaf(1));
        assert_eq!(t.leaves(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn every_nonroot_has_smaller_parent() {
        for arity in 1..6 {
            for count in 1..50 {
                let t = TreeShape::new(arity, count);
                for i in 1..count {
                    let p = t.parent(i).unwrap();
                    assert!(p < i, "arity {arity} count {count} node {i}");
                }
                // All paths terminate at the root.
                for i in 0..count {
                    assert_eq!(*t.path_to_root(i).last().unwrap(), 0);
                }
            }
        }
    }

    #[test]
    fn out_of_range_nodes() {
        let t = TreeShape::new(2, 3);
        assert_eq!(t.parent(3), None);
        assert!(!t.is_leaf(3));
    }

    #[test]
    fn leaf_for_client_round_robins() {
        let t = TreeShape::new(2, 7);
        let leaves = t.leaves();
        for c in 0..20 {
            assert_eq!(t.leaf_for_client(c), leaves[c % leaves.len()]);
        }
    }

    #[test]
    fn height_shrinks_with_arity() {
        let narrow = TreeShape::new(2, 100);
        let wide = TreeShape::new(16, 100);
        assert!(wide.height() < narrow.height());
    }
}
