//! Property-based tests: the binding cache against a reference model, and
//! tree-shape invariants.

use legion_core::address::{ObjectAddress, ObjectAddressElement};
use legion_core::binding::Binding;
use legion_core::loid::Loid;
use legion_core::time::{Expiry, SimTime};
use legion_naming::cache::BindingCache;
use legion_naming::tree::TreeShape;
use proptest::prelude::*;
use std::collections::HashMap;

/// A slow but obviously-correct LRU+TTL reference: map + recency list.
#[derive(Default)]
struct ModelCache {
    capacity: usize,
    map: HashMap<Loid, Binding>,
    recency: Vec<Loid>, // most recent last
}

impl ModelCache {
    fn new(capacity: usize) -> Self {
        ModelCache {
            capacity: capacity.max(1),
            ..Default::default()
        }
    }

    fn touch(&mut self, loid: Loid) {
        self.recency.retain(|l| *l != loid);
        self.recency.push(loid);
    }

    fn get(&mut self, loid: &Loid, now: SimTime) -> Option<Binding> {
        let b = self.map.get(loid)?.clone();
        if !b.is_valid_at(now) {
            self.map.remove(loid);
            self.recency.retain(|l| l != loid);
            return None;
        }
        self.touch(*loid);
        Some(b)
    }

    fn insert(&mut self, b: Binding) {
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.map.entry(b.loid) {
            e.insert(b.clone());
            self.touch(b.loid);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.recency.remove(0);
            self.map.remove(&lru);
        }
        self.touch(b.loid);
        self.map.insert(b.loid, b);
    }

    fn invalidate(&mut self, loid: &Loid) -> Option<Binding> {
        let b = self.map.remove(loid)?;
        self.recency.retain(|l| l != loid);
        Some(b)
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert { key: u64, ep: u64, ttl: Option<u64> },
    Get { key: u64, now: u64 },
    Invalidate { key: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..32, any::<u64>(), proptest::option::of(1u64..1000))
            .prop_map(|(key, ep, ttl)| { Op::Insert { key, ep, ttl } }),
        (0u64..32, 0u64..2000).prop_map(|(key, now)| Op::Get { key, now }),
        (0u64..32).prop_map(|key| Op::Invalidate { key }),
    ]
}

fn binding(key: u64, ep: u64, ttl: Option<u64>) -> Binding {
    Binding {
        loid: Loid::instance(16, key + 1),
        address: ObjectAddress::single(ObjectAddressElement::sim(ep)),
        expiry: match ttl {
            None => Expiry::Never,
            Some(t) => Expiry::At(SimTime(t)),
        },
    }
}

proptest! {
    /// The slab LRU behaves exactly like the reference model under any
    /// operation sequence and any capacity.
    #[test]
    fn cache_matches_reference_model(
        capacity in 1usize..12,
        ops in proptest::collection::vec(arb_op(), 1..200),
    ) {
        let mut real = BindingCache::new(capacity);
        let mut model = ModelCache::new(capacity);
        for op in ops {
            match op {
                Op::Insert { key, ep, ttl } => {
                    let b = binding(key, ep, ttl);
                    real.insert(b.clone());
                    model.insert(b);
                }
                Op::Get { key, now } => {
                    let loid = Loid::instance(16, key + 1);
                    let now = SimTime(now);
                    prop_assert_eq!(real.get(&loid, now), model.get(&loid, now));
                }
                Op::Invalidate { key } => {
                    let loid = Loid::instance(16, key + 1);
                    prop_assert_eq!(real.invalidate(&loid), model.invalidate(&loid));
                }
            }
            prop_assert_eq!(real.len(), model.map.len());
            prop_assert!(real.len() <= capacity);
        }
    }

    /// The cache never returns an expired binding, whatever happened
    /// before.
    #[test]
    fn cache_never_serves_expired(
        ops in proptest::collection::vec(arb_op(), 1..100),
        probe_now in 0u64..3000,
    ) {
        let mut real = BindingCache::new(8);
        for op in ops {
            if let Op::Insert { key, ep, ttl } = op {
                real.insert(binding(key, ep, ttl));
            }
        }
        for key in 0..32u64 {
            let loid = Loid::instance(16, key + 1);
            if let Some(b) = real.get(&loid, SimTime(probe_now)) {
                prop_assert!(b.is_valid_at(SimTime(probe_now)));
            }
        }
    }

    /// Tree shapes: parents decrease, children invert parents, every path
    /// reaches the root, and leaves partition correctly.
    #[test]
    fn tree_shape_invariants(arity in 1usize..9, count in 1usize..80) {
        let t = TreeShape::new(arity, count);
        for i in 0..count {
            if let Some(p) = t.parent(i) {
                prop_assert!(p < i);
                prop_assert!(t.children(p).contains(&i));
            } else {
                prop_assert_eq!(i, 0);
            }
            prop_assert_eq!(*t.path_to_root(i).last().unwrap(), 0usize);
            prop_assert!(t.depth(i) <= t.height());
            prop_assert_eq!(t.is_leaf(i), t.children(i).is_empty());
        }
        // Children sets partition 1..count.
        let mut seen = vec![false; count];
        seen[0] = true;
        for i in 0..count {
            for c in t.children(i) {
                prop_assert!(!seen[c], "child {c} reached twice");
                seen[c] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|x| x));
        // Leaves are exactly the childless nodes.
        let leaves = t.leaves();
        prop_assert!(!leaves.is_empty());
        for &l in &leaves {
            prop_assert!(t.is_leaf(l));
        }
    }
}
