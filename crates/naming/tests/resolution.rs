//! End-to-end tests of the §4.1 binding protocol: client → Binding Agent
//! → (parent agents) → responsible class → LegionClass, with caching,
//! combining, refresh, and failure handling.

use legion_core::address::{ObjectAddress, ObjectAddressElement};
use legion_core::binding::Binding;
use legion_core::loid::Loid;
use legion_core::wellknown::LEGION_CLASS;
use legion_naming::agent::{AgentConfig, BindingAgentEndpoint};
use legion_naming::resolver::{ClientResolver, Lookup};
use legion_naming::stubs::{StaticClassEndpoint, StaticLegionClassEndpoint};
use legion_net::message::Message;
use legion_net::sim::{Ctx, Endpoint, EndpointId, SimKernel};
use legion_net::topology::{Location, Topology};
use legion_net::FaultPlan;

const FILE_CLASS_ID: u64 = 16;

fn file_class() -> Loid {
    Loid::class_object(FILE_CLASS_ID)
}

fn file(seq: u64) -> Loid {
    Loid::instance(FILE_CLASS_ID, seq)
}

fn sim_binding(loid: Loid, ep: EndpointId) -> Binding {
    Binding::forever(loid, ObjectAddress::single(ep.element()))
}

/// A test client that resolves a list of targets through its resolver and
/// records outcomes.
struct TestClient {
    resolver: ClientResolver,
    to_resolve: Vec<Loid>,
    resolved: Vec<(Loid, Result<Binding, String>)>,
}

impl TestClient {
    fn new(me: Loid, agent: ObjectAddressElement, targets: Vec<Loid>) -> Self {
        TestClient {
            resolver: ClientResolver::new(me, agent, 64),
            to_resolve: targets,
            resolved: Vec::new(),
        }
    }

    fn kick(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(t) = self.to_resolve.pop() {
            match self.resolver.lookup(ctx, t) {
                Lookup::Cached(b) => self.resolved.push((t, Ok(b))),
                Lookup::Requested(_) => break, // wait for the reply
                Lookup::AgentUnreachable => {
                    self.resolved.push((t, Err("agent unreachable".into())))
                }
            }
        }
    }
}

impl Endpoint for TestClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.kick(ctx);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        if let Some(done) = self.resolver.handle_reply(&msg) {
            self.resolved.push(done);
            self.kick(ctx);
        }
    }
}

/// World: LegionClass stub + one file class with `n_files` instances +
/// one Binding Agent (optionally a chain of agents) + helpers.
struct World {
    kernel: SimKernel,
    legion_class: EndpointId,
    class: EndpointId,
    agents: Vec<EndpointId>,
}

fn build_world(n_files: u64, agent_chain: usize, seed: u64) -> World {
    let mut kernel = SimKernel::new(
        Topology::fixed(1_000, 10_000, 1_000_000),
        FaultPlan::none(),
        seed,
    );

    // Object endpoints the bindings will point at (just echoes).
    struct Dummy;
    impl Endpoint for Dummy {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
    }

    // LegionClass lives in jurisdiction 0.
    let legion_class = kernel.add_endpoint(
        Box::new(StaticLegionClassEndpoint::new()),
        Location::new(0, 0),
        "LegionClass",
    );

    // The file class in jurisdiction 0, host 1.
    let mut class_ep = StaticClassEndpoint::new(file_class());
    for i in 1..=n_files {
        let obj = kernel.add_endpoint(Box::new(Dummy), Location::new(0, 2), format!("file{i}"));
        class_ep = class_ep.with(sim_binding(file(i), obj));
    }
    let class = kernel.add_endpoint(Box::new(class_ep), Location::new(0, 1), "FileClass");

    // Register the class binding with LegionClass (chain end: LegionClass
    // maintains bindings for classes whose pairs it holds — here we let
    // the stub hand the class binding out directly).
    {
        let lc = kernel
            .endpoint_mut::<StaticLegionClassEndpoint>(legion_class)
            .unwrap();
        lc.class_bindings
            .insert(file_class(), sim_binding(file_class(), class));
        lc.responsible.insert(file_class(), LEGION_CLASS);
    }

    // A chain of agents: agents[0] is the root (goes to classes), each
    // subsequent agent uses the previous as its parent.
    let mut agents = Vec::new();
    for i in 0..agent_chain {
        let loid = Loid::instance(5, i as u64 + 1);
        let mut cfg = AgentConfig::root(loid, legion_class.element());
        if i > 0 {
            cfg = cfg.with_parent(agents[i - 1]);
        }
        let id = kernel.add_endpoint(
            Box::new(BindingAgentEndpoint::new(cfg)),
            Location::new(0, 3 + i as u32),
            format!("agent{i}"),
        );
        agents.push(id.element());
    }
    let agents = agents
        .iter()
        .map(|e| EndpointId(e.sim_endpoint().unwrap()))
        .collect();

    World {
        kernel,
        legion_class,
        class,
        agents,
    }
}

fn add_client(world: &mut World, seq: u64, targets: Vec<Loid>) -> EndpointId {
    let agent = *world.agents.last().expect("at least one agent");
    world.kernel.add_endpoint(
        Box::new(TestClient::new(
            Loid::instance(99, seq),
            agent.element(),
            targets,
        )),
        Location::new(0, 50 + seq as u32),
        format!("client{seq}"),
    )
}

#[test]
fn full_path_resolution_instance() {
    let mut w = build_world(3, 1, 1);
    let client = add_client(&mut w, 1, vec![file(2)]);
    w.kernel.run_until_quiescent(10_000);
    let c = w.kernel.endpoint::<TestClient>(client).unwrap();
    assert_eq!(c.resolved.len(), 1);
    let (loid, result) = &c.resolved[0];
    assert_eq!(*loid, file(2));
    assert!(result.is_ok(), "{result:?}");
    // The class was consulted exactly once for the instance...
    let cls = w.kernel.endpoint::<StaticClassEndpoint>(w.class).unwrap();
    assert_eq!(cls.requests, 1);
    // ...and LegionClass twice: FindResponsible(class) + GetBinding(class).
    let lc = w
        .kernel
        .endpoint::<StaticLegionClassEndpoint>(w.legion_class)
        .unwrap();
    assert_eq!(lc.total_requests(), 2);
}

#[test]
fn second_lookup_hits_agent_cache() {
    let mut w = build_world(3, 1, 2);
    let c1 = add_client(&mut w, 1, vec![file(1)]);
    w.kernel.run_until_quiescent(10_000);
    let c2 = add_client(&mut w, 2, vec![file(1)]);
    w.kernel.run_until_quiescent(10_000);
    for c in [c1, c2] {
        let cl = w.kernel.endpoint::<TestClient>(c).unwrap();
        assert!(cl.resolved[0].1.is_ok());
    }
    // The class saw only the first request; the agent cache served c2.
    let cls = w.kernel.endpoint::<StaticClassEndpoint>(w.class).unwrap();
    assert_eq!(cls.requests, 1);
    assert_eq!(w.kernel.counters().get("ba.cache_hit"), 1);
}

#[test]
fn client_cache_serves_repeat_lookups_locally() {
    let mut w = build_world(1, 1, 3);
    // Same target twice: second comes from the client's own cache.
    let client = add_client(&mut w, 1, vec![file(1), file(1)]);
    w.kernel.run_until_quiescent(10_000);
    let c = w.kernel.endpoint::<TestClient>(client).unwrap();
    assert_eq!(c.resolved.len(), 2);
    assert!(c.resolved.iter().all(|(_, r)| r.is_ok()));
    assert_eq!(c.resolver.stats().local_hits, 1);
    assert_eq!(c.resolver.stats().agent_requests, 1);
}

#[test]
fn concurrent_requests_are_combined() {
    let mut w = build_world(1, 1, 4);
    // Five clients ask for the same file at the same instant.
    let clients: Vec<_> = (0..5)
        .map(|i| add_client(&mut w, i, vec![file(1)]))
        .collect();
    w.kernel.run_until_quiescent(100_000);
    for c in clients {
        let cl = w.kernel.endpoint::<TestClient>(c).unwrap();
        assert!(cl.resolved[0].1.is_ok());
    }
    // One upstream chain regardless of five concurrent waiters.
    let cls = w.kernel.endpoint::<StaticClassEndpoint>(w.class).unwrap();
    assert_eq!(cls.requests, 1);
    assert!(w.kernel.counters().get("ba.combined") >= 4);
}

#[test]
fn agent_chain_resolves_through_parents() {
    let mut w = build_world(2, 3, 5);
    let client = add_client(&mut w, 1, vec![file(2)]);
    w.kernel.run_until_quiescent(100_000);
    let c = w.kernel.endpoint::<TestClient>(client).unwrap();
    assert!(c.resolved[0].1.is_ok());
    // The leaf consulted its parent, which consulted the root.
    assert!(w.kernel.counters().get("ba.to_parent") >= 2);
    // Every agent along the path now caches the binding.
    for a in &w.agents {
        let agent = w.kernel.endpoint::<BindingAgentEndpoint>(*a).unwrap();
        assert!(agent.cache_len() >= 1, "agent should have cached");
    }
}

#[test]
fn unknown_object_fails_cleanly() {
    let mut w = build_world(1, 1, 6);
    let client = add_client(&mut w, 1, vec![file(99)]);
    w.kernel.run_until_quiescent(10_000);
    let c = w.kernel.endpoint::<TestClient>(client).unwrap();
    assert_eq!(c.resolved.len(), 1);
    assert!(c.resolved[0].1.is_err());
}

#[test]
fn unknown_class_fails_cleanly() {
    let mut w = build_world(1, 1, 7);
    // An instance of a class nobody registered.
    let stranger = Loid::instance(777, 1);
    let client = add_client(&mut w, 1, vec![stranger]);
    w.kernel.run_until_quiescent(10_000);
    let c = w.kernel.endpoint::<TestClient>(client).unwrap();
    assert!(c.resolved[0].1.is_err());
}

#[test]
fn class_object_lookup_via_responsibility() {
    let mut w = build_world(1, 1, 8);
    let client = add_client(&mut w, 1, vec![file_class()]);
    w.kernel.run_until_quiescent(10_000);
    let c = w.kernel.endpoint::<TestClient>(client).unwrap();
    let (loid, result) = &c.resolved[0];
    assert_eq!(*loid, file_class());
    let b = result.as_ref().unwrap();
    assert_eq!(b.loid, file_class());
}

#[test]
fn refresh_bypasses_caches_and_reaches_class() {
    let mut w = build_world(1, 2, 9);
    let client = add_client(&mut w, 1, vec![file(1)]);
    w.kernel.run_until_quiescent(100_000);

    // Simulate migration: the class's table now points at a new endpoint.
    struct Dummy;
    impl Endpoint for Dummy {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
    }
    let new_obj = w
        .kernel
        .add_endpoint(Box::new(Dummy), Location::new(0, 40), "file1-v2");
    let fresh = sim_binding(file(1), new_obj);
    {
        let cls = w
            .kernel
            .endpoint_mut::<StaticClassEndpoint>(w.class)
            .unwrap();
        cls.table.insert(file(1), fresh.clone());
    }

    // Client reports its old binding stale → refresh through the
    // GetBinding(binding) overload → straight to the class.
    let class_requests_before = w
        .kernel
        .endpoint::<StaticClassEndpoint>(w.class)
        .unwrap()
        .requests;
    let old = {
        let c = w.kernel.endpoint::<TestClient>(client).unwrap();
        c.resolved[0].1.clone().unwrap()
    };
    // Drive the refresh from a fresh client-side call: reuse the client's
    // resolver by sending it through kernel manipulation.
    struct Refresher {
        resolver: ClientResolver,
        stale: Option<Binding>,
        outcome: Option<Result<Binding, String>>,
    }
    impl Endpoint for Refresher {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let stale = self.stale.take().unwrap();
            self.resolver.report_stale(ctx, stale);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, msg: Message) {
            if let Some((_, r)) = self.resolver.handle_reply(&msg) {
                self.outcome = Some(r);
            }
        }
    }
    let leaf_agent = w.agents.last().unwrap().element();
    let refresher = w.kernel.add_endpoint(
        Box::new(Refresher {
            resolver: ClientResolver::new(Loid::instance(99, 9), leaf_agent, 8),
            stale: Some(old),
            outcome: None,
        }),
        Location::new(0, 41),
        "refresher",
    );
    w.kernel.run_until_quiescent(100_000);
    let r = w.kernel.endpoint::<Refresher>(refresher).unwrap();
    let got = r.outcome.clone().expect("refresh completed").expect("ok");
    assert_eq!(
        got.address, fresh.address,
        "refresh returned the new address"
    );
    let class_requests_after = w
        .kernel
        .endpoint::<StaticClassEndpoint>(w.class)
        .unwrap()
        .requests;
    assert!(
        class_requests_after > class_requests_before,
        "refresh must reach the class, not a cache"
    );
    assert!(w.kernel.counters().get("ba.refresh") >= 1);
}

#[test]
fn agent_with_disabled_cache_always_consults_class() {
    let mut kernel = SimKernel::new(Topology::zero(), FaultPlan::none(), 10);
    struct Dummy;
    impl Endpoint for Dummy {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
    }
    let legion_class = kernel.add_endpoint(
        Box::new(StaticLegionClassEndpoint::new()),
        Location::new(0, 0),
        "LegionClass",
    );
    let obj = kernel.add_endpoint(Box::new(Dummy), Location::new(0, 1), "obj");
    let class_ep = StaticClassEndpoint::new(file_class()).with(sim_binding(file(1), obj));
    let class = kernel.add_endpoint(Box::new(class_ep), Location::new(0, 1), "FileClass");
    {
        let lc = kernel
            .endpoint_mut::<StaticLegionClassEndpoint>(legion_class)
            .unwrap();
        lc.class_bindings
            .insert(file_class(), sim_binding(file_class(), class));
        lc.responsible.insert(file_class(), LEGION_CLASS);
    }

    let mut cfg = AgentConfig::root(Loid::instance(5, 1), legion_class.element());
    cfg.cache_enabled = false;
    let agent = kernel.add_endpoint(
        Box::new(BindingAgentEndpoint::new(cfg)),
        Location::new(0, 2),
        "agent",
    );

    for i in 0..3 {
        let client = kernel.add_endpoint(
            Box::new(TestClient::new(
                Loid::instance(99, i),
                agent.element(),
                vec![file(1)],
            )),
            Location::new(0, 3),
            format!("client{i}"),
        );
        kernel.run_until_quiescent(10_000);
        let c = kernel.endpoint::<TestClient>(client).unwrap();
        assert!(c.resolved[0].1.is_ok());
    }
    // Without a cache the class answers every time.
    let cls = kernel.endpoint::<StaticClassEndpoint>(class).unwrap();
    assert_eq!(cls.requests, 3);
    assert_eq!(kernel.counters().get("ba.cache_hit"), 0);
}

#[test]
fn timeouts_retry_and_eventually_fail() {
    // 100% loss between client's jurisdiction and the class's: the agent
    // (same jurisdiction as class) can't be reached by... actually drop
    // all traffic: every upstream request times out; waiters get an error.
    let mut w = build_world(1, 1, 11);
    w.kernel.faults_mut().set_drop_probability(1.0);
    let client = add_client(&mut w, 1, vec![file(1)]);
    // The client's GetBinding to the agent is itself silently lost, so the
    // client never hears back — drive long enough for agent-side timers
    // (none will fire: the agent never got the request).
    w.kernel
        .run_until(legion_core::time::SimTime::from_secs(10));
    let c = w.kernel.endpoint::<TestClient>(client).unwrap();
    assert!(
        c.resolved.is_empty(),
        "silent loss leaves the request pending"
    );
    assert_eq!(c.resolver.pending_count(), 1);

    // Now heal the network and let a fresh client resolve; then partition
    // only agent→class traffic... simpler: drop everything again but let
    // the request reach the agent first.
    w.kernel.faults_mut().set_drop_probability(0.0);
    let client2 = add_client(&mut w, 2, vec![file(1)]);
    w.kernel.run_until_quiescent(100_000);
    let c2 = w.kernel.endpoint::<TestClient>(client2).unwrap();
    assert!(c2.resolved[0].1.is_ok());
}

#[test]
fn agent_timeout_fails_waiters_when_class_dies_midway() {
    let mut w = build_world(1, 1, 12);
    // Kill the class before anyone resolves: LegionClass still hands out
    // the (now stale) class binding; the agent's send to the class is
    // refused; after retries the agent reports failure.
    w.kernel.remove_endpoint(w.class);
    let client = add_client(&mut w, 1, vec![file(1)]);
    w.kernel
        .run_until(legion_core::time::SimTime::from_secs(30));
    let c = w.kernel.endpoint::<TestClient>(client).unwrap();
    assert_eq!(c.resolved.len(), 1);
    assert!(c.resolved[0].1.is_err());
}

#[test]
fn deterministic_given_seed() {
    let run = |seed: u64| {
        let mut w = build_world(5, 2, seed);
        for i in 0..4 {
            add_client(&mut w, i, vec![file(1 + i % 5), file(1), file_class()]);
        }
        w.kernel.run_until_quiescent(1_000_000);
        (
            w.kernel.now(),
            w.kernel.stats().delivered,
            w.kernel.counters().get("ba.cache_hit"),
            w.kernel.counters().get("ba.cache_miss"),
        )
    };
    assert_eq!(run(77), run(77));
}

#[test]
fn add_binding_propagation_preseeds_agent() {
    // §3.6: AddBinding "can be used ... to explicitly propagate binding
    // information for performance purposes."
    let mut w = build_world(1, 1, 13);
    let agent = w.agents[0];
    // Learn the object's true binding from the class, then push it to the
    // agent before any client asks.
    let cls = w.kernel.endpoint::<StaticClassEndpoint>(w.class).unwrap();
    let b = cls.table.get(&file(1)).unwrap().clone();
    #[derive(Default)]
    struct Pusher {
        binding: Option<Binding>,
        agent: Option<legion_core::address::ObjectAddressElement>,
    }
    impl Endpoint for Pusher {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let b = self.binding.take().unwrap();
            legion_naming::stale::propagate_binding(
                ctx,
                Loid::instance(99, 99),
                &[self.agent.unwrap()],
                &b,
            );
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
    }
    w.kernel.add_endpoint(
        Box::new(Pusher {
            binding: Some(b),
            agent: Some(agent.element()),
        }),
        Location::new(0, 60),
        "pusher",
    );
    w.kernel.run_until_quiescent(10_000);
    // Now a client lookup is served from the agent cache without any
    // class traffic.
    let class_before = w
        .kernel
        .endpoint::<StaticClassEndpoint>(w.class)
        .unwrap()
        .requests;
    let client = add_client(&mut w, 1, vec![file(1)]);
    w.kernel.run_until_quiescent(10_000);
    let c = w.kernel.endpoint::<TestClient>(client).unwrap();
    assert!(c.resolved[0].1.is_ok());
    let class_after = w
        .kernel
        .endpoint::<StaticClassEndpoint>(w.class)
        .unwrap()
        .requests;
    assert_eq!(class_before, class_after, "AddBinding preseeded the cache");
    assert_eq!(w.kernel.counters().get("stale.bindings_propagated"), 1);
}

#[test]
fn invalidate_binding_both_overloads_on_the_wire() {
    let mut w = build_world(1, 1, 14);
    let agent = w.agents[0];
    // Warm the agent's cache.
    let client = add_client(&mut w, 1, vec![file(1)]);
    w.kernel.run_until_quiescent(10_000);
    let binding = w.kernel.endpoint::<TestClient>(client).unwrap().resolved[0]
        .1
        .clone()
        .unwrap();
    assert_eq!(
        w.kernel
            .endpoint::<BindingAgentEndpoint>(agent)
            .unwrap()
            .cache_len(),
        2
    );

    // Exact-overload with a WRONG address: must not evict.
    #[derive(Default)]
    struct Invalidator {
        agent: Option<legion_core::address::ObjectAddressElement>,
        arg: Option<legion_core::value::LegionValue>,
        done: bool,
    }
    impl Endpoint for Invalidator {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let id = ctx.fresh_call_id();
            let mut msg = Message::call(
                id,
                Loid::instance(5, 1),
                legion_naming::protocol::INVALIDATE_BINDING,
                vec![self.arg.take().unwrap()],
                legion_core::env::InvocationEnv::anonymous(),
            );
            msg.reply_to = Some(ctx.self_element());
            ctx.send(self.agent.unwrap(), msg);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {
            self.done = true;
        }
    }
    let mut wrong = binding.clone();
    wrong.address = legion_core::address::ObjectAddress::single(
        legion_core::address::ObjectAddressElement::sim(4040),
    );
    let inv1 = w.kernel.add_endpoint(
        Box::new(Invalidator {
            agent: Some(agent.element()),
            arg: Some(legion_core::value::LegionValue::from(wrong)),
            done: false,
        }),
        Location::new(0, 61),
        "inv1",
    );
    w.kernel.run_until_quiescent(10_000);
    assert!(w.kernel.endpoint::<Invalidator>(inv1).unwrap().done);
    assert_eq!(
        w.kernel
            .endpoint::<BindingAgentEndpoint>(agent)
            .unwrap()
            .cache_len(),
        2,
        "mismatched exact-invalidate leaves the cache alone"
    );

    // LOID overload: evicts.
    let inv2 = w.kernel.add_endpoint(
        Box::new(Invalidator {
            agent: Some(agent.element()),
            arg: Some(legion_core::value::LegionValue::Loid(file(1))),
            done: false,
        }),
        Location::new(0, 62),
        "inv2",
    );
    w.kernel.run_until_quiescent(10_000);
    assert!(w.kernel.endpoint::<Invalidator>(inv2).unwrap().done);
    assert_eq!(
        w.kernel
            .endpoint::<BindingAgentEndpoint>(agent)
            .unwrap()
            .cache_len(),
        1,
        "LOID invalidate evicted the object binding"
    );
}

#[test]
fn agent_rejects_malformed_requests_on_the_wire() {
    let mut w = build_world(1, 1, 15);
    let agent = w.agents[0];
    #[derive(Default)]
    struct BadCaller {
        agent: Option<legion_core::address::ObjectAddressElement>,
        errors: Vec<String>,
    }
    impl Endpoint for BadCaller {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for (method, args) in [
                (legion_naming::protocol::GET_BINDING, vec![]),
                (
                    legion_naming::protocol::ADD_BINDING,
                    vec![legion_core::value::LegionValue::Uint(1)],
                ),
                (legion_core::symbol::Sym::intern("TotallyBogus"), vec![]),
            ] {
                let id = ctx.fresh_call_id();
                let mut msg = Message::call(
                    id,
                    Loid::instance(5, 1),
                    method,
                    args,
                    legion_core::env::InvocationEnv::anonymous(),
                );
                msg.reply_to = Some(ctx.self_element());
                ctx.send(self.agent.unwrap(), msg);
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, msg: Message) {
            if let legion_net::message::Body::Reply { result: Err(e), .. } = msg.body {
                self.errors.push(e);
            }
        }
    }
    let bad = w.kernel.add_endpoint(
        Box::new(BadCaller {
            agent: Some(agent.element()),
            errors: vec![],
        }),
        Location::new(0, 63),
        "bad-caller",
    );
    w.kernel.run_until_quiescent(10_000);
    let errors = &w.kernel.endpoint::<BadCaller>(bad).unwrap().errors;
    assert_eq!(
        errors.len(),
        3,
        "every malformed request got an error reply: {errors:?}"
    );
}
