//! Deterministic admission control for overloadable endpoints.
//!
//! The simulation's handlers run in zero virtual time, so a kernel
//! endpoint has no *natural* saturation point — demand past capacity
//! would simply be absorbed, and "overload" could never be observed.
//! Admission control therefore doubles as the endpoint's **service
//! model**: an [`AdmissionQueue`] is a single deterministic server that
//! takes [`service_ns`](AdmissionConfig::service_ns) of virtual time per
//! admitted call (an M/D/1-style queue over the arrival process), with a
//! hard bound of [`queue_depth`](AdmissionConfig::queue_depth) calls
//! waiting or in service. Offers past the bound are **shed** with a
//! retry-after hint — the time until the backlog drops back below the
//! admission threshold — which callers honor instead of their own blind
//! backoff schedule (`CoreError::Overloaded` on the wire).
//!
//! The ledger is three integers: the virtual time the server frees, plus
//! shed/admitted counters. It stores **no per-request state** — backlog
//! is derived arithmetic over arrival times, so the admission path is
//! O(1), allocation-free, and trivially bit-deterministic (a pure
//! function of the offered arrival-time sequence). `tools/lint_hotpath.sh`
//! pins the no-collections property.

use serde::{Deserialize, Serialize};

/// Capacity model for one endpoint.
///
/// Saturation throughput is `1e9 / service_ns` calls per virtual second;
/// the worst admitted call waits `queue_depth * service_ns` before its
/// reply is due.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Deterministic service time per admitted call, virtual ns (≥ 1).
    pub service_ns: u64,
    /// Maximum calls waiting or in service before offers shed (≥ 1).
    pub queue_depth: u64,
}

impl AdmissionConfig {
    /// The saturation rate this config models, calls per virtual second.
    pub fn saturation_per_sec(&self) -> f64 {
        1e9 / self.service_ns.max(1) as f64
    }
}

/// The verdict for one offered call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted: service completes `delay_ns` after the offer (queue
    /// wait plus service time). The endpoint replies at that instant.
    Admit {
        /// Queue wait + service time, virtual ns.
        delay_ns: u64,
    },
    /// Shed: the queue budget is full. Retry no sooner than
    /// `retry_after_ns` from now, when a slot is due to free.
    Shed {
        /// Server's backoff hint, virtual ns (≥ 1).
        retry_after_ns: u64,
    },
}

/// The per-endpoint admission ledger: a deterministic single server with
/// a bounded virtual queue. See the module docs for the model.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionQueue {
    cfg: AdmissionConfig,
    /// Virtual time at which all admitted work is done.
    busy_until_ns: u64,
    admitted: u64,
    shed: u64,
    /// High-water mark of calls waiting or in service at any offer.
    peak_backlog: u64,
}

impl AdmissionQueue {
    /// An idle ledger (service time and depth clamped to ≥ 1).
    pub fn new(mut cfg: AdmissionConfig) -> Self {
        cfg.service_ns = cfg.service_ns.max(1);
        cfg.queue_depth = cfg.queue_depth.max(1);
        AdmissionQueue {
            cfg,
            busy_until_ns: 0,
            admitted: 0,
            shed: 0,
            peak_backlog: 0,
        }
    }

    /// The configured capacity model.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Offer one call arriving at virtual time `now_ns`. Callers must
    /// offer in non-decreasing time order (the kernel delivers in order).
    pub fn offer(&mut self, now_ns: u64) -> Admission {
        let outstanding_ns = self.busy_until_ns.saturating_sub(now_ns);
        // Calls waiting or in service: each occupies service_ns of the
        // outstanding busy window (ceiling — a partially served call
        // still holds its slot).
        let backlog = outstanding_ns.div_ceil(self.cfg.service_ns);
        if backlog >= self.cfg.queue_depth {
            self.shed += 1;
            // When the backlog drains below the threshold a retry can be
            // admitted: the wait until only queue_depth - 1 slots remain.
            let threshold_ns = (self.cfg.queue_depth - 1) * self.cfg.service_ns;
            let retry_after_ns = outstanding_ns.saturating_sub(threshold_ns).max(1);
            return Admission::Shed { retry_after_ns };
        }
        self.peak_backlog = self.peak_backlog.max(backlog + 1);
        self.admitted += 1;
        let delay_ns = outstanding_ns + self.cfg.service_ns;
        self.busy_until_ns = now_ns + delay_ns;
        Admission::Admit { delay_ns }
    }

    /// Calls admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Calls shed so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// High-water mark of concurrent backlog (waiting + in service)
    /// observed at admission time. Bounded by `queue_depth` by
    /// construction — the "no unbounded queue" invariant in one number.
    pub fn peak_backlog(&self) -> u64 {
        self.peak_backlog
    }

    /// Backlog outstanding at `now_ns` (waiting + in service).
    pub fn backlog_at(&self, now_ns: u64) -> u64 {
        self.busy_until_ns
            .saturating_sub(now_ns)
            .div_ceil(self.cfg.service_ns)
    }

    /// Is the server idle at `now_ns`?
    pub fn idle_at(&self, now_ns: u64) -> bool {
        self.busy_until_ns <= now_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(service_ns: u64, queue_depth: u64) -> AdmissionQueue {
        AdmissionQueue::new(AdmissionConfig {
            service_ns,
            queue_depth,
        })
    }

    #[test]
    fn idle_server_admits_with_service_delay() {
        let mut a = q(100, 4);
        assert_eq!(a.offer(1_000), Admission::Admit { delay_ns: 100 });
        assert_eq!(a.admitted(), 1);
        assert_eq!(a.shed(), 0);
        assert_eq!(a.backlog_at(1_000), 1);
        assert!(a.idle_at(1_100));
    }

    #[test]
    fn backlog_accumulates_queueing_delay() {
        let mut a = q(100, 4);
        // Four simultaneous arrivals: delays 100, 200, 300, 400.
        for i in 1..=4u64 {
            assert_eq!(a.offer(0), Admission::Admit { delay_ns: i * 100 });
        }
        assert_eq!(a.peak_backlog(), 4);
    }

    #[test]
    fn full_queue_sheds_with_honest_hint() {
        let mut a = q(100, 4);
        for _ in 0..4 {
            a.offer(0);
        }
        // Fifth arrival at t=0: backlog 4 ≥ depth 4 → shed. The hint is
        // the wait until backlog drops below 4: 400 - 300 = 100 ns.
        assert_eq!(
            a.offer(0),
            Admission::Shed {
                retry_after_ns: 100
            }
        );
        assert_eq!(a.shed(), 1);
        // Retrying exactly at the hint is admitted.
        assert_eq!(a.offer(100), Admission::Admit { delay_ns: 400 });
        assert_eq!(a.peak_backlog(), 4, "shed offers never grow the queue");
    }

    #[test]
    fn queue_drains_in_virtual_time() {
        let mut a = q(100, 2);
        a.offer(0);
        a.offer(0);
        assert!(matches!(a.offer(0), Admission::Shed { .. }));
        // After both services complete the server is idle again.
        assert_eq!(a.backlog_at(200), 0);
        assert_eq!(a.offer(200), Admission::Admit { delay_ns: 100 });
    }

    #[test]
    fn sub_saturation_stream_never_sheds() {
        // Arrivals every 200 ns against a 100 ns server: always idle.
        let mut a = q(100, 2);
        for i in 0..1000u64 {
            match a.offer(i * 200) {
                Admission::Admit { delay_ns } => assert_eq!(delay_ns, 100),
                Admission::Shed { .. } => panic!("shed below saturation"),
            }
        }
        assert_eq!(a.peak_backlog(), 1);
    }

    #[test]
    fn oversaturated_stream_bounds_backlog_and_sheds_the_excess() {
        // 2× saturation: arrivals every 50 ns against a 100 ns server.
        let mut a = q(100, 8);
        for i in 0..1000u64 {
            a.offer(i * 50);
        }
        assert!(
            a.peak_backlog() <= 8,
            "backlog {} > depth",
            a.peak_backlog()
        );
        // Offered 1000 in 50 µs; capacity is 500 + the queue: the rest shed.
        assert!(a.shed() >= 400, "shed only {}", a.shed());
        assert!(a.admitted() >= 500);
        assert_eq!(a.admitted() + a.shed(), 1000);
    }

    #[test]
    fn degenerate_config_is_clamped() {
        let mut a = q(0, 0);
        assert_eq!(a.config().service_ns, 1);
        assert_eq!(a.config().queue_depth, 1);
        assert_eq!(a.offer(0), Admission::Admit { delay_ns: 1 });
        let Admission::Shed { retry_after_ns } = a.offer(0) else {
            panic!("depth-1 queue must shed the second simultaneous offer");
        };
        assert!(retry_after_ns >= 1);
    }

    #[test]
    fn saturation_rate_is_reciprocal_service_time() {
        let cfg = AdmissionConfig {
            service_ns: 250_000,
            queue_depth: 4,
        };
        assert!((cfg.saturation_per_sec() - 4000.0).abs() < 1e-9);
    }
}
