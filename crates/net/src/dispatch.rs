//! Transport binding for the unified invocation layer.
//!
//! [`legion_core::dispatch`] owns the model half of method dispatch —
//! signatures, typed argument codecs, uniform errors, verdicts, and the
//! generic method-table / continuation stores. This module instantiates
//! those generics with the transport types (`Message`, [`Ctx`], `CallId`)
//! and drives the per-message flow every endpoint shares:
//!
//! 1. replies are routed to the endpoint's [`Continuations`] store;
//! 2. a call with **no method name** is *dead-lettered* — counted and
//!    annotated, never silently dropped;
//! 3. unknown methods and signature mismatches are answered with the
//!    uniform `CoreError` rendering;
//! 4. the MayI gate (§2.4) runs once here, for every gated method of
//!    every endpoint — with the heartbeat bypass expressed as an
//!    *ungated, one-way* registration rather than endpoint-specific code;
//! 5. the span annotation `(method, verdict)` is recorded at this
//!    boundary. The kernel's per-delivery span already carries the method
//!    name, so the boundary only adds an explicit `dispatch.…` note for
//!    non-`allowed` verdicts — keeping same-seed traces of healthy runs
//!    byte-identical while making every refusal visible.
//!
//! Endpoints register methods against a [`TableBuilder`] at construction
//! and keep the sealed table in an `Rc`; `on_message` becomes a call to
//! [`serve`] plus a continuation take for replies.

use crate::message::{Body, CallId, Message};
use crate::sim::{Ctx, FlightKind};
use legion_core::dispatch::{
    self as model, FromArg, FromArgs, InvocationGate, MethodTable as ModelTable, Verdict,
};
use legion_core::error::CoreError;
use legion_core::idl;
use legion_core::interface::{Interface, MethodSignature, ParamType};
use legion_core::loid::Loid;
use legion_core::symbol::{self, Sym};
use legion_core::value::LegionValue;
use std::rc::Rc;

/// What a method handler tells the dispatch boundary to do next.
pub enum Outcome {
    /// Reply with this result now.
    Reply(Result<LegionValue, String>),
    /// The handler started asynchronous work (registered a continuation
    /// or forwarded the call); a reply is sent later, by someone else.
    Pending,
    /// One-way by design (heartbeats): no reply, ever.
    NoReply,
    /// Internal: the typed codec rejected the arguments (the uniform
    /// signature-mismatch error, pre-rendered). Produced by the codec
    /// wrapper, not by user handlers.
    Invalid(String),
}

/// A type-erased method handler bound to endpoint type `E`.
pub type Handler<E> = Box<dyn Fn(&mut E, &mut Ctx<'_>, &Message, &[LegionValue]) -> Outcome>;

/// A continuation awaiting the reply to one outbound call.
pub type Continuation<E> = Box<dyn FnOnce(&mut E, &mut Ctx<'_>, Result<LegionValue, String>)>;

/// The shared call-id → continuation store, keyed by [`CallId`].
pub type Continuations<E> = model::Continuations<CallId, Continuation<E>>;

/// Box a plain continuation closure.
pub fn cont<E, F>(f: F) -> Continuation<E>
where
    F: FnOnce(&mut E, &mut Ctx<'_>, Result<LegionValue, String>) + 'static,
{
    Box::new(f)
}

/// Box a *typed* continuation: the reply payload is decoded to `T` before
/// the closure runs; a payload of the wrong type becomes an `Err`.
pub fn cont_expecting<E, T: FromArg, F>(f: F) -> Continuation<E>
where
    F: FnOnce(&mut E, &mut Ctx<'_>, Result<T, String>) + 'static,
{
    Box::new(move |e, ctx, r| {
        let typed = match r {
            Err(err) => Err(err),
            Ok(v) => T::from_value(&v).ok_or_else(|| format!("unexpected payload {v}")),
        };
        f(e, ctx, typed)
    })
}

/// Timer tag endpoints reserve for their continuation deadline sweep.
/// High in the tag space, so it never collides with protocol timers or
/// with naming-agent per-call tags (raw call ids, which count up from 1).
pub const TIMER_DEADLINE_SWEEP: u64 = 0x4444_4c53_5745_4550; // "DDLSWEEP"

/// The uniform timeout rendering a deadline sweep substitutes for a reply
/// that never came ([`CoreError::Timeout`] on the wire).
pub fn timeout_error(after_ns: u64) -> String {
    CoreError::Timeout { after_ns }.to_string()
}

/// Does `err` carry the uniform timeout rendering? Continuations that
/// retry on timeout (but fail fast on typed errors) branch on this.
pub fn is_timeout(err: &str) -> bool {
    err.starts_with("call timed out after ")
}

/// The uniform load-shed rendering an overloaded endpoint substitutes
/// for service ([`CoreError::Overloaded`] on the wire). The hint tells
/// the caller when a queue slot is expected to free.
pub fn overload_error(retry_after_ns: u64) -> String {
    CoreError::Overloaded { retry_after_ns }.to_string()
}

/// Parse the uniform overload rendering back out of a reply error,
/// returning the server's retry-after hint in virtual ns. Clients that
/// honor server backpressure (instead of their own backoff schedule)
/// branch on this — the counterpart of [`is_timeout`].
pub fn is_overloaded(err: &str) -> Option<u64> {
    let rest = err.strip_prefix("server overloaded, retry after ")?;
    rest.strip_suffix("ns")?.parse().ok()
}

/// Register a continuation under the endpoint's deadline policy.
///
/// With `deadline_ns = None` the endpoint waits forever (the historical
/// behavior — no timer events are created, so fault-free runs are
/// untouched). With `Some(d)`, the continuation is recorded with deadline
/// `now + d` and a sweep timer is armed `d` from now with `timer_tag`
/// (usually [`TIMER_DEADLINE_SWEEP`]); the endpoint's `on_timer` then
/// calls [`sweep_expired`].
pub fn insert_pending<E>(
    conts: &mut Continuations<E>,
    ctx: &mut Ctx<'_>,
    id: CallId,
    k: Continuation<E>,
    deadline_ns: Option<u64>,
    timer_tag: u64,
) {
    match deadline_ns {
        None => {
            conts.insert(id, k);
        }
        Some(d) => {
            conts.insert_with_deadline(id, k, ctx.now().saturating_add(d));
            ctx.set_timer(d, timer_tag);
        }
    }
}

/// The deadline sweep: resolve every overdue continuation with the
/// uniform timeout error ([`timeout_error`]). Returns how many expired.
///
/// Each expiry bumps the `net.timeout_expired` counter (surfaced as
/// [`MetricsSnapshot::timeouts_expired`](crate::metrics::MetricsSnapshot))
/// and records a `Timeout` flight event carrying the expired call id; a
/// sweep that fired dumps the recorder tail to stderr unless
/// [`SimKernel::set_flight_dump_on_sweep`](crate::sim::SimKernel::set_flight_dump_on_sweep)
/// turned that off — both allocation-free on the no-expiry path.
///
/// `conts` is an accessor (not a borrow) so each continuation can receive
/// `&mut E` without aliasing the store.
pub fn sweep_expired<E>(
    endpoint: &mut E,
    ctx: &mut Ctx<'_>,
    conts: fn(&mut E) -> &mut Continuations<E>,
    after_ns: u64,
) -> usize {
    let due = conts(endpoint).take_expired(ctx.now());
    let n = due.len();
    if n > 0 {
        ctx.count_n_sym(symbol::NET_TIMEOUT_EXPIRED, n as u64);
    }
    for (id, k) in due {
        ctx.flight(FlightKind::Timeout, symbol::NET_TIMEOUT_EXPIRED, id.0);
        k(endpoint, ctx, Err(timeout_error(after_ns)));
    }
    if n > 0 && ctx.flight_dump_on_sweep() {
        ctx.dump_flight("deadline sweep expired continuations", SWEEP_DUMP_TAIL);
    }
    n
}

/// How many recorder-tail events a fired deadline sweep dumps.
const SWEEP_DUMP_TAIL: usize = 16;

/// If `msg` is a reply, yield the call-id it answers. Endpoints use this
/// to route replies into their [`Continuations`] store before serving.
pub fn reply_id(msg: &Message) -> Option<CallId> {
    match &msg.body {
        Body::Reply { in_reply_to, .. } => Some(*in_reply_to),
        Body::Call { .. } => None,
    }
}

/// The reply payload, for messages [`reply_id`] matched.
pub fn reply_result(msg: &Message) -> Result<LegionValue, String> {
    match &msg.body {
        Body::Reply { result, .. } => result.clone(),
        Body::Call { .. } => Err("not a reply".into()),
    }
}

/// [`reply_result`] without the clone: consumes the message and moves the
/// payload out. Continuation-resume paths use this so the reply value
/// changes owners instead of being copied (and so the consumer can
/// recycle its shell through [`Ctx::recycle_value`] when done).
pub fn take_reply_result(msg: Message) -> Result<LegionValue, String> {
    match msg.body {
        Body::Reply { result, .. } => result,
        Body::Call { .. } => Err("not a reply".into()),
    }
}

/// A sealed per-endpoint method table: the model-layer registry plus the
/// derived interface (rendered once) and the gate accessor.
pub struct MethodTable<E> {
    inner: ModelTable<Handler<E>>,
    gate: Option<fn(&E) -> &dyn InvocationGate>,
    prefix: &'static str,
    interface: Interface,
    interface_idl: String,
    intrinsic_get_interface: bool,
}

impl<E> MethodTable<E> {
    /// The interface derived from the registered methods — exactly what
    /// `GetInterface()` replies (§3.4).
    pub fn interface(&self) -> &Interface {
        &self.interface
    }

    /// The rendered IDL of [`MethodTable::interface`].
    pub fn interface_idl(&self) -> &str {
        &self.interface_idl
    }

    /// The counter namespace (`magistrate`, `host`, …).
    pub fn prefix(&self) -> &'static str {
        self.prefix
    }

    /// The registered signature of `method`, if any. Probes via
    /// [`Sym::try_lookup`], so asking about arbitrary names never grows
    /// the interner.
    pub fn signature(&self, method: &str) -> Option<&MethodSignature> {
        let sym = Sym::try_lookup(method)?;
        self.inner.get(sym).map(|e| e.signature())
    }
}

/// Builds a [`MethodTable`]: registration happens in the endpoint's
/// constructor, `seal()` derives the interface and freezes the table.
pub struct TableBuilder<E> {
    name: String,
    inner: ModelTable<Handler<E>>,
    gate: Option<fn(&E) -> &dyn InvocationGate>,
    prefix: &'static str,
    intrinsic_get_interface: bool,
}

impl<E> TableBuilder<E> {
    /// A builder for an endpoint whose derived interface is rendered as
    /// `interface name` and whose counters live under `prefix.…`;
    /// `owner` is the provenance LOID recorded on interface entries.
    pub fn new(prefix: &'static str, name: impl Into<String>, owner: Loid) -> Self {
        TableBuilder {
            name: name.into(),
            inner: ModelTable::new(owner),
            gate: None,
            prefix,
            intrinsic_get_interface: false,
        }
    }

    /// Install the MayI gate accessor: given the endpoint, return its
    /// gate. Gated methods are checked here, at the boundary, once.
    pub fn gate(mut self, f: fn(&E) -> &dyn InvocationGate) -> Self {
        self.gate = Some(f);
        self
    }

    fn push<A: FromArgs + 'static, F>(mut self, sig: MethodSignature, gated: bool, f: F) -> Self
    where
        F: Fn(&mut E, &mut Ctx<'_>, &Message, A) -> Outcome + 'static,
    {
        let err_sig = sig.clone();
        let handler: Handler<E> = Box::new(move |e, ctx, msg, args| match A::from_args(args) {
            Ok(a) => f(e, ctx, msg, a),
            Err(err) => Outcome::Invalid(model::mismatch(&err_sig, err).to_string()),
        });
        self.inner.define(sig, gated, handler);
        self
    }

    /// Register a gated method. `A` (a [`FromArgs`] type) both decodes the
    /// arguments and publishes the parameter types of the signature.
    pub fn method<A: FromArgs + 'static, F>(
        self,
        name: impl Into<Sym>,
        param_names: &[&str],
        returns: ParamType,
        f: F,
    ) -> Self
    where
        F: Fn(&mut E, &mut Ctx<'_>, &Message, A) -> Outcome + 'static,
    {
        let sig = model::signature_of::<A>(name.into().as_str(), param_names, returns);
        self.push(sig, true, f)
    }

    /// Register an *ungated* method — exempt from the MayI check. Used
    /// for `MayI` itself and for the heartbeat bypass.
    pub fn ungated_method<A: FromArgs + 'static, F>(
        self,
        name: impl Into<Sym>,
        param_names: &[&str],
        returns: ParamType,
        f: F,
    ) -> Self
    where
        F: Fn(&mut E, &mut Ctx<'_>, &Message, A) -> Outcome + 'static,
    {
        let sig = model::signature_of::<A>(name.into().as_str(), param_names, returns);
        self.push(sig, false, f)
    }

    /// Register a method under an explicit signature (when the published
    /// signature differs from `A::params()`, e.g. the paper's overloaded
    /// `GetBinding(LOID|binding)`).
    pub fn method_with_signature<A: FromArgs + 'static, F>(
        self,
        sig: MethodSignature,
        gated: bool,
        f: F,
    ) -> Self
    where
        F: Fn(&mut E, &mut Ctx<'_>, &Message, A) -> Outcome + 'static,
    {
        self.push(sig, gated, f)
    }

    /// Register the intrinsic `GetInterface()`: answered by the table
    /// itself with the interface derived from every registered method —
    /// including this one — so the published interface can never drift
    /// from the dispatch table.
    pub fn get_interface(mut self) -> Self {
        self.intrinsic_get_interface = true;
        self.push::<(), _>(
            MethodSignature::new(symbol::GET_INTERFACE.as_str(), vec![], ParamType::Str),
            true,
            |_, _, _, _| Outcome::NoReply,
        )
    }

    /// Derive the interface, render it, and freeze the table.
    pub fn seal(self) -> Rc<MethodTable<E>> {
        let interface = self.inner.interface();
        let interface_idl = idl::render(&self.name, &interface);
        Rc::new(MethodTable {
            inner: self.inner,
            gate: self.gate,
            prefix: self.prefix,
            interface,
            interface_idl,
            intrinsic_get_interface: self.intrinsic_get_interface,
        })
    }
}

/// How [`serve`] disposed of one incoming message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// A call was dispatched with this verdict.
    Call(Verdict),
    /// The message is a reply — the endpoint resolves its continuations.
    Reply,
}

/// The dispatch boundary: route one incoming message through the table.
///
/// Callers pass a *clone* of the endpoint's `Rc<MethodTable<_>>` so the
/// handler can borrow the endpoint mutably while the table stays alive.
///
/// Takes the message by value: once dispatch is done the body's heap
/// buffers (the call argument vector, an unclaimed reply's payload) go
/// back to the kernel pool via [`Ctx::recycle_message`]. Handlers still
/// see `&Message` — recycling happens strictly after the handler returns.
pub fn serve<E>(
    table: &MethodTable<E>,
    endpoint: &mut E,
    ctx: &mut Ctx<'_>,
    msg: Message,
) -> Served {
    let served = serve_ref(table, endpoint, ctx, &msg);
    ctx.recycle_message(msg);
    served
}

fn serve_ref<E>(
    table: &MethodTable<E>,
    endpoint: &mut E,
    ctx: &mut Ctx<'_>,
    msg: &Message,
) -> Served {
    if msg.is_reply() {
        return Served::Reply;
    }
    let prefix = table.prefix;
    let Some(method) = msg.method_sym().filter(|&m| m != symbol::EMPTY) else {
        // A call with no method name (empty on the wire) used to vanish
        // silently in per-endpoint dispatch; dead-letter it visibly.
        ctx.count(&format!("{prefix}.dead_letter"));
        ctx.trace_note(&format!(
            "dispatch.{}:{prefix}",
            Verdict::DeadLetter.label()
        ));
        return Served::Call(Verdict::DeadLetter);
    };
    let entry = match table.inner.resolve(method) {
        Ok(e) => e,
        Err(err) => {
            ctx.count(&format!("{prefix}.unknown_method"));
            ctx.trace_note(&format!("dispatch.{}:{method}", Verdict::Unknown.label()));
            ctx.reply(msg, Err(err.to_string()));
            return Served::Call(Verdict::Unknown);
        }
    };
    if entry.gated() {
        if let Some(gate) = table.gate {
            if let Err(reason) = gate(endpoint).check(&msg.env, method.as_str()) {
                ctx.count(&format!("{prefix}.refused"));
                ctx.trace_note(&format!("dispatch.{}:{method}", Verdict::Denied.label()));
                ctx.reply(msg, Err(format!("MayI refused: {reason}")));
                return Served::Call(Verdict::Denied);
            }
        }
    }
    if table.intrinsic_get_interface && method == symbol::GET_INTERFACE {
        ctx.reply(msg, Ok(LegionValue::Str(table.interface_idl.clone())));
        return Served::Call(Verdict::Allowed);
    }
    match (entry.handler())(endpoint, ctx, msg, msg.args()) {
        Outcome::Reply(result) => {
            ctx.reply(msg, result);
            Served::Call(Verdict::Allowed)
        }
        Outcome::Pending | Outcome::NoReply => Served::Call(Verdict::Allowed),
        Outcome::Invalid(rendered) => {
            ctx.count(&format!("{prefix}.bad_args"));
            ctx.trace_note(&format!("dispatch.{}:{method}", Verdict::BadArgs.label()));
            ctx.reply(msg, Err(rendered));
            Served::Call(Verdict::BadArgs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_rendering_round_trips() {
        assert!(is_timeout(&timeout_error(500)));
        assert!(!is_timeout("some other error"));
        assert!(!is_timeout(&overload_error(500)));
    }

    #[test]
    fn overload_rendering_round_trips() {
        assert_eq!(is_overloaded(&overload_error(0)), Some(0));
        assert_eq!(is_overloaded(&overload_error(1_250_000)), Some(1_250_000));
        assert_eq!(is_overloaded(&timeout_error(500)), None);
        assert_eq!(is_overloaded("server overloaded, retry after xns"), None);
        assert_eq!(is_overloaded("unrelated"), None);
    }
}
