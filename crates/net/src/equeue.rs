//! # The kernel event queue — a hierarchical timer wheel
//!
//! The DES kernel's hottest structure. Every accepted send, timer, and
//! start lands here and is popped back out in deterministic
//! `(time, insertion seq)` order. The previous implementation was a
//! `BinaryHeap<Reverse<Event>>`: correct, but every push and pop pays
//! `O(log n)` full-key comparisons and sift traffic, and `peek` on the
//! deadline boundary re-ran the comparison chain per event.
//!
//! This module replaces it with a classic hierarchical timer wheel
//! (Varghese & Lauck's hashed/hierarchical wheels, the shape tokio and
//! kernel timer subsystems use), adapted for a *total-order* queue:
//!
//! * Virtual time is bucketed into ticks of `2^12` ns (4.096 µs). A hop
//!   in the simulated topology is ≥ 1 µs, so a tick holds a handful of
//!   co-scheduled events, not thousands.
//! * Eight levels of 64 slots each cover `2^48` ticks (≈ 36 simulated
//!   years) relative to the wheel cursor; the rare timer beyond that
//!   horizon (e.g. a `u64::MAX` sentinel deadline) parks in an unsorted
//!   `far` overflow list.
//! * A `ready` deque holds the entries of the *current* tick, sorted by
//!   `(at, seq)`. `pop` takes its front; `peek` is O(1) once the wheel
//!   has advanced to the next occupied tick (amortized O(1): each entry
//!   cascades down at most once per level).
//!
//! ## Determinism contract
//!
//! The pop order is **exactly** ascending `(at, seq)` — the same total
//! order the `BinaryHeap` produced (the kernel's `seq` is unique, so the
//! heap's partial order was already total). Every golden transcript,
//! trace, metrics snapshot, and journal byte depends on this; the
//! property tests at the bottom pit the wheel against a `BinaryHeap`
//! reference model over randomized schedules to hold the line.
//!
//! Pushes at or before the cursor's tick (a handler scheduling work for
//! *now*, or an event injected after `run_until` advanced the clock)
//! binary-insert directly into `ready`, preserving the order contract
//! without rewinding the wheel.
//!
//! ## Allocation contract
//!
//! Slot vectors, the ready deque, and the cascade scratch buffer all
//! retain their capacity across waves: in steady state a push/pop cycle
//! touches no allocator. `alloc_budget` gates this transitively through
//! the per-message budget; the wheel itself allocates only while a
//! fresh capacity high-water mark is being established.

use std::collections::VecDeque;

/// log2 of the tick width in nanoseconds: 4096 ns per tick.
const TICK_SHIFT: u32 = 12;
/// log2 of the slots per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Wheel levels. `LEVELS * LEVEL_BITS` bits of tick horizon.
const LEVELS: usize = 8;
/// Bits of tick space the wheel spans; ticks at or beyond
/// `cursor + 2^HORIZON_BITS` overflow to `far`.
const HORIZON_BITS: u32 = (LEVELS as u32) * LEVEL_BITS;

struct Entry<T> {
    at: u64,
    seq: u64,
    value: T,
}

/// A total-order event queue keyed by `(at, seq)`, both `u64`, popping
/// in strictly ascending key order. `seq` must be unique per queue
/// lifetime (the kernel's insertion sequence number), which makes the
/// order total and the pop sequence deterministic.
pub struct EventQueue<T> {
    /// Tick the wheel has advanced to; `ready` holds this tick's entries.
    cursor: u64,
    /// Entries with `tick(at) <= cursor`, sorted ascending by `(at, seq)`.
    ready: VecDeque<Entry<T>>,
    /// `LEVELS x SLOTS` buckets of future entries, unsorted within a slot.
    slots: Vec<Vec<Entry<T>>>,
    /// Per-level occupancy bitmap: bit `s` set iff `slots[level*SLOTS+s]`
    /// is non-empty.
    occupied: [u64; LEVELS],
    /// Entries beyond the wheel horizon (≈ 36 simulated years out).
    far: Vec<Entry<T>>,
    /// Scratch buffer reused by cascades to re-place a slot's entries.
    scratch: Vec<Entry<T>>,
    /// Live entry count.
    len: usize,
    /// High-water mark of `len` over the queue's lifetime.
    peak: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue. Allocates the (empty) slot table; individual slot
    /// vectors allocate lazily on first use and keep their capacity.
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(LEVELS * SLOTS);
        slots.resize_with(LEVELS * SLOTS, Vec::new);
        EventQueue {
            cursor: 0,
            ready: VecDeque::new(),
            slots,
            occupied: [0; LEVELS],
            far: Vec::new(),
            scratch: Vec::new(),
            len: 0,
            peak: 0,
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The most entries the queue has ever held at once.
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Insert `value` keyed `(at, seq)`. `seq` must be unique.
    pub fn push(&mut self, at: u64, seq: u64, value: T) {
        self.len += 1;
        if self.len > self.peak {
            self.peak = self.len;
        }
        self.place(Entry { at, seq, value });
    }

    /// Key of the next entry to pop, advancing the wheel to it.
    /// O(1) when `ready` is already populated.
    pub fn peek_key(&mut self) -> Option<(u64, u64)> {
        self.advance();
        self.ready.front().map(|e| (e.at, e.seq))
    }

    /// Remove and return the entry with the smallest `(at, seq)`.
    pub fn pop(&mut self) -> Option<T> {
        self.advance();
        let e = self.ready.pop_front()?;
        self.len -= 1;
        Some(e.value)
    }

    /// Visit every pending entry in unspecified order (snapshots sort by
    /// their own embedded keys).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.ready
            .iter()
            .chain(self.slots.iter().flatten())
            .chain(self.far.iter())
            .map(|e| &e.value)
    }

    /// Route one entry to `ready`, a wheel slot, or `far`.
    fn place(&mut self, e: Entry<T>) {
        let t = e.at >> TICK_SHIFT;
        if t <= self.cursor {
            // Current (or past — e.g. injected after `run_until` moved
            // the clock) tick: keep `ready` sorted by binary insertion.
            let key = (e.at, e.seq);
            let idx = self.ready.partition_point(|r| (r.at, r.seq) < key);
            self.ready.insert(idx, e);
            return;
        }
        // Highest bit where the target tick differs from the cursor
        // decides the level; the slot is the tick's digit at that level.
        let diff = t ^ self.cursor;
        let high = 63 - diff.leading_zeros();
        if high >= HORIZON_BITS {
            self.far.push(e);
            return;
        }
        let level = (high / LEVEL_BITS) as usize;
        let slot = ((t >> (level as u32 * LEVEL_BITS)) as usize) & (SLOTS - 1);
        self.occupied[level] |= 1 << slot;
        self.slots[level * SLOTS + slot].push(e);
    }

    /// Advance the cursor to the next occupied tick and fill `ready`
    /// with that tick's entries, sorted. No-op while `ready` is
    /// non-empty; leaves `ready` empty only when the queue is empty.
    fn advance(&mut self) {
        while self.ready.is_empty() && self.len > 0 {
            let Some(level) = self.occupied.iter().position(|&o| o != 0) else {
                // Wheel empty: everything pending lives beyond the
                // horizon. Jump the cursor to the earliest far tick and
                // re-place; at least its entries land in `ready`.
                debug_assert!(!self.far.is_empty());
                let min_tick = self
                    .far
                    .iter()
                    .map(|e| e.at >> TICK_SHIFT)
                    .min()
                    .expect("far is non-empty");
                self.cursor = min_tick;
                let mut pending = std::mem::take(&mut self.far);
                for e in pending.drain(..) {
                    self.place(e);
                }
                self.far = pending; // keep the (now empty) buffer
                continue;
            };
            // Occupied slot indices at `level` are strictly greater than
            // the cursor's digit there (placement puts them ahead; the
            // cursor only catches up by landing *on* a slot, emptying
            // it), so the lowest set bit is the next stop.
            let slot = self.occupied[level].trailing_zeros() as usize;
            let level_shift = level as u32 * LEVEL_BITS;
            debug_assert!(slot > ((self.cursor >> level_shift) as usize) & (SLOTS - 1));
            // Move the cursor onto that slot's sub-block: digits above
            // stay, this level's digit becomes `slot`, digits below
            // reset to zero (the sub-block's start).
            let above = self.cursor >> (level_shift + LEVEL_BITS) << (level_shift + LEVEL_BITS);
            self.cursor = above | ((slot as u64) << level_shift);
            self.occupied[level] &= !(1 << slot);
            if level == 0 {
                // Level-0 slots are exact ticks: these entries *are* the
                // current tick. Sort and splice into the empty `ready`.
                let bucket = &mut self.slots[slot];
                bucket.sort_unstable_by_key(|e| (e.at, e.seq));
                self.ready.extend(bucket.drain(..));
            } else {
                // Higher levels cover a range of ticks: cascade the slot
                // down (each entry re-places at a strictly lower level,
                // or into `ready` when its tick equals the new cursor).
                std::mem::swap(&mut self.scratch, &mut self.slots[level * SLOTS + slot]);
                let mut pending = std::mem::take(&mut self.scratch);
                for e in pending.drain(..) {
                    self.place(e);
                }
                self.scratch = pending; // keep capacity for the next cascade
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn drain(q: &mut EventQueue<u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((at, seq)) = q.peek_key() {
            let v = q.pop().unwrap();
            assert_eq!(v, seq, "value rides with its key");
            out.push((at, seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        // Same tick, distinct times and seqs, inserted out of order.
        q.push(5_000, 2, 2);
        q.push(1_000, 7, 7);
        q.push(1_000, 3, 3);
        q.push(0, 9, 9);
        assert_eq!(
            drain(&mut q),
            vec![(0, 9), (1_000, 3), (1_000, 7), (5_000, 2)]
        );
        assert!(q.is_empty());
        assert_eq!(q.peak_len(), 4);
    }

    #[test]
    fn spans_levels_and_horizon() {
        let mut q = EventQueue::new();
        // One entry per level, plus the far overflow (u64::MAX).
        let mut expect = Vec::new();
        for level in 0..LEVELS as u32 {
            let at = 1u64 << (TICK_SHIFT + level * LEVEL_BITS);
            q.push(at, level as u64, level as u64);
            expect.push((at, level as u64));
        }
        q.push(u64::MAX, 99, 99);
        expect.push((u64::MAX, 99));
        assert_eq!(drain(&mut q), expect);
    }

    #[test]
    fn push_at_or_before_cursor_lands_in_order() {
        let mut q = EventQueue::new();
        q.push(100_000, 1, 1);
        assert_eq!(q.peek_key(), Some((100_000, 1)));
        // The wheel has advanced to tick(100_000); a later push for an
        // earlier time (allowed: the kernel clock may sit past it after
        // run_until) must still pop first.
        q.push(50_000, 2, 2);
        q.push(100_001, 3, 3);
        assert_eq!(drain(&mut q), vec![(50_000, 2), (100_000, 1), (100_001, 3)]);
    }

    #[test]
    fn interleaved_drain_and_refill() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(i * 10_000, i, i);
        }
        for i in 0..5u64 {
            assert_eq!(q.pop(), Some(i));
        }
        // Refill behind, at, and ahead of the cursor.
        q.push(1, 100, 100);
        q.push(50_000, 101, 101);
        q.push(1 << 40, 102, 102);
        let rest = drain(&mut q);
        assert_eq!(
            rest.iter().map(|&(_, s)| s).collect::<Vec<_>>(),
            vec![100, 5, 101, 6, 7, 8, 9, 102]
        );
    }

    #[test]
    fn iter_visits_everything_once() {
        let mut q = EventQueue::new();
        let mut seqs = Vec::new();
        for i in 0..100u64 {
            q.push(i * 3_000, i, i);
            seqs.push(i);
        }
        q.peek_key(); // populate ready so iteration crosses regions
        q.push(u64::MAX - 1, 100, 100);
        seqs.push(100);
        let mut seen: Vec<u64> = q.iter().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, seqs);
        assert_eq!(q.len(), 101);
    }

    /// The determinism contract: against a `BinaryHeap` reference model,
    /// over randomized interleaved push/pop schedules with bursts of
    /// equal timestamps, the pop order is identical. Seeded `SmallRng`
    /// keeps the schedule reproducible.
    #[test]
    fn matches_binary_heap_reference_model() {
        for seed in 0..20u64 {
            let mut rng = SmallRng::seed_from_u64(0xE0_0E + seed);
            let mut wheel: EventQueue<u64> = EventQueue::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut clock = 0u64; // popped times are monotone; pushes land >= clock
            for _ in 0..400 {
                match rng.gen_range(0..10u32) {
                    // Push burst: a few entries, often sharing one time.
                    0..=5 => {
                        // Saturating: popping a u64::MAX far-future entry
                        // parks `clock` at the top of the range.
                        let base = clock.saturating_add(rng.gen_range(0..200_000u64));
                        let burst = rng.gen_range(1..6usize);
                        for _ in 0..burst {
                            let at = if rng.gen_bool(0.5) {
                                base // equal-timestamp burst
                            } else {
                                base.saturating_add(rng.gen_range(0..5_000u64))
                            };
                            wheel.push(at, seq, seq);
                            heap.push(Reverse((at, seq)));
                            seq += 1;
                        }
                    }
                    // Far-future outlier, sometimes past the horizon.
                    6 => {
                        let at = if rng.gen_bool(0.2) {
                            u64::MAX - rng.gen_range(0..3u64)
                        } else {
                            clock.saturating_add(1u64 << rng.gen_range(20..60u32))
                        };
                        wheel.push(at, seq, seq);
                        heap.push(Reverse((at, seq)));
                        seq += 1;
                    }
                    // Pop a few.
                    _ => {
                        for _ in 0..rng.gen_range(1..6usize) {
                            let expect = heap.pop().map(|Reverse(k)| k);
                            let got = wheel.peek_key();
                            assert_eq!(got, expect, "peek diverged (seed {seed})");
                            match (wheel.pop(), expect) {
                                (Some(v), Some((at, s))) => {
                                    assert_eq!(v, s);
                                    clock = at;
                                }
                                (None, None) => {}
                                (a, b) => panic!("pop diverged: {a:?} vs {b:?}"),
                            }
                        }
                    }
                }
                assert_eq!(wheel.len(), heap.len());
            }
            // Drain: the tails must match too.
            while let Some(Reverse((at, s))) = heap.pop() {
                assert_eq!(wheel.peek_key(), Some((at, s)));
                assert_eq!(wheel.pop(), Some(s));
            }
            assert!(wheel.is_empty());
            assert_eq!(wheel.pop(), None);
        }
    }

    /// `run_until`-shaped usage: peek-bounded draining at a deadline,
    /// then injection of new work at or before the advanced cursor.
    #[test]
    fn deadline_bounded_drain_matches_model() {
        let mut rng = SmallRng::seed_from_u64(77);
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        for seq in 0..300u64 {
            let at = rng.gen_range(0..3_000_000u64);
            wheel.push(at, seq, seq);
            heap.push(Reverse((at, seq)));
        }
        let mut seq = 300u64;
        for deadline in [250_000u64, 900_000, 900_000, 2_100_000, u64::MAX] {
            loop {
                match wheel.peek_key() {
                    Some((at, _)) if at <= deadline => {
                        let Some(Reverse((hat, hseq))) = heap.pop() else {
                            panic!("model empty while wheel has events")
                        };
                        assert_eq!(wheel.pop(), Some(hseq));
                        assert_eq!(hat, at);
                        // Handlers re-arm work relative to "now".
                        if rng.gen_bool(0.3) {
                            let nat = at + rng.gen_range(0..2_000_000u64);
                            wheel.push(nat, seq, seq);
                            heap.push(Reverse((nat, seq)));
                            seq += 1;
                        }
                    }
                    _ => break,
                }
            }
            // Post-deadline injection behind the cursor, as a driver
            // attaching endpoints after `run_until` does.
            let nat = deadline.saturating_sub(rng.gen_range(0..100_000u64));
            wheel.push(nat, seq, seq);
            heap.push(Reverse((nat, seq)));
            seq += 1;
        }
        while let Some(Reverse((_, s))) = heap.pop() {
            assert_eq!(wheel.pop(), Some(s));
        }
        assert!(wheel.is_empty());
    }
}
