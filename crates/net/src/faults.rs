//! Fault injection for the simulated network.
//!
//! The stale-binding mechanism (§4.1.4) and address-semantics replication
//! (§4.3) only matter in the presence of failures. The fault plan supports:
//!
//! * **message drops** — a global loss probability (silent: the sender
//!   does not learn of the loss, as with a datagram network);
//! * **partitions** — pairs of jurisdictions whose traffic is silently
//!   discarded;
//! * **endpoint crashes** — deliveries to crashed endpoints fail
//!   *detectably*, modelling a connection refused (the paper's
//!   communication layer "is expected to detect" a dead Object Address).

use crate::topology::Location;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// What happened to an attempted delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver normally.
    Deliver,
    /// Silently lose the message (drop or partition).
    DropSilently,
}

/// The active fault plan.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that any message is silently lost.
    drop_probability: f64,
    /// Unordered jurisdiction pairs whose traffic is discarded.
    partitions: BTreeSet<(u32, u32)>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Set the global message-loss probability (clamped to `[0, 1]`).
    pub fn set_drop_probability(&mut self, p: f64) {
        self.drop_probability = p.clamp(0.0, 1.0);
    }

    /// The current loss probability.
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }

    /// Partition two jurisdictions (idempotent; order-insensitive).
    pub fn partition(&mut self, a: u32, b: u32) {
        self.partitions.insert((a.min(b), a.max(b)));
    }

    /// Heal a partition.
    pub fn heal(&mut self, a: u32, b: u32) {
        self.partitions.remove(&(a.min(b), a.max(b)));
    }

    /// Are two jurisdictions partitioned from each other?
    pub fn is_partitioned(&self, a: u32, b: u32) -> bool {
        self.partitions.contains(&(a.min(b), a.max(b)))
    }

    /// Decide the fate of a message from `from` to `to`.
    pub fn judge<R: Rng>(&self, from: Location, to: Location, rng: &mut R) -> Verdict {
        if self.is_partitioned(from.jurisdiction, to.jurisdiction) {
            return Verdict::DropSilently;
        }
        if self.drop_probability > 0.0 && rng.gen_bool(self.drop_probability) {
            return Verdict::DropSilently;
        }
        Verdict::Deliver
    }

    /// Any partitions currently active?
    pub fn has_partitions(&self) -> bool {
        !self.partitions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn loc(j: u32) -> Location {
        Location::new(j, 0)
    }

    #[test]
    fn no_faults_always_delivers() {
        let plan = FaultPlan::none();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(plan.judge(loc(0), loc(1), &mut rng), Verdict::Deliver);
        }
    }

    #[test]
    fn partition_blocks_both_directions() {
        let mut plan = FaultPlan::none();
        plan.partition(2, 5);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(plan.judge(loc(2), loc(5), &mut rng), Verdict::DropSilently);
        assert_eq!(plan.judge(loc(5), loc(2), &mut rng), Verdict::DropSilently);
        assert_eq!(plan.judge(loc(2), loc(3), &mut rng), Verdict::Deliver);
        assert!(plan.is_partitioned(5, 2));
        assert!(plan.has_partitions());
    }

    #[test]
    fn heal_restores_traffic() {
        let mut plan = FaultPlan::none();
        plan.partition(0, 1);
        plan.heal(1, 0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(plan.judge(loc(0), loc(1), &mut rng), Verdict::Deliver);
        assert!(!plan.has_partitions());
    }

    #[test]
    fn drop_probability_is_respected_statistically() {
        let mut plan = FaultPlan::none();
        plan.set_drop_probability(0.3);
        let mut rng = SmallRng::seed_from_u64(42);
        let drops = (0..10_000)
            .filter(|_| plan.judge(loc(0), loc(0), &mut rng) == Verdict::DropSilently)
            .count();
        assert!((2_700..3_300).contains(&drops), "drops={drops}");
    }

    #[test]
    fn drop_probability_clamps() {
        let mut plan = FaultPlan::none();
        plan.set_drop_probability(7.0);
        assert_eq!(plan.drop_probability(), 1.0);
        plan.set_drop_probability(-1.0);
        assert_eq!(plan.drop_probability(), 0.0);
    }

    #[test]
    fn intra_jurisdiction_traffic_ignores_partitions() {
        let mut plan = FaultPlan::none();
        plan.partition(0, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            plan.judge(Location::new(0, 0), Location::new(0, 7), &mut rng),
            Verdict::Deliver
        );
    }
}
