//! Fault injection for the simulated network.
//!
//! The stale-binding mechanism (§4.1.4) and address-semantics replication
//! (§4.3) only matter in the presence of failures. The fault plan supports:
//!
//! * **message drops** — a global loss probability (silent: the sender
//!   does not learn of the loss, as with a datagram network);
//! * **duplication** — a probability that a message is delivered twice,
//!   the copy arriving a bounded interval after the original;
//! * **reordering** — a probability that a message's delivery time is
//!   perturbed by a bounded jitter, letting later sends overtake it;
//! * **delay spikes** — transient latency multipliers on a jurisdiction
//!   (or every link) over a scheduled time window;
//! * **partitions** — pairs of jurisdictions whose traffic is silently
//!   discarded, either statically or over scheduled *flapping* windows;
//! * **endpoint crashes** — deliveries to crashed endpoints fail
//!   *detectably*, modelling a connection refused (the paper's
//!   communication layer "is expected to detect" a dead Object Address).
//!
//! Verdicts are **deterministic per message**: [`FaultPlan::judge`] hashes
//! the plan seed with the message id and the link, never the kernel RNG
//! stream, so the fate of a message does not depend on how many unrelated
//! random draws preceded it. Replaying the same seed and schedule replays
//! the same faults even when call order shifts.
//!
//! Duplication is tamed at the receiver by [`DedupState`]: the kernel
//! stamps every physical send with a per-sender sequence number and each
//! endpoint keeps a bounded window of sequence numbers it has already
//! accepted — at-most-once delivery with bounded memory. A straggler
//! older than the window is rejected conservatively (never delivered
//! twice, possibly not delivered at all — exactly the datagram contract).

use crate::topology::Location;
use legion_core::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// What happened to an attempted delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver normally.
    Deliver,
    /// Silently lose the message (drop or partition).
    DropSilently,
    /// Deliver the original on time *and* a duplicate copy `extra_ns`
    /// after it.
    Duplicate {
        /// How long after the original the duplicate arrives.
        extra_ns: u64,
    },
    /// Deliver one copy, later than the topology latency alone: the
    /// sampled latency is multiplied by `factor` (an active delay spike)
    /// and then `extra_ns` is added (reorder jitter).
    Delay {
        /// Additional absolute delay (reorder perturbation), ns.
        extra_ns: u64,
        /// Multiplier on the sampled topology latency (≥ 1).
        factor: u32,
    },
}

/// A transient latency multiplier on part of the network (a "delay
/// spike"): while `from_ns <= now < until_ns`, affected links deliver at
/// `multiplier ×` their sampled latency.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelaySpike {
    /// Affected jurisdiction (either end of the link); `None` hits every
    /// link.
    pub jurisdiction: Option<u32>,
    /// Window start (inclusive, virtual ns).
    pub from_ns: u64,
    /// Window end (exclusive, virtual ns).
    pub until_ns: u64,
    /// Latency multiplier while the window is active (≥ 1).
    pub multiplier: u32,
}

impl DelaySpike {
    fn active(&self, from: Location, to: Location, now: SimTime) -> bool {
        if now.0 < self.from_ns || now.0 >= self.until_ns {
            return false;
        }
        match self.jurisdiction {
            None => true,
            Some(j) => from.jurisdiction == j || to.jurisdiction == j,
        }
    }
}

/// A scheduled partition window (one leg of a *flapping* partition): the
/// jurisdiction pair `{a, b}` is partitioned while `from_ns <= now <
/// until_ns` and healed outside it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// One jurisdiction of the pair.
    pub a: u32,
    /// The other jurisdiction.
    pub b: u32,
    /// Window start (inclusive, virtual ns).
    pub from_ns: u64,
    /// Window end (exclusive, virtual ns).
    pub until_ns: u64,
}

impl PartitionWindow {
    fn covers(&self, a: u32, b: u32, now: SimTime) -> bool {
        let (x, y) = (a.min(b), a.max(b));
        (self.a.min(self.b), self.a.max(self.b)) == (x, y)
            && now.0 >= self.from_ns
            && now.0 < self.until_ns
    }
}

// Distinct salts so the drop, duplicate and reorder decisions for one
// message are independent draws.
const SALT_DROP: u64 = 0x9e37_79b9_7f4a_7c15;
const SALT_DUP: u64 = 0xc2b2_ae3d_27d4_eb4f;
const SALT_DUP_OFFSET: u64 = 0x1656_67b1_9e37_79f9;
const SALT_REORDER: u64 = 0x27d4_eb2f_1656_67c5;
const SALT_JITTER: u64 = 0x85eb_ca6b_c2b2_ae35;

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn loc_key(l: Location) -> u64 {
    ((l.jurisdiction as u64) << 32) | l.host as u64
}

/// The active fault plan.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that any message is silently lost.
    drop_probability: f64,
    /// Unordered jurisdiction pairs whose traffic is discarded.
    partitions: BTreeSet<(u32, u32)>,
    /// Probability in `[0, 1]` that a message is delivered twice.
    duplicate_probability: f64,
    /// Probability in `[0, 1]` that a message's delivery is perturbed.
    reorder_probability: f64,
    /// Bound on the reorder perturbation (and the duplicate offset), ns.
    reorder_jitter_ns: u64,
    /// Scheduled latency-multiplier windows.
    delay_spikes: Vec<DelaySpike>,
    /// Scheduled partition/heal windows (flapping partitions).
    flaps: Vec<PartitionWindow>,
    /// Seed for the per-message verdict hash.
    seed: u64,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A fault-free plan whose per-message verdict hash uses `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Set the seed of the per-message verdict hash.
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// Set the global message-loss probability (clamped to `[0, 1]`).
    pub fn set_drop_probability(&mut self, p: f64) {
        self.drop_probability = p.clamp(0.0, 1.0);
    }

    /// The current loss probability.
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }

    /// Set the message-duplication probability (clamped to `[0, 1]`).
    pub fn set_duplicate_probability(&mut self, p: f64) {
        self.duplicate_probability = p.clamp(0.0, 1.0);
    }

    /// The current duplication probability.
    pub fn duplicate_probability(&self) -> f64 {
        self.duplicate_probability
    }

    /// Perturb delivery times: with probability `p`, a message arrives up
    /// to `jitter_ns` late — enough for later sends to overtake it.
    pub fn set_reorder(&mut self, p: f64, jitter_ns: u64) {
        self.reorder_probability = p.clamp(0.0, 1.0);
        self.reorder_jitter_ns = jitter_ns;
    }

    /// The current `(probability, jitter_ns)` reorder setting.
    pub fn reorder(&self) -> (f64, u64) {
        (self.reorder_probability, self.reorder_jitter_ns)
    }

    /// Schedule a transient latency-multiplier window.
    pub fn add_delay_spike(&mut self, spike: DelaySpike) {
        if spike.multiplier > 1 && spike.until_ns > spike.from_ns {
            self.delay_spikes.push(spike);
        }
    }

    /// Scheduled delay spikes.
    pub fn delay_spikes(&self) -> &[DelaySpike] {
        &self.delay_spikes
    }

    /// Schedule a partition window (one leg of a flapping partition).
    pub fn add_flap(&mut self, window: PartitionWindow) {
        if window.a != window.b && window.until_ns > window.from_ns {
            self.flaps.push(window);
        }
    }

    /// Scheduled partition windows.
    pub fn flaps(&self) -> &[PartitionWindow] {
        &self.flaps
    }

    /// Partition two jurisdictions (idempotent; order-insensitive).
    pub fn partition(&mut self, a: u32, b: u32) {
        self.partitions.insert((a.min(b), a.max(b)));
    }

    /// Heal a partition.
    pub fn heal(&mut self, a: u32, b: u32) {
        self.partitions.remove(&(a.min(b), a.max(b)));
    }

    /// Are two jurisdictions statically partitioned from each other?
    pub fn is_partitioned(&self, a: u32, b: u32) -> bool {
        self.partitions.contains(&(a.min(b), a.max(b)))
    }

    /// Are two jurisdictions partitioned at `now` (statically or by an
    /// active flap window)?
    pub fn is_partitioned_at(&self, a: u32, b: u32, now: SimTime) -> bool {
        self.is_partitioned(a, b) || self.flaps.iter().any(|w| w.covers(a, b, now))
    }

    /// Any partitions currently active?
    pub fn has_partitions(&self) -> bool {
        !self.partitions.is_empty()
    }

    /// Does the plan contain any adversarial delivery semantics
    /// (duplication, reordering, spikes, or flapping partitions)?
    pub fn is_adversarial(&self) -> bool {
        self.duplicate_probability > 0.0
            || (self.reorder_probability > 0.0 && self.reorder_jitter_ns > 0)
            || !self.delay_spikes.is_empty()
            || !self.flaps.is_empty()
    }

    /// A uniform draw in `[0, 1)` for message `msg_id` on this link.
    fn roll(&self, msg_id: u64, from: Location, to: Location, salt: u64) -> f64 {
        (self.draw(msg_id, from, to, salt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A deterministic 64-bit draw for message `msg_id` on this link.
    fn draw(&self, msg_id: u64, from: Location, to: Location, salt: u64) -> u64 {
        mix(self.seed ^ mix(msg_id ^ salt) ^ mix(loc_key(from).rotate_left(17) ^ loc_key(to)))
    }

    /// The largest latency multiplier of any spike active on this link.
    fn spike_multiplier(&self, from: Location, to: Location, now: SimTime) -> u64 {
        self.delay_spikes
            .iter()
            .filter(|s| s.active(from, to, now))
            .map(|s| s.multiplier as u64)
            .max()
            .unwrap_or(1)
    }

    /// Decide the fate of message `msg_id` from `from` to `to` at `now`.
    /// Deterministic per `(seed, msg_id, link)` — independent of call
    /// order and of the kernel RNG stream. Verdicts express delay
    /// *relative* to the (not-yet-sampled) topology latency so the kernel
    /// only samples latency for messages that actually deliver, exactly
    /// as it did before adversarial semantics existed.
    pub fn judge(&self, msg_id: u64, from: Location, to: Location, now: SimTime) -> Verdict {
        if self.is_partitioned_at(from.jurisdiction, to.jurisdiction, now) {
            return Verdict::DropSilently;
        }
        if self.drop_probability > 0.0
            && self.roll(msg_id, from, to, SALT_DROP) < self.drop_probability
        {
            return Verdict::DropSilently;
        }
        if self.duplicate_probability > 0.0
            && self.roll(msg_id, from, to, SALT_DUP) < self.duplicate_probability
        {
            // The copy trails the original by a bounded, hash-derived
            // offset: at least 1 ns (strictly later), at most the
            // reorder jitter.
            let span = self.reorder_jitter_ns.max(1);
            let extra_ns = 1 + self.draw(msg_id, from, to, SALT_DUP_OFFSET) % span;
            return Verdict::Duplicate { extra_ns };
        }
        let factor = self.spike_multiplier(from, to, now) as u32;
        let mut extra_ns = 0;
        if self.reorder_probability > 0.0
            && self.reorder_jitter_ns > 0
            && self.roll(msg_id, from, to, SALT_REORDER) < self.reorder_probability
        {
            extra_ns = 1 + self.draw(msg_id, from, to, SALT_JITTER) % self.reorder_jitter_ns;
        }
        if factor > 1 || extra_ns > 0 {
            Verdict::Delay { extra_ns, factor }
        } else {
            Verdict::Deliver
        }
    }
}

// ---------------------------------------------------------------------------
// At-most-once dedup window
// ---------------------------------------------------------------------------

/// A bounded window of per-sender sequence numbers one receiver has
/// accepted. `admit` answers "first sight?" with bounded memory: the
/// newest `capacity` sequence numbers are remembered exactly; anything
/// older than the remembered range is rejected conservatively.
#[derive(Debug, Clone)]
struct SenderWindow {
    /// Sequence numbers below this are rejected without consulting `seen`.
    floor: u64,
    seen: BTreeSet<u64>,
}

/// Per-sender dedup windows for one receiving endpoint — the receiver
/// half of the kernel's at-most-once delivery.
#[derive(Debug, Clone)]
pub struct DedupState {
    capacity: usize,
    per_sender: BTreeMap<u64, SenderWindow>,
    rejected: u64,
}

impl DedupState {
    /// Windows remembering the last `capacity` sequence numbers per sender.
    pub fn new(capacity: usize) -> Self {
        DedupState {
            capacity: capacity.max(1),
            per_sender: BTreeMap::new(),
            rejected: 0,
        }
    }

    /// Admit `(sender, seq)` if this is its first delivery; reject
    /// duplicates and out-of-window stragglers.
    pub fn admit(&mut self, sender: u64, seq: u64) -> bool {
        let w = self
            .per_sender
            .entry(sender)
            .or_insert_with(|| SenderWindow {
                floor: 0,
                seen: BTreeSet::new(),
            });
        if seq < w.floor || !w.seen.insert(seq) {
            self.rejected += 1;
            return false;
        }
        while w.seen.len() > self.capacity {
            if let Some(&oldest) = w.seen.iter().next() {
                w.seen.remove(&oldest);
                w.floor = w.floor.max(oldest + 1);
            }
        }
        true
    }

    /// Deliveries rejected as duplicates or stragglers.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// A deterministic digest of the full window state (floors, seen
    /// sets, reject count), for content-addressed kernel snapshots.
    pub fn state_digest(&self) -> u64 {
        // FNV-1a over the ordered state.
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        mix(self.capacity as u64);
        mix(self.rejected);
        for (sender, w) in &self.per_sender {
            mix(*sender);
            mix(w.floor);
            mix(w.seen.len() as u64);
            for seq in &w.seen {
                mix(*seq);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(j: u32) -> Location {
        Location::new(j, 0)
    }

    fn judge_quiet(plan: &FaultPlan, id: u64, from: Location, to: Location) -> Verdict {
        plan.judge(id, from, to, SimTime::ZERO)
    }

    #[test]
    fn no_faults_always_delivers() {
        let plan = FaultPlan::none();
        for id in 0..100 {
            assert_eq!(judge_quiet(&plan, id, loc(0), loc(1)), Verdict::Deliver);
        }
    }

    #[test]
    fn partition_blocks_both_directions() {
        let mut plan = FaultPlan::none();
        plan.partition(2, 5);
        assert_eq!(judge_quiet(&plan, 1, loc(2), loc(5)), Verdict::DropSilently);
        assert_eq!(judge_quiet(&plan, 2, loc(5), loc(2)), Verdict::DropSilently);
        assert_eq!(judge_quiet(&plan, 3, loc(2), loc(3)), Verdict::Deliver);
        assert!(plan.is_partitioned(5, 2));
        assert!(plan.has_partitions());
    }

    #[test]
    fn heal_restores_traffic() {
        let mut plan = FaultPlan::none();
        plan.partition(0, 1);
        plan.heal(1, 0);
        assert_eq!(judge_quiet(&plan, 1, loc(0), loc(1)), Verdict::Deliver);
        assert!(!plan.has_partitions());
    }

    #[test]
    fn drop_probability_is_respected_statistically() {
        let mut plan = FaultPlan::seeded(42);
        plan.set_drop_probability(0.3);
        let drops = (0..10_000u64)
            .filter(|id| judge_quiet(&plan, *id, loc(0), loc(0)) == Verdict::DropSilently)
            .count();
        assert!((2_700..3_300).contains(&drops), "drops={drops}");
    }

    #[test]
    fn drop_probability_clamps() {
        let mut plan = FaultPlan::none();
        plan.set_drop_probability(7.0);
        assert_eq!(plan.drop_probability(), 1.0);
        plan.set_drop_probability(-1.0);
        assert_eq!(plan.drop_probability(), 0.0);
    }

    #[test]
    fn intra_jurisdiction_traffic_ignores_partitions() {
        let mut plan = FaultPlan::none();
        plan.partition(0, 1);
        assert_eq!(
            judge_quiet(&plan, 1, Location::new(0, 0), Location::new(0, 7)),
            Verdict::Deliver
        );
    }

    #[test]
    fn verdicts_are_deterministic_per_message() {
        let mut plan = FaultPlan::seeded(7);
        plan.set_drop_probability(0.4);
        plan.set_duplicate_probability(0.3);
        plan.set_reorder(0.5, 40_000);
        let first: Vec<Verdict> = (0..200u64)
            .map(|id| judge_quiet(&plan, id, loc(0), loc(1)))
            .collect();
        // Judging again — in reverse order — yields identical verdicts:
        // the fate of a message does not depend on call order.
        let second: Vec<Verdict> = (0..200u64)
            .rev()
            .map(|id| judge_quiet(&plan, id, loc(0), loc(1)))
            .collect();
        let second: Vec<Verdict> = second.into_iter().rev().collect();
        assert_eq!(first, second);
        // And a different seed decides differently somewhere.
        let mut other = plan.clone();
        other.set_seed(8);
        assert!((0..200u64).any(|id| judge_quiet(&other, id, loc(0), loc(1)) != first[id as usize]));
    }

    #[test]
    fn duplication_yields_bounded_duplicate_offsets() {
        let mut plan = FaultPlan::seeded(11);
        plan.set_duplicate_probability(0.5);
        plan.set_reorder(0.0, 25_000);
        let mut dups = 0;
        for id in 0..2_000u64 {
            if let Verdict::Duplicate { extra_ns } = judge_quiet(&plan, id, loc(0), loc(1)) {
                dups += 1;
                assert!((1..=25_000).contains(&extra_ns), "offset {extra_ns}");
            }
        }
        assert!((800..1_200).contains(&dups), "dups={dups}");
    }

    #[test]
    fn reorder_jitter_is_bounded() {
        let mut plan = FaultPlan::seeded(3);
        plan.set_reorder(1.0, 5_000);
        for id in 0..500u64 {
            match judge_quiet(&plan, id, loc(0), loc(1)) {
                Verdict::Delay { extra_ns, factor } => {
                    assert!((1..=5_000).contains(&extra_ns), "jitter {extra_ns}");
                    assert_eq!(factor, 1, "no spike scheduled");
                }
                v => panic!("expected Delay, got {v:?}"),
            }
        }
    }

    #[test]
    fn delay_spike_multiplies_inside_its_window() {
        let mut plan = FaultPlan::none();
        plan.add_delay_spike(DelaySpike {
            jurisdiction: Some(1),
            from_ns: 1_000,
            until_ns: 2_000,
            multiplier: 4,
        });
        // Inside the window, on the spiked jurisdiction: latency × 4.
        let v = plan.judge(1, loc(0), loc(1), SimTime(1_500));
        assert_eq!(
            v,
            Verdict::Delay {
                extra_ns: 0,
                factor: 4
            }
        );
        // Outside the window: normal.
        assert_eq!(
            plan.judge(1, loc(0), loc(1), SimTime(2_000)),
            Verdict::Deliver
        );
        // Inside the window, but the link avoids jurisdiction 1: normal.
        assert_eq!(
            plan.judge(1, loc(0), loc(2), SimTime(1_500)),
            Verdict::Deliver
        );
    }

    #[test]
    fn flap_windows_partition_then_heal() {
        let mut plan = FaultPlan::none();
        plan.add_flap(PartitionWindow {
            a: 0,
            b: 1,
            from_ns: 100,
            until_ns: 200,
        });
        assert_eq!(plan.judge(1, loc(0), loc(1), SimTime(50)), Verdict::Deliver);
        assert_eq!(
            plan.judge(1, loc(0), loc(1), SimTime(150)),
            Verdict::DropSilently
        );
        assert_eq!(
            plan.judge(1, loc(1), loc(0), SimTime(150)),
            Verdict::DropSilently
        );
        assert_eq!(
            plan.judge(1, loc(0), loc(1), SimTime(200)),
            Verdict::Deliver
        );
        assert!(plan.is_partitioned_at(0, 1, SimTime(150)));
        assert!(!plan.is_partitioned_at(0, 1, SimTime(250)));
        assert!(plan.is_adversarial());
    }

    #[test]
    fn degenerate_spikes_and_flaps_are_ignored() {
        let mut plan = FaultPlan::none();
        plan.add_delay_spike(DelaySpike {
            jurisdiction: None,
            from_ns: 0,
            until_ns: 100,
            multiplier: 1, // no-op multiplier
        });
        plan.add_flap(PartitionWindow {
            a: 2,
            b: 2, // intra-jurisdiction: meaningless
            from_ns: 0,
            until_ns: 100,
        });
        assert!(plan.delay_spikes().is_empty());
        assert!(plan.flaps().is_empty());
        assert!(!plan.is_adversarial());
    }

    #[test]
    fn dedup_admits_first_sight_and_rejects_duplicates() {
        let mut d = DedupState::new(64);
        assert!(d.admit(1, 0));
        assert!(d.admit(1, 1));
        assert!(!d.admit(1, 0), "duplicate rejected");
        assert!(!d.admit(1, 1), "duplicate rejected");
        assert!(d.admit(2, 0), "windows are per sender");
        assert_eq!(d.rejected(), 2);
    }

    #[test]
    fn dedup_handles_reordered_arrivals() {
        let mut d = DedupState::new(64);
        for seq in [3u64, 0, 2, 1] {
            assert!(d.admit(9, seq));
        }
        for seq in [3u64, 0, 2, 1] {
            assert!(!d.admit(9, seq));
        }
    }

    #[test]
    fn dedup_window_is_bounded_and_conservative() {
        let mut d = DedupState::new(4);
        for seq in 0..10u64 {
            assert!(d.admit(1, seq));
        }
        // Only the newest 4 are remembered; anything older than the
        // remembered range is rejected conservatively (at-most-once,
        // possibly not-at-all — the datagram contract).
        assert!(!d.admit(1, 3), "below the window floor");
        assert!(!d.admit(1, 9), "still remembered");
        assert!(d.admit(1, 10), "fresh sequence numbers still admitted");
    }
}
