//! # legion-net — the simulated wide-area substrate
//!
//! The paper evaluates nothing on real hardware; its claims are about
//! message counts, cache behaviour and component load in a wide-area
//! system of "millions of sites and trillions of objects". This crate
//! provides the substrate those claims can be measured on:
//!
//! * a deterministic discrete-event kernel ([`sim::SimKernel`]) where each
//!   Active Legion object is an endpoint,
//! * method-invocation messages carrying the §2.4 security triple
//!   ([`message`]),
//! * a three-tier latency topology (same host / campus LAN / WAN,
//!   [`topology`]),
//! * fault injection — silent drops, partitions, detectable crashes
//!   ([`faults`]),
//! * traffic accounting per endpoint and per named protocol event
//!   ([`metrics`]).
//!
//! Design rule inherited from the paper: sends to a dead or unknown
//! address fail *detectably* (the §4.1.4 stale-binding signal); random
//! network loss is *silent*.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod dispatch;
pub mod equeue;
pub mod faults;
pub mod message;
pub mod metrics;
pub mod pool;
pub mod sim;
pub mod topology;

pub use faults::FaultPlan;
pub use message::{Body, CallId, Message};
pub use metrics::{Counters, Histogram};
pub use sim::{Ctx, Endpoint, EndpointId, KernelStats, SendReport, SimKernel};
pub use topology::{LatencySpec, Location, Topology};
