//! Messages: non-blocking method invocations and replies (paper §2).
//!
//! "Legion is an object-oriented system comprised of independent, address
//! space disjoint objects that communicate with one another via method
//! invocation. Method calls are non-blocking and may be accepted in any
//! order by the called object."
//!
//! A [`Message`] is either a method call or a reply correlated by
//! [`CallId`]. Every call carries the security triple of §2.4
//! ([`InvocationEnv`]) and the sender's address element so the callee can
//! reply without a name lookup.

use legion_core::address::ObjectAddressElement;
use legion_core::env::InvocationEnv;
use legion_core::loid::Loid;
use legion_core::symbol::Sym;
use legion_core::value::LegionValue;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Correlates a reply with its call. Unique per kernel run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CallId(pub u64);

impl fmt::Display for CallId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The payload of a message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Body {
    /// A method invocation.
    Call {
        /// Method name, matching a signature in the callee's interface.
        /// Interned: copying a message never clones the name, and on the
        /// wire it still serializes as the string.
        method: Sym,
        /// Positional arguments.
        args: Vec<LegionValue>,
    },
    /// A reply to an earlier call.
    Reply {
        /// The call being answered.
        in_reply_to: CallId,
        /// The return value, or a rendered error.
        result: Result<LegionValue, String>,
    },
}

/// One message in flight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Unique id of this message (for replies: its own id, distinct from
    /// `in_reply_to`).
    pub id: CallId,
    /// LOID of the intended receiver, when the sender knows it. Lets the
    /// receiver detect *misdirected* messages — the stale-binding signal
    /// of §4.1.4 (the endpoint at the old address may now host a
    /// different object).
    pub target: Option<Loid>,
    /// The sender's address element, for replies.
    pub reply_to: Option<ObjectAddressElement>,
    /// LOID of the sender, when it has one (Host Objects bootstrapping
    /// from outside Legion may not yet).
    pub sender: Option<Loid>,
    /// The §2.4 security triple.
    pub env: InvocationEnv,
    /// Call or reply.
    pub body: Body,
}

impl Message {
    /// Build a call message.
    pub fn call(
        id: CallId,
        target: Loid,
        method: impl Into<Sym>,
        args: Vec<LegionValue>,
        env: InvocationEnv,
    ) -> Self {
        Message {
            id,
            target: Some(target),
            reply_to: None,
            sender: None,
            env,
            body: Body::Call {
                method: method.into(),
                args,
            },
        }
    }

    /// Build a reply to `call`, keeping its environment.
    pub fn reply_to(call: &Message, id: CallId, result: Result<LegionValue, String>) -> Self {
        Message {
            id,
            target: call.sender,
            reply_to: None,
            sender: call.target,
            env: call.env,
            body: Body::Reply {
                in_reply_to: call.id,
                result,
            },
        }
    }

    /// The method symbol, for calls. Allocation- and lock-free.
    pub fn method_sym(&self) -> Option<Sym> {
        match &self.body {
            Body::Call { method, .. } => Some(*method),
            Body::Reply { .. } => None,
        }
    }

    /// The method name, for calls. Resolves through the interner; prefer
    /// [`Message::method_sym`] on hot paths.
    pub fn method(&self) -> Option<&'static str> {
        self.method_sym().map(Sym::as_str)
    }

    /// The arguments, for calls.
    pub fn args(&self) -> &[LegionValue] {
        match &self.body {
            Body::Call { args, .. } => args,
            Body::Reply { .. } => &[],
        }
    }

    /// Is this a reply?
    pub fn is_reply(&self) -> bool {
        matches!(self.body, Body::Reply { .. })
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.body {
            Body::Call { method, args } => {
                write!(f, "{} call {}({} args)", self.id, method, args.len())
            }
            Body::Reply {
                in_reply_to,
                result,
            } => write!(
                f,
                "{} reply to {} ({})",
                self.id,
                in_reply_to,
                if result.is_ok() { "ok" } else { "err" }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call() -> Message {
        let mut m = Message::call(
            CallId(1),
            Loid::instance(16, 1),
            "Ping",
            vec![LegionValue::Uint(7)],
            InvocationEnv::solo(Loid::instance(16, 2)),
        );
        m.sender = Some(Loid::instance(16, 2));
        m
    }

    #[test]
    fn call_accessors() {
        let m = call();
        assert_eq!(m.method(), Some("Ping"));
        assert_eq!(m.args().len(), 1);
        assert!(!m.is_reply());
        assert!(m.to_string().contains("Ping"));
    }

    #[test]
    fn reply_correlates_and_swaps_direction() {
        let c = call();
        let r = Message::reply_to(&c, CallId(2), Ok(LegionValue::Void));
        assert!(r.is_reply());
        assert_eq!(r.target, c.sender);
        assert_eq!(r.sender, c.target);
        assert_eq!(r.env, c.env);
        match r.body {
            Body::Reply { in_reply_to, .. } => assert_eq!(in_reply_to, CallId(1)),
            _ => panic!("not a reply"),
        }
        assert_eq!(r.method(), None);
        assert!(r.args().is_empty());
    }

    #[test]
    fn error_reply_displays_err() {
        let c = call();
        let r = Message::reply_to(&c, CallId(3), Err("no such method".into()));
        assert!(r.to_string().contains("err"));
    }
}
