//! Lightweight metrics for the simulation substrate.
//!
//! The paper's scalability argument (§5.2) is entirely about *request
//! counts to components* — "the number of requests to any particular
//! system component must not be an increasing function of the number of
//! hosts in the system". The kernel therefore counts messages per
//! endpoint automatically, and components bump named counters for
//! protocol-level events (cache hits, class consultations, activations).
//! Latency distributions use a log₂-bucketed [`Histogram`].

use legion_core::symbol::Sym;
use legion_core::time::SimTime;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A log₂-bucketed histogram of `u64` samples (nanoseconds, counts, …).
///
/// Bucket `i` holds samples in `[2^(i-1), 2^i)` (bucket 0 holds zero).
/// Quantiles are approximate (bucket upper bound), which is plenty for
/// order-of-magnitude latency comparisons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// containing the q-th sample. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket 64 holds values ≥ 2^63; its upper bound does not
                // fit in a u64, so saturate instead of shifting by 64.
                return match i {
                    0 => 0,
                    64.. => u64::MAX,
                    _ => 1u64 << i,
                };
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

// Hand-written (rather than derived) to keep the wire form compact: the
// bucket array is sparse in practice, so only non-empty buckets are
// encoded, as `[index, count]` pairs.
impl Serialize for Histogram {
    fn to_json_value(&self) -> Value {
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(|(i, &n)| Value::Array(vec![Value::U64(i as u64), Value::U64(n)]))
            .collect();
        Value::Object(vec![
            ("count".to_owned(), Value::U64(self.count)),
            ("sum".to_owned(), Value::U64(self.sum)),
            ("min".to_owned(), Value::U64(self.min)),
            ("max".to_owned(), Value::U64(self.max)),
            ("buckets".to_owned(), Value::Array(buckets)),
        ])
    }
}

impl Deserialize for Histogram {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let mut h = Histogram::new();
        h.count = serde::field(v, "count")?;
        h.sum = serde::field(v, "sum")?;
        h.min = serde::field(v, "min")?;
        h.max = serde::field(v, "max")?;
        let buckets = v
            .get("buckets")
            .and_then(Value::as_array)
            .ok_or_else(|| DeError("histogram missing `buckets` array".to_owned()))?;
        for pair in buckets {
            let pair: (usize, u64) = Deserialize::from_json_value(pair)?;
            let (i, n) = pair;
            if i >= h.buckets.len() {
                return Err(DeError(format!("histogram bucket index {i} out of range")));
            }
            h.buckets[i] = n;
        }
        Ok(h)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50≈{} p99≈{} max={}",
            self.count,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.99),
            self.max()
        )
    }
}

/// A named-counter registry, deterministic iteration order.
///
/// Keys are interned [`Sym`]s, so bumping an already-interned counter
/// allocates nothing; names are materialized only when iterating or
/// serializing (both in *name* order, matching the wire shape this type
/// had when it was keyed by `String`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    map: BTreeMap<Sym, u64>,
}

impl Counters {
    /// An empty registry.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Add `n` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        self.add_sym(Sym::intern(name), n);
    }

    /// Add `n` to counter `sym` — the allocation-free hot path.
    pub fn add_sym(&mut self, sym: Sym, n: u64) {
        *self.map.entry(sym).or_insert(0) += n;
    }

    /// Increment counter `name` by one.
    pub fn bump(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (0 if never bumped). Never interns, so
    /// probing arbitrary names can't grow the process interner.
    pub fn get(&self, name: &str) -> u64 {
        Sym::try_lookup(name).map(|s| self.get_sym(s)).unwrap_or(0)
    }

    /// Current value of `sym` (0 if never bumped).
    pub fn get_sym(&self, sym: Sym) -> u64 {
        self.map.get(&sym).copied().unwrap_or(0)
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> {
        let mut pairs: Vec<(&'static str, u64)> =
            self.map.iter().map(|(s, n)| (s.as_str(), *n)).collect();
        pairs.sort_unstable_by_key(|&(name, _)| name);
        pairs.into_iter()
    }

    /// Reset all counters to zero (drops names).
    pub fn reset(&mut self) {
        self.map.clear();
    }

    /// Number of distinct counter names.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

// Hand-written to preserve the exact wire shape of the former
// `BTreeMap<String, u64>` field: `{"map": [[name, count], ...]}` with
// pairs in name order. (The intern-order `Sym` keys are process-local
// and never serialized.)
impl Serialize for Counters {
    fn to_json_value(&self) -> Value {
        let pairs: Vec<Value> = self
            .iter()
            .map(|(name, n)| Value::Array(vec![Value::Str(name.to_owned()), Value::U64(n)]))
            .collect();
        Value::Object(vec![("map".to_owned(), Value::Array(pairs))])
    }
}

impl Deserialize for Counters {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let pairs = v
            .get("map")
            .and_then(Value::as_array)
            .ok_or_else(|| DeError("counters missing `map` array".to_owned()))?;
        let mut c = Counters::new();
        for pair in pairs {
            let (name, n): (String, u64) = Deserialize::from_json_value(pair)?;
            c.add(&name, n);
        }
        Ok(c)
    }
}

/// Counters bucketed into fixed windows of virtual time, so a run's
/// counter totals can be read as a time series instead of one final sum.
/// A zero window width disables recording entirely (the default).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowedCounters {
    window_ns: u64,
    windows: BTreeMap<u64, Counters>,
}

impl WindowedCounters {
    /// Disabled (zero-width) windows — `record` is a no-op.
    pub fn disabled() -> Self {
        WindowedCounters::default()
    }

    /// Counters bucketed into windows of `window_ns` virtual nanoseconds.
    pub fn new(window_ns: u64) -> Self {
        WindowedCounters {
            window_ns,
            windows: BTreeMap::new(),
        }
    }

    /// The window width (0 = disabled).
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Add `n` to `name` in the window containing `now`.
    pub fn record(&mut self, now: SimTime, name: &str, n: u64) {
        if self.window_ns == 0 {
            return;
        }
        self.record_sym(now, Sym::intern(name), n);
    }

    /// Add `n` to `sym` in the window containing `now` — the
    /// allocation-free hot path (amortized: a window's first event
    /// allocates its bucket).
    pub fn record_sym(&mut self, now: SimTime, sym: Sym, n: u64) {
        if self.window_ns == 0 {
            return;
        }
        let start = (now.as_nanos() / self.window_ns) * self.window_ns;
        self.windows.entry(start).or_default().add_sym(sym, n);
    }

    /// Iterate `(window start, counters)` in time order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &Counters)> {
        self.windows.iter().map(|(t, c)| (SimTime(*t), c))
    }

    /// Number of non-empty windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Have any events been recorded?
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Drop recorded windows (keeps the width).
    pub fn clear(&mut self) {
        self.windows.clear();
    }
}

/// Per-endpoint traffic and latency, as exported in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EndpointMetrics {
    /// The endpoint's kernel id.
    pub endpoint: u64,
    /// Its human-readable name.
    pub name: String,
    /// Messages it attempted to send.
    pub sent: u64,
    /// Messages delivered to it.
    pub received: u64,
    /// Latency distribution of messages delivered to it.
    pub in_latency: Histogram,
}

/// A JSON-exportable snapshot of everything the kernel measures: global
/// stats, named counters (flat and time-windowed), the global and
/// per-message-kind latency distributions, and per-endpoint traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Virtual time at snapshot.
    pub at: SimTime,
    /// Global kernel statistics.
    pub stats: crate::sim::KernelStats,
    /// Named protocol counters.
    pub counters: Counters,
    /// Delivered-message latency, all messages.
    pub latency: Histogram,
    /// Delivered-message latency by message kind (method name / `reply`).
    pub by_kind: BTreeMap<String, Histogram>,
    /// Per-endpoint traffic, in endpoint-id order.
    pub endpoints: Vec<EndpointMetrics>,
    /// Time-windowed counters (empty unless enabled).
    pub windows: WindowedCounters,
    /// Span events evicted from the trace sink (0 unless tracing).
    pub trace_dropped: u64,
    /// Calls dead-lettered at the dispatch layer: the sum of the
    /// per-endpoint `*.dead_letter` counters `dispatch::serve` bumps
    /// (distinct from `stats.dead_letters`, which counts kernel
    /// deliveries to dead endpoints).
    pub dispatch_dead_letters: u64,
    /// Pending continuations expired by dispatch deadline sweeps
    /// (the `net.timeout_expired` counter).
    pub timeouts_expired: u64,
    /// Calls refused admission by overloaded endpoints
    /// (the `net.requests_shed` counter).
    pub requests_shed: u64,
    /// `Overloaded` error replies actually sent back to callers
    /// (the `net.overload_replies` counter; differs from
    /// `requests_shed` when shed one-way messages have no reply path).
    pub overload_replies: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn record_updates_aggregates() {
        let mut h = Histogram::new();
        for v in [1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 26.5).abs() < 1e-9);
    }

    #[test]
    fn zero_goes_to_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn quantile_is_monotone_and_bounding() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        // Each quantile over-estimates by at most 2x (bucket upper bound).
        assert!((500..=1024).contains(&p50), "p50={p50}");
        assert!((990..=2048).contains(&p99), "p99={p99}");
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(4);
        let mut b = Histogram::new();
        b.record(1024);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 4);
        assert_eq!(a.max(), 1024);
    }

    #[test]
    fn counters_bump_add_get() {
        let mut c = Counters::new();
        assert!(c.is_empty());
        c.bump("hits");
        c.add("hits", 4);
        c.add("misses", 2);
        assert_eq!(c.get("hits"), 5);
        assert_eq!(c.get("misses"), 2);
        assert_eq!(c.get("absent"), 0);
        assert_eq!(c.len(), 2);
        let names: Vec<_> = c.iter().map(|(n, _)| n.to_owned()).collect();
        assert_eq!(names, vec!["hits", "misses"]);
        c.reset();
        assert!(c.is_empty());
    }

    #[test]
    fn display_is_compact() {
        let mut h = Histogram::new();
        h.record(10);
        let s = h.to_string();
        assert!(s.contains("n=1"));
    }

    #[test]
    fn quantile_saturates_on_top_bucket() {
        // Regression: a sample in bucket 64 (value ≥ 2^63) used to panic
        // in debug builds via `1u64 << 64`.
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.quantile(0.5), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn histogram_json_round_trip() {
        let mut h = Histogram::new();
        for v in [0, 1, 7, 1 << 20, u64::MAX] {
            h.record(v);
        }
        let text = serde::json::to_string(&h.to_json_value());
        let back = Histogram::from_json_value(&serde::json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.quantile(0.5), h.quantile(0.5));
        // An empty histogram (min = u64::MAX sentinel) round-trips too.
        let empty = Histogram::new();
        let text = serde::json::to_string(&empty.to_json_value());
        let back = Histogram::from_json_value(&serde::json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn histogram_encoding_is_sparse() {
        let mut h = Histogram::new();
        h.record(5);
        let v = h.to_json_value();
        let buckets = v.get("buckets").and_then(Value::as_array).unwrap();
        assert_eq!(buckets.len(), 1, "only non-empty buckets are encoded");
    }

    #[test]
    fn windowed_counters_bucket_by_time() {
        let mut w = WindowedCounters::new(100);
        w.record(SimTime(10), "x", 1);
        w.record(SimTime(99), "x", 1);
        w.record(SimTime(100), "x", 1);
        w.record(SimTime(250), "y", 5);
        assert_eq!(w.len(), 3);
        let series: Vec<(u64, u64, u64)> = w
            .iter()
            .map(|(t, c)| (t.as_nanos(), c.get("x"), c.get("y")))
            .collect();
        assert_eq!(series, vec![(0, 2, 0), (100, 1, 0), (200, 0, 5)]);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.window_ns(), 100);
    }

    #[test]
    fn disabled_windows_record_nothing() {
        let mut w = WindowedCounters::disabled();
        w.record(SimTime(10), "x", 1);
        assert!(w.is_empty());
    }

    #[test]
    fn windowed_counters_round_trip() {
        let mut w = WindowedCounters::new(1_000);
        w.record(SimTime(1), "a", 2);
        w.record(SimTime(2_500), "b", 3);
        let text = serde::json::to_string(&w.to_json_value());
        let back =
            WindowedCounters::from_json_value(&serde::json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, w);
    }
}
