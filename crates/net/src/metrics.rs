//! Lightweight metrics for the simulation substrate.
//!
//! The paper's scalability argument (§5.2) is entirely about *request
//! counts to components* — "the number of requests to any particular
//! system component must not be an increasing function of the number of
//! hosts in the system". The kernel therefore counts messages per
//! endpoint automatically, and components bump named counters for
//! protocol-level events (cache hits, class consultations, activations).
//! Latency distributions use a log₂-bucketed [`Histogram`].

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A log₂-bucketed histogram of `u64` samples (nanoseconds, counts, …).
///
/// Bucket `i` holds samples in `[2^(i-1), 2^i)` (bucket 0 holds zero).
/// Quantiles are approximate (bucket upper bound), which is plenty for
/// order-of-magnitude latency comparisons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// containing the q-th sample. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50≈{} p99≈{} max={}",
            self.count,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.99),
            self.max()
        )
    }
}

/// A named-counter registry (string → u64), deterministic iteration order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    map: BTreeMap<String, u64>,
}

impl Counters {
    /// An empty registry.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Add `n` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        match self.map.get_mut(name) {
            Some(v) => *v += n,
            None => {
                self.map.insert(name.to_owned(), n);
            }
        }
    }

    /// Increment counter `name` by one.
    pub fn bump(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (0 if never bumped).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Reset all counters to zero (drops names).
    pub fn reset(&mut self) {
        self.map.clear();
    }

    /// Number of distinct counter names.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn record_updates_aggregates() {
        let mut h = Histogram::new();
        for v in [1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 26.5).abs() < 1e-9);
    }

    #[test]
    fn zero_goes_to_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn quantile_is_monotone_and_bounding() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        // Each quantile over-estimates by at most 2x (bucket upper bound).
        assert!((500..=1024).contains(&p50), "p50={p50}");
        assert!((990..=2048).contains(&p99), "p99={p99}");
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(4);
        let mut b = Histogram::new();
        b.record(1024);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 4);
        assert_eq!(a.max(), 1024);
    }

    #[test]
    fn counters_bump_add_get() {
        let mut c = Counters::new();
        assert!(c.is_empty());
        c.bump("hits");
        c.add("hits", 4);
        c.add("misses", 2);
        assert_eq!(c.get("hits"), 5);
        assert_eq!(c.get("misses"), 2);
        assert_eq!(c.get("absent"), 0);
        assert_eq!(c.len(), 2);
        let names: Vec<_> = c.iter().map(|(n, _)| n.to_owned()).collect();
        assert_eq!(names, vec!["hits", "misses"]);
        c.reset();
        assert!(c.is_empty());
    }

    #[test]
    fn display_is_compact() {
        let mut h = Histogram::new();
        h.record(10);
        let s = h.to_string();
        assert!(s.contains("n=1"));
    }
}
