//! # The kernel message pool — recycled message-body buffers
//!
//! The second half of the hot-path overhaul (the first is the
//! [`crate::equeue`] timer wheel): stop paying malloc/free per delivery
//! for the heap parts of a [`Message`] body. Two shapes dominate the
//! §5.2 lookup traffic:
//!
//! * the **argument vector** of a call (`GetBinding(loid)` is one
//!   element), allocated by the caller and dropped by the callee, and
//! * the **binding box** of a reply (`LegionValue::Binding(Box<Binding>)`
//!   plus the `ObjectAddress` element vector inside it), allocated by
//!   the responder and dropped by the requester.
//!
//! Both cycles close through the kernel: the caller draws a spent buffer
//! from the pool ([`Ctx::take_args`](crate::sim::Ctx::take_args),
//! [`Ctx::binding_value`](crate::sim::Ctx::binding_value)), and the
//! consumer returns the shell after extracting what it needs
//! (`dispatch::serve` recycles served call bodies automatically;
//! reply consumers recycle through
//! [`Ctx::recycle_value`](crate::sim::Ctx::recycle_value)). In steady
//! state a request/reply round trip touches the allocator only where a
//! value genuinely changes owners (e.g. a fresh cache entry).
//!
//! ## Recycling rules (the invariants DESIGN.md documents)
//!
//! * Recycling is **semantically invisible**: a pooled buffer carries
//!   capacity, never contents. `take_args` returns an empty vector;
//!   `binding_value` overwrites every field of a recycled shell.
//! * The pool is **bounded** ([`POOL_CAP`] buffers per shape): a burst
//!   can't turn the free lists into a leak.
//! * Recycling **never allocates**: a full pool drops the buffer
//!   (deallocation only), an empty pool falls back to a plain
//!   allocation. `alloc_budget` asserts the recycle path is zero-alloc.

use crate::message::{Body, Message};
use legion_core::binding::Binding;
use legion_core::value::LegionValue;

/// Upper bound on retained buffers per shape. Generous for the widest
/// experiment (hundreds of in-flight lookups), small enough that the
/// retained memory is trivial (a few hundred KiB).
pub const POOL_CAP: usize = 1024;

/// Free lists for the message-body heap shapes the hot path recycles.
#[derive(Default)]
pub struct MessagePool {
    /// Spent call argument vectors, cleared, capacity retained.
    args: Vec<Vec<LegionValue>>,
    /// Spent reply binding boxes; each shell keeps its `ObjectAddress`
    /// element vector's capacity, so refilling one is allocation-free.
    /// The box itself is the pooled unit — `LegionValue::Binding` wraps
    /// a `Box<Binding>`, so unboxing here would re-allocate on reuse.
    #[allow(clippy::vec_box)]
    shells: Vec<Box<Binding>>,
}

impl MessagePool {
    /// An empty pool.
    pub fn new() -> Self {
        MessagePool::default()
    }

    /// An empty argument buffer: recycled if one is pooled, fresh
    /// (unallocated until first push) otherwise.
    pub fn take_args(&mut self) -> Vec<LegionValue> {
        self.args.pop().unwrap_or_default()
    }

    /// Return a spent argument buffer. Contents are dropped here;
    /// capacity is what the pool keeps.
    pub fn recycle_args(&mut self, mut args: Vec<LegionValue>) {
        if args.capacity() > 0 && self.args.len() < POOL_CAP {
            args.clear();
            self.args.push(args);
        }
    }

    /// A `LegionValue::Binding` carrying a copy of `src`, built in a
    /// recycled shell when one is available (no allocation if the
    /// shell's element buffer is wide enough), boxed fresh otherwise.
    pub fn binding_value(&mut self, src: &Binding) -> LegionValue {
        match self.shells.pop() {
            Some(mut shell) => {
                shell.loid = src.loid;
                shell.expiry = src.expiry;
                shell.address.semantics = src.address.semantics;
                shell.address.elements.clone_from(&src.address.elements);
                LegionValue::Binding(shell)
            }
            None => LegionValue::from(src.clone()),
        }
    }

    /// Recycle the heap shells of a spent value: binding boxes (with
    /// their element buffers) and list vectors. Scalar values are
    /// simply dropped.
    pub fn recycle_value(&mut self, value: LegionValue) {
        match value {
            LegionValue::Binding(shell) if self.shells.len() < POOL_CAP => {
                self.shells.push(shell);
            }
            LegionValue::List(list) => self.recycle_args(list),
            _ => {}
        }
    }

    /// Decompose a fully-handled message and recycle its body's buffers:
    /// a call's argument vector, a reply's result value.
    pub fn recycle_message(&mut self, msg: Message) {
        match msg.body {
            Body::Call { args, .. } => self.recycle_args(args),
            Body::Reply { result: Ok(v), .. } => self.recycle_value(v),
            Body::Reply { result: Err(_), .. } => {}
        }
    }

    /// Pooled buffer counts `(args, shells)` — observability for tests.
    pub fn depths(&self) -> (usize, usize) {
        (self.args.len(), self.shells.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_core::address::ObjectAddress;
    use legion_core::loid::Loid;
    use legion_core::time::Expiry;

    fn binding(ep: u64) -> Binding {
        Binding {
            loid: Loid::class_object(20 + ep),
            address: ObjectAddress::single(legion_core::address::ObjectAddressElement::sim(ep)),
            expiry: Expiry::Never,
        }
    }

    #[test]
    fn args_round_trip_keeps_capacity_and_clears() {
        let mut pool = MessagePool::new();
        let mut v = pool.take_args();
        assert!(v.is_empty());
        v.push(LegionValue::Uint(7));
        v.push(LegionValue::Uint(8));
        let cap = v.capacity();
        pool.recycle_args(v);
        let v2 = pool.take_args();
        assert!(v2.is_empty(), "recycled buffer must come back empty");
        assert_eq!(v2.capacity(), cap, "capacity survives the round trip");
        // Capacity-less buffers are not worth pooling.
        pool.recycle_args(Vec::new());
        assert_eq!(pool.depths().0, 0);
    }

    #[test]
    fn binding_value_matches_plain_construction() {
        let mut pool = MessagePool::new();
        let b1 = binding(3);
        let fresh = pool.binding_value(&b1); // pool empty: plain path
        assert_eq!(fresh, LegionValue::from(b1.clone()));
        pool.recycle_value(fresh);
        assert_eq!(pool.depths().1, 1);
        let b2 = binding(9);
        let reused = pool.binding_value(&b2); // pooled shell, overwritten
        assert_eq!(reused, LegionValue::from(b2.clone()));
        assert_eq!(pool.depths().1, 0);
    }

    #[test]
    fn pool_is_bounded() {
        let mut pool = MessagePool::new();
        for i in 0..POOL_CAP + 10 {
            pool.recycle_value(LegionValue::from(binding(i as u64)));
            let mut v = Vec::with_capacity(2);
            v.push(LegionValue::Uint(i as u64));
            pool.recycle_args(v);
        }
        assert_eq!(pool.depths(), (POOL_CAP, POOL_CAP));
    }

    #[test]
    fn recycle_message_routes_both_bodies() {
        let mut pool = MessagePool::new();
        let call = Message::call(
            crate::message::CallId(1),
            Loid::class_object(21),
            legion_core::class::methods::GET_BINDING,
            vec![LegionValue::Uint(1)],
            legion_core::env::InvocationEnv::default(),
        );
        let reply = Message::reply_to(
            &call,
            crate::message::CallId(2),
            Ok(LegionValue::from(binding(4))),
        );
        pool.recycle_message(call);
        pool.recycle_message(reply);
        assert_eq!(pool.depths(), (1, 1));
    }
}
