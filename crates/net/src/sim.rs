//! The deterministic discrete-event kernel.
//!
//! Every Active Legion object (and every Host Object, Magistrate, Binding
//! Agent, and class object) runs as an **endpoint** attached to the
//! kernel. Endpoints interact only through messages — the paper's
//! "independent, address space disjoint objects" — and through timers.
//! The kernel:
//!
//! * delivers messages with topology-sampled latency ([`crate::topology`]),
//! * applies the fault plan ([`crate::faults`]),
//! * counts traffic per endpoint (the §5.2 "distributed systems principle"
//!   measurements) and globally,
//! * is fully deterministic for a given seed (events are ordered by
//!   `(time, sequence)`),
//! * lets handlers spawn and remove endpoints (activation/deactivation).
//!
//! Sends to a *dead or unknown* endpoint fail **detectably** at the sender
//! (connection refused) — this is the §4.1.4 signal that a cached binding
//! has gone stale. Random drops and partitions are *silent*.

use crate::equeue::EventQueue;
use crate::faults::{DedupState, FaultPlan, Verdict};
use crate::message::{Body, CallId, Message};
use crate::metrics::{Counters, EndpointMetrics, Histogram, MetricsSnapshot, WindowedCounters};
use crate::pool::MessagePool;
use crate::topology::{Location, Topology};
use legion_core::address::{AddressSemantics, ObjectAddress, ObjectAddressElement};
use legion_core::binding::Binding;
use legion_core::env::InvocationEnv;
use legion_core::loid::Loid;
use legion_core::symbol::{self, Sym};
use legion_core::time::SimTime;
use legion_core::trace::{SpanId, TraceContext};
use legion_core::value::LegionValue;
use legion_journal::{
    Divergence, JournalError, JournalSink, JournalSummary, KernelJournal, RecordKind, ReplayStart,
    SnapshotStore,
};
use legion_obs::profile::{KernelProfiler, Profile};
use legion_obs::sink::TraceSink;
use legion_obs::slo::{BurnEvent, SloConfig, SloReport, SloTracker};
use legion_obs::span::{SpanEvent, SpanEventKind};
use legion_persist::Writer as StateWriter;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;

// Re-exported so endpoint crates can record flight events through
// [`Ctx::flight`] without depending on `legion-obs` directly.
pub use legion_obs::recorder::{FlightEvent, FlightKind, FlightRecorder};

/// Identifies an endpoint attached to the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EndpointId(pub u64);

impl EndpointId {
    /// The address element for this endpoint.
    pub fn element(self) -> ObjectAddressElement {
        ObjectAddressElement::sim(self.0)
    }

    /// A single-element Object Address for this endpoint.
    pub fn address(self) -> ObjectAddress {
        ObjectAddress::single(self.element())
    }
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// A simulated process: receives messages and timer ticks.
///
/// `Any` is a supertrait so tests and drivers can downcast endpoints for
/// inspection (`SimKernel::endpoint::<T>`).
pub trait Endpoint: Any {
    /// Called once, right after the endpoint is attached.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
    /// A message arrived.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message);
    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _tag: u64) {}
}

/// Descriptive and accounting data for one endpoint.
#[derive(Debug, Clone)]
pub struct EndpointMeta {
    /// Where the endpoint lives (latency tiers, partitions).
    pub location: Location,
    /// Human-readable name for reports.
    pub name: String,
    /// Messages delivered to this endpoint.
    pub received: u64,
    /// Messages this endpoint attempted to send.
    pub sent: u64,
    /// Latency distribution of messages delivered to this endpoint.
    pub in_latency: Histogram,
    /// Is the endpoint alive? Dead endpoints refuse sends detectably.
    pub alive: bool,
}

/// How many per-sender sequence numbers each receiver remembers for
/// at-most-once delivery. Far larger than any realistic in-flight window,
/// so reordered originals are never mistaken for duplicates.
const DEDUP_WINDOW: usize = 1024;

struct Slot {
    ep: Option<Box<dyn Endpoint>>,
    meta: EndpointMeta,
    /// Next per-sender sequence number stamped onto this endpoint's sends.
    next_seq: u64,
    /// Receiver half of at-most-once delivery: sequence numbers already
    /// admitted, per sender.
    seen: DedupState,
}

impl Slot {
    fn new(meta: EndpointMeta, ep: Box<dyn Endpoint>) -> Self {
        Slot {
            ep: Some(ep),
            meta,
            next_seq: 0,
            seen: DedupState::new(DEDUP_WINDOW),
        }
    }
}

// `Deliver` holds the message inline: events already live on the heap
// inside the queue's backing storage, so boxing the message again was a
// pure extra allocation on every accepted send. The variant size skew is
// the point — deliveries dominate the queue, so the per-event footprint
// is the message either way, minus the indirection.
#[allow(clippy::large_enum_variant)]
enum EventKind {
    Start,
    Deliver(Message),
    Timer(u64),
}

struct Event {
    at: SimTime,
    seq: u64,
    to: EndpointId,
    /// Trace context the event executes under: the message's context for
    /// deliveries, the context captured when the timer was armed for
    /// timers, none for starts.
    trace: TraceContext,
    /// `(sender, per-sender sequence number)` for deliveries: the key the
    /// receiver's at-most-once window checks. A duplicated message's two
    /// copies share one key. `None` for starts and timers.
    dedup: Option<(u64, u64)>,
    /// The hop latency this delivery paid (sim-time the profiler
    /// attributes to the handling endpoint). Zero for starts and timers.
    lat_ns: u64,
    kind: EventKind,
}

/// Global kernel statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Messages accepted into the network.
    pub sent: u64,
    /// Messages delivered to a live endpoint.
    pub delivered: u64,
    /// Messages silently lost (drops, partitions).
    pub lost: u64,
    /// Sends refused detectably (dead/unknown endpoint).
    pub refused: u64,
    /// Deliveries that found the endpoint dead on arrival.
    pub dead_letters: u64,
    /// Events processed.
    pub events: u64,
}

struct Inner {
    now: SimTime,
    seq: u64,
    next_call: u64,
    queue: EventQueue<Event>,
    topology: Topology,
    faults: FaultPlan,
    rng: SmallRng,
    counters: Counters,
    latency: Histogram,
    by_kind: BTreeMap<Sym, Histogram>,
    windows: WindowedCounters,
    stats: KernelStats,
    sink: TraceSink,
    /// The trace context of the handler currently executing (stamped onto
    /// outgoing sends and captured by armed timers).
    current: TraceContext,
    /// Sequence counter for sends injected from outside the kernel.
    external_seq: u64,
    /// At-most-once delivery on/off (off only to demonstrate what a
    /// duplicating network does to an unprotected endpoint).
    dedup_enabled: bool,
    /// The always-on flight recorder: last-N kernel events, dumped on
    /// chaos violations, deadline sweeps, and panics.
    flight: FlightRecorder,
    /// Per-endpoint × per-method cost attribution (off by default).
    profile: KernelProfiler,
    /// Windowed latency-objective tracking (off by default).
    slo: SloTracker,
    /// Dump the recorder tail to stderr when a deadline sweep expires
    /// continuations (on by default — a fired sweep is a failure
    /// worth post-mortem context).
    flight_dump_on_sweep: bool,
    /// The event journal: off (default), recording every kernel ingress,
    /// or verifying a re-execution against a reference journal.
    journal: KernelJournal,
    /// Free lists for recycled message-body buffers (arg vectors,
    /// binding shells) — see [`crate::pool`].
    pool: MessagePool,
}

/// The outcome of sending through an [`ObjectAddress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SendReport {
    /// Elements the semantics selected for this send.
    pub attempted: usize,
    /// Sends accepted into the network (silent loss may still occur).
    pub accepted: usize,
}

impl SendReport {
    /// Did at least one send get accepted?
    pub fn any_accepted(&self) -> bool {
        self.accepted > 0
    }
}

/// The deterministic discrete-event kernel.
pub struct SimKernel {
    slots: Vec<Slot>,
    inner: Inner,
}

impl SimKernel {
    /// A kernel with the given topology, fault plan, and RNG seed.
    pub fn new(topology: Topology, faults: FaultPlan, seed: u64) -> Self {
        SimKernel {
            slots: Vec::new(),
            inner: Inner {
                now: SimTime::ZERO,
                seq: 0,
                next_call: 1,
                queue: EventQueue::new(),
                topology,
                faults,
                rng: SmallRng::seed_from_u64(seed),
                counters: Counters::new(),
                latency: Histogram::new(),
                by_kind: BTreeMap::new(),
                windows: WindowedCounters::disabled(),
                stats: KernelStats::default(),
                sink: TraceSink::disabled(),
                current: TraceContext::NONE,
                external_seq: 0,
                dedup_enabled: true,
                flight: FlightRecorder::default(),
                profile: KernelProfiler::disabled(),
                slo: SloTracker::disabled(),
                flight_dump_on_sweep: true,
                journal: KernelJournal::default(),
                pool: MessagePool::new(),
            },
        }
    }

    /// A default-topology, fault-free kernel.
    pub fn with_seed(seed: u64) -> Self {
        SimKernel::new(Topology::default(), FaultPlan::none(), seed)
    }

    /// Attach an endpoint; its `on_start` runs at the current time.
    pub fn add_endpoint(
        &mut self,
        ep: Box<dyn Endpoint>,
        location: Location,
        name: impl Into<String>,
    ) -> EndpointId {
        let id = EndpointId(self.slots.len() as u64);
        let name = name.into();
        self.inner
            .journal_note_str(RecordKind::Attach, id.0, 0, 0, &name);
        self.slots.push(Slot::new(
            EndpointMeta {
                location,
                name,
                received: 0,
                sent: 0,
                in_latency: Histogram::new(),
                alive: true,
            },
            ep,
        ));
        let seq = self.inner.bump_seq();
        self.inner.enqueue(Event {
            at: self.inner.now,
            seq,
            to: id,
            trace: TraceContext::NONE,
            dedup: None,
            lat_ns: 0,
            kind: EventKind::Start,
        });
        id
    }

    /// Remove (kill) an endpoint. Future sends to it are refused; queued
    /// deliveries become dead letters.
    pub fn remove_endpoint(&mut self, id: EndpointId) {
        if let Some(slot) = self.slots.get_mut(id.0 as usize) {
            slot.meta.alive = false;
            slot.ep = None;
            self.inner
                .journal_note_str(RecordKind::Detach, id.0, 0, 0, "");
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now
    }

    /// Global statistics.
    pub fn stats(&self) -> &KernelStats {
        &self.inner.stats
    }

    /// Named protocol counters bumped by endpoints.
    pub fn counters(&self) -> &Counters {
        &self.inner.counters
    }

    /// Reset named counters and per-endpoint traffic (not the clock).
    /// Observability state resets too: the flight recorder forgets its
    /// ring, the profiler zeroes its stats in place (keeping warmed-up
    /// map keys), and the SLO tracker drops collected windows.
    pub fn reset_metrics(&mut self) {
        self.inner.counters.reset();
        self.inner.latency = Histogram::new();
        self.inner.by_kind.clear();
        self.inner.windows.clear();
        self.inner.stats = KernelStats::default();
        self.inner.flight.clear();
        self.inner.profile.reset_values();
        self.inner.slo.clear();
        for slot in &mut self.slots {
            slot.meta.received = 0;
            slot.meta.sent = 0;
            slot.meta.in_latency = Histogram::new();
        }
    }

    /// Delivered-message latency distribution.
    pub fn latency_histogram(&self) -> &Histogram {
        &self.inner.latency
    }

    /// Delivered-message latency by message kind (method name / `reply`),
    /// rendered to names. The kernel keys the map by [`Sym`]; names are
    /// materialized only here and at snapshot time.
    pub fn kind_histograms(&self) -> BTreeMap<String, Histogram> {
        render_by_kind(&self.inner.by_kind)
    }

    /// Start recording span events into a bounded sink.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.inner.sink = TraceSink::with_capacity(capacity);
    }

    /// Is span recording on?
    pub fn tracing_enabled(&self) -> bool {
        self.inner.sink.is_enabled()
    }

    /// The trace sink (inspect without draining).
    pub fn trace_sink(&self) -> &TraceSink {
        &self.inner.sink
    }

    /// Take every recorded span event, leaving tracing enabled.
    pub fn drain_trace(&mut self) -> Vec<SpanEvent> {
        self.inner.sink.drain()
    }

    /// Open a root span from outside the kernel (drivers, tests). The
    /// returned context can be stamped onto an injected message's
    /// environment. Returns [`TraceContext::NONE`] when tracing is off.
    pub fn begin_trace(&mut self, label: &str) -> TraceContext {
        self.inner
            .sink
            .begin(self.inner.now, SpanEvent::EXTERNAL, label)
    }

    /// Close a root span opened with [`SimKernel::begin_trace`].
    pub fn end_trace(&mut self, tc: TraceContext, outcome: &str) {
        if tc.is_active() {
            let at = self.inner.now;
            self.inner.sink.record(SpanEvent {
                trace: tc.trace,
                span: tc.span,
                parent: SpanId::NONE,
                kind: SpanEventKind::End,
                at,
                endpoint: SpanEvent::EXTERNAL,
                label: outcome.to_owned(),
            });
        }
    }

    /// Start bucketing named counters into windows of `window_ns`.
    pub fn enable_windows(&mut self, window_ns: u64) {
        self.inner.windows = WindowedCounters::new(window_ns);
    }

    /// The time-windowed counters (empty unless enabled).
    pub fn windows(&self) -> &WindowedCounters {
        &self.inner.windows
    }

    /// The always-on flight recorder (read the tail, render dumps).
    pub fn flight(&self) -> &FlightRecorder {
        &self.inner.flight
    }

    /// Replace the flight recorder's ring with one of `capacity` events
    /// (discards recorded history).
    pub fn set_flight_capacity(&mut self, capacity: usize) {
        self.inner.flight = FlightRecorder::new(capacity);
    }

    /// Should a deadline sweep that expires continuations dump the
    /// recorder tail to stderr? On by default.
    pub fn set_flight_dump_on_sweep(&mut self, on: bool) {
        self.inner.flight_dump_on_sweep = on;
    }

    /// Turn on per-endpoint × per-method cost attribution.
    pub fn enable_profiling(&mut self) {
        self.inner.profile = KernelProfiler::enabled();
    }

    /// Is the profiler collecting?
    pub fn profiling_enabled(&self) -> bool {
        self.inner.profile.is_enabled()
    }

    /// Snapshot the profiler with endpoint names resolved (empty when
    /// profiling is off).
    pub fn profile(&self) -> Profile {
        self.inner.profile.snapshot(|ep| {
            self.slots
                .get(ep as usize)
                .map(|s| s.meta.name.clone())
                .unwrap_or_else(|| format!("ep{ep}"))
        })
    }

    /// Turn on windowed latency-objective tracking.
    pub fn enable_slo(&mut self, cfg: SloConfig) {
        self.inner.slo = SloTracker::new(cfg);
    }

    /// Turn on SLO tracking *with* the incremental burn monitor, so
    /// in-sim consumers ([`Ctx::drain_burn_events`]) see burn-rate
    /// alarms while the run is still executing — the signal an
    /// auto-scaling policy endpoint closes its control loop on.
    pub fn enable_slo_online(&mut self, cfg: SloConfig) {
        self.inner.slo = SloTracker::new_online(cfg);
    }

    /// Is SLO tracking collecting?
    pub fn slo_enabled(&self) -> bool {
        self.inner.slo.is_enabled()
    }

    /// Evaluate the collected SLO windows with endpoint names resolved.
    /// `None` when tracking is off.
    pub fn slo_report(&self) -> Option<SloReport> {
        self.inner.slo.report(|ep| {
            self.slots
                .get(ep as usize)
                .map(|s| s.meta.name.clone())
                .unwrap_or_else(|| format!("ep{ep}"))
        })
    }

    /// A JSON-exportable snapshot of everything the kernel measures.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            at: self.inner.now,
            stats: self.inner.stats.clone(),
            counters: self.inner.counters.clone(),
            latency: self.inner.latency.clone(),
            by_kind: render_by_kind(&self.inner.by_kind),
            endpoints: self
                .slots
                .iter()
                .enumerate()
                .map(|(i, s)| EndpointMetrics {
                    endpoint: i as u64,
                    name: s.meta.name.clone(),
                    sent: s.meta.sent,
                    received: s.meta.received,
                    in_latency: s.meta.in_latency.clone(),
                })
                .collect(),
            windows: self.inner.windows.clone(),
            trace_dropped: self.inner.sink.dropped(),
            dispatch_dead_letters: self
                .inner
                .counters
                .iter()
                .filter(|(name, _)| name.ends_with(".dead_letter"))
                .map(|(_, n)| n)
                .sum(),
            timeouts_expired: self.inner.counters.get_sym(symbol::NET_TIMEOUT_EXPIRED),
            requests_shed: self.inner.counters.get_sym(symbol::NET_REQUESTS_SHED),
            overload_replies: self.inner.counters.get_sym(symbol::NET_OVERLOAD_REPLIES),
        }
    }

    /// Metadata for an endpoint.
    pub fn meta(&self, id: EndpointId) -> Option<&EndpointMeta> {
        self.slots.get(id.0 as usize).map(|s| &s.meta)
    }

    /// Metadata for every endpoint, in id order.
    pub fn all_meta(&self) -> impl Iterator<Item = (EndpointId, &EndpointMeta)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| (EndpointId(i as u64), &s.meta))
    }

    /// Mutable fault plan (inject faults mid-run).
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.inner.faults
    }

    /// Downcast a live endpoint for inspection.
    pub fn endpoint<T: Endpoint>(&self, id: EndpointId) -> Option<&T> {
        let slot = self.slots.get(id.0 as usize)?;
        let ep = slot.ep.as_deref()?;
        (ep as &dyn Any).downcast_ref::<T>()
    }

    /// Downcast a live endpoint for mutation (test setup only; production
    /// interaction goes through messages).
    pub fn endpoint_mut<T: Endpoint>(&mut self, id: EndpointId) -> Option<&mut T> {
        let slot = self.slots.get_mut(id.0 as usize)?;
        let ep = slot.ep.as_deref_mut()?;
        (ep as &mut dyn Any).downcast_mut::<T>()
    }

    /// Send a message from "outside Legion" (bootstrap, drivers, tests).
    /// Delivered at `now + latency from `from_location``.
    pub fn inject(
        &mut self,
        from_location: Location,
        to: ObjectAddressElement,
        msg: Message,
    ) -> bool {
        let inner = &mut self.inner;
        inner.journal_note(
            RecordKind::Inject,
            to.sim_endpoint().unwrap_or(u64::MAX),
            msg.id.0,
            0,
            kind_sym(&msg),
        );
        send_one(inner, &mut self.slots, from_location, None, to, msg)
    }

    /// A fresh call id for drivers injecting calls from outside.
    pub fn fresh_call_id(&mut self) -> CallId {
        self.inner.fresh_call_id()
    }

    /// Arm a timer on `to` from outside any handler (bootstrap and test
    /// harnesses configuring endpoints through `endpoint_mut` after
    /// their `on_start` already ran). Returns `false` if the endpoint is
    /// not alive.
    pub fn set_timer(&mut self, to: EndpointId, delay_ns: u64, tag: u64) -> bool {
        let alive = self
            .slots
            .get(to.0 as usize)
            .map(|s| s.meta.alive && s.ep.is_some())
            .unwrap_or(false);
        if !alive {
            return false;
        }
        let at = self.inner.now.saturating_add(delay_ns);
        let seq = self.inner.bump_seq();
        self.inner.enqueue(Event {
            at,
            seq,
            to,
            trace: TraceContext::NONE,
            dedup: None,
            lat_ns: 0,
            kind: EventKind::Timer(tag),
        });
        true
    }

    /// Turn the receiver-side at-most-once window off (or back on).
    /// On by default; switching it off exists solely to demonstrate what
    /// a duplicating network does to an unprotected endpoint.
    pub fn set_dedup_enabled(&mut self, on: bool) {
        self.inner.dedup_enabled = on;
    }

    /// Is the at-most-once window active?
    pub fn dedup_enabled(&self) -> bool {
        self.inner.dedup_enabled
    }

    /// Start journaling every kernel ingress to `sink`, taking a
    /// content-addressed state snapshot every `snap_every` events
    /// (0 = never). Enable right after construction, before attaching
    /// endpoints, so the journal covers the whole run.
    pub fn enable_journal_record(&mut self, sink: Box<dyn JournalSink>, snap_every: u64) {
        self.inner.journal = KernelJournal::record(sink, snap_every);
    }

    /// Verify this run against a reference journal: every ingress the
    /// re-execution produces is compared against the recorded one.
    /// `start` picks the fast path — from a snapshot mark, the prefix is
    /// skipped with a seq-alignment check and the snapshot's state root
    /// proves the re-executed state matches the recorded state there.
    pub fn enable_journal_verify(
        &mut self,
        data: Vec<u8>,
        start: ReplayStart,
    ) -> Result<(), JournalError> {
        self.inner.journal = KernelJournal::verify(data, start)?;
        Ok(())
    }

    /// Is a journal session (recording or verifying) live?
    pub fn journal_enabled(&self) -> bool {
        self.inner.journal.is_on()
    }

    /// The first divergence found while verifying, if any.
    pub fn journal_divergence(&self) -> Option<&Divergence> {
        self.inner.journal.divergence()
    }

    /// The content-addressed snapshots of a recording session.
    pub fn journal_snapshots(&self) -> Option<&SnapshotStore> {
        self.inner.journal.snapshots()
    }

    /// Finish the journal session: flush the sink (recording) or require
    /// the whole reference journal to have been consumed (verifying).
    /// Returns the summary and, in verify mode, the first divergence.
    pub fn finish_journal(&mut self) -> Result<(JournalSummary, Option<Divergence>), JournalError> {
        self.inner.journal.finish()
    }

    /// The flight-recorder dump annotated with journal position and
    /// nearest snapshot (plain dump when no journal session is live).
    pub fn flight_dump(&self, reason: &str, n: usize) -> String {
        self.inner.flight_dump(reason, n)
    }

    /// Materialize the kernel's replay-relevant state as named sections
    /// for a content-addressed snapshot. Sections that rarely change
    /// (idle endpoints) produce identical bytes and dedup across
    /// snapshots. Pure metrics (histograms, per-endpoint traffic) are
    /// excluded: they are derived observations, not inputs to execution.
    fn state_sections(&self) -> Vec<(String, Vec<u8>)> {
        let inner = &self.inner;
        let mut sections = Vec::with_capacity(4 + self.slots.len());

        let mut w = StateWriter::new();
        w.put_u64(inner.now.as_nanos());
        w.put_u64(inner.seq);
        w.put_u64(inner.next_call);
        w.put_u64(inner.external_seq);
        w.put_u8(inner.dedup_enabled as u8);
        w.put_u64(inner.stats.sent);
        w.put_u64(inner.stats.delivered);
        w.put_u64(inner.stats.lost);
        w.put_u64(inner.stats.refused);
        w.put_u64(inner.stats.dead_letters);
        w.put_u64(inner.stats.events);
        sections.push(("core".to_string(), w.finish().to_vec()));

        let mut w = StateWriter::new();
        for word in inner.rng.state() {
            w.put_u64(word);
        }
        sections.push(("rng".to_string(), w.finish().to_vec()));

        let mut w = StateWriter::new();
        for (name, value) in inner.counters.iter() {
            w.put_str(name);
            w.put_u64(value);
        }
        sections.push(("counters".to_string(), w.finish().to_vec()));

        // The pending queue, in deterministic (time, seq) order — the
        // wheel's internal layout is not canonical.
        let mut pending: Vec<&Event> = inner.queue.iter().collect();
        pending.sort_unstable_by_key(|e| (e.at, e.seq));
        let mut w = StateWriter::new();
        w.put_varint(pending.len() as u64);
        for e in pending {
            w.put_u64(e.at.as_nanos());
            w.put_varint(e.seq);
            w.put_varint(e.to.0);
            w.put_u64(e.trace.trace.0);
            w.put_u64(e.trace.span.0);
            match e.dedup {
                Some((sender, n)) => {
                    w.put_u8(1);
                    w.put_varint(sender);
                    w.put_varint(n);
                }
                None => w.put_u8(0),
            }
            w.put_u64(e.lat_ns);
            match &e.kind {
                EventKind::Start => w.put_u8(0),
                EventKind::Deliver(m) => {
                    w.put_u8(1);
                    encode_message(&mut w, m);
                }
                EventKind::Timer(tag) => {
                    w.put_u8(2);
                    w.put_u64(*tag);
                }
            }
        }
        sections.push(("queue".to_string(), w.finish().to_vec()));

        for (i, slot) in self.slots.iter().enumerate() {
            let mut w = StateWriter::new();
            w.put_u32(slot.meta.location.jurisdiction);
            w.put_u32(slot.meta.location.host);
            w.put_str(&slot.meta.name);
            w.put_u8(slot.meta.alive as u8);
            w.put_varint(slot.next_seq);
            w.put_u64(slot.seen.state_digest());
            sections.push((format!("ep{i}"), w.finish().to_vec()));
        }
        sections
    }

    /// Process the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        // Snapshots land on the cadence boundary *between* events: after
        // the Nth event's handler fully ran, before the next pop. Both
        // the recording and the verifying run hit the same boundaries.
        if self.inner.journal.snapshot_due(self.inner.stats.events) {
            let sections = self.state_sections();
            let (at, events) = (self.inner.now.as_nanos(), self.inner.stats.events);
            self.inner.journal.on_snapshot(at, events, &sections);
        }
        let Some(ev) = self.inner.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.inner.now, "time must not run backwards");
        self.inner.now = ev.at;
        self.inner.stats.events += 1;
        let idx = ev.to.0 as usize;
        let alive = self
            .slots
            .get(idx)
            .map(|s| s.meta.alive && s.ep.is_some())
            .unwrap_or(false);
        if !alive {
            if let EventKind::Deliver(msg) = &ev.kind {
                self.inner.stats.dead_letters += 1;
                let jseq = self.inner.journal_note(
                    RecordKind::DeadLetter,
                    idx as u64,
                    msg.id.0,
                    0,
                    kind_sym(msg),
                );
                self.inner.flight.record(FlightEvent {
                    at: self.inner.now,
                    kind: FlightKind::DeadLetter,
                    endpoint: idx as u64,
                    label: kind_sym(msg),
                    detail: msg.id.0,
                    seq: jseq,
                });
                // Recorded even for untraced messages (trace/span NONE):
                // a crash-eaten delivery must be visible in the span
                // stream, not just the dead_letters counter.
                if self.inner.sink.is_enabled() {
                    self.inner.record_span(
                        ev.trace,
                        SpanId::NONE,
                        SpanEventKind::DeadLetter,
                        idx as u64,
                        &format!("dead_letter:{}", kind_sym(msg)),
                    );
                }
            }
            return true;
        }
        // At-most-once: a delivery whose (sender, seq) the receiver has
        // already admitted is suppressed before the endpoint sees it.
        if self.inner.dedup_enabled {
            if let (EventKind::Deliver(msg), Some((sender, seq_no))) = (&ev.kind, ev.dedup) {
                if !self.slots[idx].seen.admit(sender, seq_no) {
                    self.inner.note_count_sym(symbol::NET_DEDUP_DROPPED, 1);
                    let jseq = self.inner.journal_note(
                        RecordKind::Dedup,
                        idx as u64,
                        msg.id.0,
                        0,
                        kind_sym(msg),
                    );
                    self.inner.flight.record(FlightEvent {
                        at: self.inner.now,
                        kind: FlightKind::Dedup,
                        endpoint: idx as u64,
                        label: kind_sym(msg),
                        detail: msg.id.0,
                        seq: jseq,
                    });
                    if self.inner.sink.is_enabled() {
                        self.inner.record_span(
                            ev.trace,
                            SpanId::NONE,
                            SpanEventKind::Dedup,
                            idx as u64,
                            &format!("dedup:{}", kind_sym(msg)),
                        );
                    }
                    return true;
                }
            }
        }
        let mut ep = self.slots[idx].ep.take().expect("alive implies present");
        {
            // The handler runs under the event's trace context; sends it
            // makes and timers it arms inherit it.
            self.inner.current = ev.trace;
            let mut ctx = Ctx {
                self_id: ev.to,
                inner: &mut self.inner,
                slots: &mut self.slots,
                spawned: Vec::new(),
            };
            match ev.kind {
                EventKind::Start => {
                    ctx.inner
                        .journal_note_str(RecordKind::Start, idx as u64, 0, 0, "");
                    ep.on_start(&mut ctx)
                }
                EventKind::Deliver(msg) => {
                    ctx.slots[idx].meta.received += 1;
                    ctx.inner.stats.delivered += 1;
                    let method = kind_sym(&msg);
                    let jseq = ctx.inner.journal_note(
                        RecordKind::Deliver,
                        idx as u64,
                        msg.id.0,
                        ev.lat_ns,
                        method,
                    );
                    ctx.inner.flight.record(FlightEvent {
                        at: ctx.inner.now,
                        kind: FlightKind::Deliver,
                        endpoint: idx as u64,
                        label: method,
                        detail: msg.id.0,
                        seq: jseq,
                    });
                    if ev.trace.is_active() && ctx.inner.sink.is_enabled() {
                        ctx.inner.record_span(
                            ev.trace,
                            SpanId::NONE,
                            SpanEventKind::Deliver,
                            idx as u64,
                            method.as_str(),
                        );
                    }
                    if ctx.inner.profile.is_enabled() {
                        // Bracket the handler with wall-clock and the
                        // process-wide allocation counters (live when a
                        // counting allocator is registered, zero
                        // otherwise). Sim-time is the hop latency the
                        // delivery paid.
                        let (a0, b0) = legion_core::allocs::counts();
                        let t0 = std::time::Instant::now();
                        ep.on_message(&mut ctx, msg);
                        let wall_ns = t0.elapsed().as_nanos() as u64;
                        let (a1, b1) = legion_core::allocs::counts();
                        ctx.inner.profile.record(
                            idx as u64,
                            method,
                            ev.lat_ns,
                            wall_ns,
                            a1 - a0,
                            b1 - b0,
                        );
                    } else {
                        ep.on_message(&mut ctx, msg);
                    }
                }
                EventKind::Timer(tag) => {
                    ctx.inner
                        .journal_note_str(RecordKind::TimerFire, idx as u64, tag, 0, "");
                    if ev.trace.is_active() {
                        ctx.inner.record_span(
                            ev.trace,
                            SpanId::NONE,
                            SpanEventKind::Timer,
                            idx as u64,
                            &format!("tag={tag}"),
                        );
                    }
                    ep.on_timer(&mut ctx, tag)
                }
            }
            let spawned = std::mem::take(&mut ctx.spawned);
            drop(ctx);
            self.inner.current = TraceContext::NONE;
            // Schedule Start events for endpoints spawned by the handler.
            for id in spawned {
                let seq = self.inner.bump_seq();
                self.inner.enqueue(Event {
                    at: self.inner.now,
                    seq,
                    to: id,
                    trace: TraceContext::NONE,
                    dedup: None,
                    lat_ns: 0,
                    kind: EventKind::Start,
                });
            }
        }
        // The handler may have killed its own endpoint.
        if self.slots[idx].meta.alive {
            self.slots[idx].ep = Some(ep);
        }
        true
    }

    /// Run until the event queue drains or `max_events` were processed.
    /// Returns the number of events processed.
    pub fn run_until_quiescent(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Run until virtual time reaches `deadline` (events after it stay
    /// queued) or the queue drains. The boundary check is an O(1) peek
    /// of the wheel's ready lane — no pop/re-push at the deadline.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        loop {
            match self.inner.queue.peek_key() {
                Some((at, _)) if at <= deadline.as_nanos() => {
                    self.step();
                    n += 1;
                }
                _ => break,
            }
        }
        self.inner.now = self.inner.now.max(deadline);
        n
    }

    /// Number of endpoints ever attached (dead slots included).
    pub fn endpoint_count(&self) -> usize {
        self.slots.len()
    }

    /// Are there pending events?
    pub fn is_quiescent(&self) -> bool {
        self.inner.queue.is_empty()
    }

    /// Pending events in the queue right now.
    pub fn queue_len(&self) -> usize {
        self.inner.queue.len()
    }

    /// High-water mark of the pending-event queue over the kernel's
    /// lifetime — the E17 scale campaign's queue-pressure metric.
    /// Derived observability, deliberately *not* part of the serialized
    /// kernel state or metrics snapshot.
    pub fn queue_peak_len(&self) -> usize {
        self.inner.queue.peak_len()
    }
}

impl Inner {
    /// The single ingress into the event wheel: keys it by the event's
    /// `(time, insertion seq)`, the kernel's deterministic total order.
    /// All scheduling goes through here (`tools/lint_hotpath.sh` holds
    /// future code to it).
    fn enqueue(&mut self, ev: Event) {
        self.queue.push(ev.at.as_nanos(), ev.seq, ev);
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn fresh_call_id(&mut self) -> CallId {
        let id = CallId(self.next_call);
        self.next_call += 1;
        id
    }

    /// Bump a named counter in the flat registry and the time windows.
    fn note_count(&mut self, name: &str, n: u64) {
        self.note_count_sym(Sym::intern(name), n);
    }

    /// [`Inner::note_count`] for an already-interned name — the
    /// allocation-free path the kernel's own counters use.
    fn note_count_sym(&mut self, sym: Sym, n: u64) {
        self.counters.add_sym(sym, n);
        self.windows.record_sym(self.now, sym, n);
    }

    /// Record a span event at the current virtual time (no-op when the
    /// sink is disabled).
    fn record_span(
        &mut self,
        tc: TraceContext,
        parent: SpanId,
        kind: SpanEventKind,
        endpoint: u64,
        label: &str,
    ) {
        if !self.sink.is_enabled() {
            return;
        }
        let at = self.now;
        self.sink.record(SpanEvent {
            trace: tc.trace,
            span: tc.span,
            parent,
            kind,
            at,
            endpoint,
            label: label.to_owned(),
        });
    }

    /// Journal one kernel ingress with a pre-interned label; returns the
    /// journal seq (0 when off). The `is_on` gate keeps the disabled hot
    /// path at one enum-tag check and defers the `Sym → &str` resolution.
    #[inline]
    fn journal_note(&mut self, kind: RecordKind, endpoint: u64, a: u64, b: u64, label: Sym) -> u64 {
        if !self.journal.is_on() {
            return 0;
        }
        self.journal
            .note(self.now.as_nanos(), kind, endpoint, a, b, label.as_str())
    }

    /// [`Inner::journal_note`] for plain-string labels (attach names,
    /// empty labels). Labels are journaled as strings, never `Sym` ids —
    /// intern order is process-local and would not survive replay.
    #[inline]
    fn journal_note_str(
        &mut self,
        kind: RecordKind,
        endpoint: u64,
        a: u64,
        b: u64,
        label: &str,
    ) -> u64 {
        if !self.journal.is_on() {
            return 0;
        }
        self.journal
            .note(self.now.as_nanos(), kind, endpoint, a, b, label)
    }

    /// The flight-recorder dump, annotated with the journal position and
    /// nearest snapshot when a journal session is live — a post-mortem
    /// names the exact seq to replay to and the snapshot to start from.
    fn flight_dump(&self, reason: &str, n: usize) -> String {
        let mut out = self.flight.dump(reason, n);
        if self.journal.is_on() {
            let snap = match self.journal.last_snapshot() {
                Some((ordinal, seq)) if seq > 0 => {
                    format!("last snapshot #{ordinal} at journal seq {seq}")
                }
                Some((ordinal, _)) => format!("last snapshot #{ordinal}"),
                None => "no snapshot yet".to_string(),
            };
            out.push_str(&format!(
                "\njournal: next seq {}, {snap}",
                self.journal.next_seq()
            ));
        }
        out
    }
}

/// The journal record kind for a flight-recorder event kind: endpoints
/// annotate the journal through [`Ctx::flight`] (timeouts, HA verdicts,
/// notes) with the same vocabulary the kernel uses.
fn record_kind(kind: FlightKind) -> RecordKind {
    match kind {
        FlightKind::Deliver => RecordKind::Deliver,
        FlightKind::DeadLetter => RecordKind::DeadLetter,
        FlightKind::Refuse => RecordKind::Refuse,
        FlightKind::Drop => RecordKind::Drop,
        FlightKind::Dedup => RecordKind::Dedup,
        FlightKind::Duplicate => RecordKind::Duplicate,
        FlightKind::Delay => RecordKind::Delay,
        FlightKind::Timeout => RecordKind::Timeout,
        FlightKind::HaVerdict => RecordKind::HaVerdict,
        FlightKind::Note => RecordKind::Note,
        FlightKind::Shed => RecordKind::Shed,
    }
}

/// Deterministically encode a queued message for a state snapshot, using
/// the OPR codec's primitives. Method names and errors are encoded as
/// strings so the bytes are stable across processes.
fn encode_message(w: &mut StateWriter, m: &Message) {
    w.put_varint(m.id.0);
    match &m.target {
        Some(l) => {
            w.put_u8(1);
            w.put_loid(l);
        }
        None => w.put_u8(0),
    }
    match &m.reply_to {
        Some(e) => {
            w.put_u8(1);
            w.put_element(e);
        }
        None => w.put_u8(0),
    }
    match &m.sender {
        Some(l) => {
            w.put_u8(1);
            w.put_loid(l);
        }
        None => w.put_u8(0),
    }
    w.put_loid(&m.env.responsible);
    w.put_loid(&m.env.security);
    w.put_loid(&m.env.calling);
    w.put_u64(m.env.trace.trace.0);
    w.put_u64(m.env.trace.span.0);
    match &m.body {
        Body::Call { method, args } => {
            w.put_u8(0);
            w.put_str(method.as_str());
            w.put_varint(args.len() as u64);
            for a in args {
                w.put_value(a);
            }
        }
        Body::Reply {
            in_reply_to,
            result,
        } => {
            w.put_u8(1);
            w.put_varint(in_reply_to.0);
            match result {
                Ok(v) => {
                    w.put_u8(0);
                    w.put_value(v);
                }
                Err(e) => {
                    w.put_u8(1);
                    w.put_str(e);
                }
            }
        }
    }
}

/// The per-message-kind metrics key: the method symbol for calls,
/// [`symbol::REPLY`] for replies. A `Copy` of a `u32` — zero label work
/// per delivery, whether or not metrics consumers exist.
fn kind_sym(msg: &Message) -> Sym {
    msg.method_sym().unwrap_or(symbol::REPLY)
}

/// Render the `Sym`-keyed per-kind map to names, in name order (the
/// snapshot/export shape; `Sym` order is intern order, not name order).
fn render_by_kind(by_kind: &BTreeMap<Sym, Histogram>) -> BTreeMap<String, Histogram> {
    by_kind
        .iter()
        .map(|(s, h)| (s.as_str().to_owned(), h.clone()))
        .collect()
}

/// Attempt one physical send. Returns `true` if accepted (delivery still
/// subject to silent loss); `false` for a detectable refusal.
///
/// When tracing is on and the message belongs to a trace, the hop gets a
/// fresh span (child of the message's context): a `Send` event always,
/// then `Refuse`/`Drop` here or `Deliver` at arrival.
fn send_one(
    inner: &mut Inner,
    slots: &mut [Slot],
    from_location: Location,
    from_slot: Option<usize>,
    to: ObjectAddressElement,
    mut msg: Message,
) -> bool {
    if let Some(i) = from_slot {
        slots[i].meta.sent += 1;
    }
    let from_ep = from_slot.map(|i| i as u64).unwrap_or(SpanEvent::EXTERNAL);
    let traced = inner.sink.is_enabled() && msg.env.trace.is_active();
    if traced {
        // The hop becomes the message's new span; the receiver's own
        // sends will parent under it.
        let parent = msg.env.trace.span;
        msg.env.trace.span = inner.sink.next_span();
        let label = kind_sym(&msg).as_str();
        inner.record_span(msg.env.trace, parent, SpanEventKind::Send, from_ep, label);
    }
    // Fault spans (Refuse/Drop/DeadLetter) are recorded whenever the sink
    // is enabled, even when the message carries no trace context — crash
    // fallout must be observable without having traced the whole flow.
    let refuse = |inner: &mut Inner, msg: &Message, why: &str| {
        inner.stats.refused += 1;
        let jseq = inner.journal_note(RecordKind::Refuse, from_ep, msg.id.0, 0, kind_sym(msg));
        inner.flight.record(FlightEvent {
            at: inner.now,
            kind: FlightKind::Refuse,
            endpoint: from_ep,
            label: kind_sym(msg),
            detail: msg.id.0,
            seq: jseq,
        });
        inner.record_span(
            msg.env.trace,
            SpanId::NONE,
            SpanEventKind::Refuse,
            from_ep,
            why,
        );
        false
    };
    let Some(ep) = to.sim_endpoint() else {
        return refuse(inner, &msg, "refused:bad-address");
    };
    let Some(dest) = slots.get(ep as usize) else {
        return refuse(inner, &msg, "refused:unknown-endpoint");
    };
    if !dest.meta.alive {
        return refuse(inner, &msg, "refused:dead-endpoint");
    }
    let dest_location = dest.meta.location;
    inner.stats.sent += 1;
    // Stamp the per-sender sequence number the receiver's at-most-once
    // window will check (kernel-level; endpoints never see it).
    let seq_no = match from_slot {
        Some(i) => {
            let s = slots[i].next_seq;
            slots[i].next_seq += 1;
            s
        }
        None => {
            let s = inner.external_seq;
            inner.external_seq += 1;
            s
        }
    };
    let verdict = inner
        .faults
        .judge(msg.id.0, from_location, dest_location, inner.now);
    if verdict == Verdict::DropSilently {
        inner.stats.lost += 1;
        let jseq = inner.journal_note(RecordKind::Drop, from_ep, msg.id.0, 0, kind_sym(&msg));
        inner.flight.record(FlightEvent {
            at: inner.now,
            kind: FlightKind::Drop,
            endpoint: from_ep,
            label: kind_sym(&msg),
            detail: msg.id.0,
            seq: jseq,
        });
        inner.record_span(
            msg.env.trace,
            SpanId::NONE,
            SpanEventKind::Drop,
            from_ep,
            "drop:silent",
        );
        return true;
    }
    // Latency is sampled only for messages that actually deliver, so the
    // RNG stream of a run without adversarial verdicts is unchanged.
    let delay = inner
        .topology
        .latency(from_location, dest_location, &mut inner.rng)
        .as_nanos();
    let (effective, copy_after) = match verdict {
        Verdict::Deliver => (delay, None),
        Verdict::Delay { extra_ns, factor } => (
            delay.saturating_mul(factor as u64).saturating_add(extra_ns),
            None,
        ),
        Verdict::Duplicate { extra_ns } => (delay, Some(extra_ns)),
        Verdict::DropSilently => unreachable!("handled above"),
    };
    if let Verdict::Delay { extra_ns, factor } = verdict {
        inner.note_count_sym(symbol::NET_DELAYED, 1);
        let jseq = inner.journal_note(
            RecordKind::Delay,
            from_ep,
            msg.id.0,
            extra_ns,
            kind_sym(&msg),
        );
        inner.flight.record(FlightEvent {
            at: inner.now,
            kind: FlightKind::Delay,
            endpoint: from_ep,
            label: kind_sym(&msg),
            detail: extra_ns,
            seq: jseq,
        });
        inner.record_span(
            msg.env.trace,
            SpanId::NONE,
            SpanEventKind::Delay,
            from_ep,
            &format!("delay:x{factor}+{extra_ns}ns"),
        );
    }
    inner.latency.record(effective);
    inner
        .by_kind
        .entry(kind_sym(&msg))
        .or_default()
        .record(effective);
    slots[ep as usize].meta.in_latency.record(effective);
    let at = inner.now.saturating_add(effective);
    // SLO samples are keyed by *arrival* time: the window a latency
    // counts against is the one the user experienced it in.
    inner.slo.record(at.as_nanos(), ep, effective);
    let trace = msg.env.trace;
    let dedup = Some((from_ep, seq_no));
    let copy = if let Some(extra_ns) = copy_after {
        inner.note_count_sym(symbol::NET_DUPLICATED, 1);
        let jseq = inner.journal_note(
            RecordKind::Duplicate,
            from_ep,
            msg.id.0,
            extra_ns,
            kind_sym(&msg),
        );
        inner.flight.record(FlightEvent {
            at: inner.now,
            kind: FlightKind::Duplicate,
            endpoint: from_ep,
            label: kind_sym(&msg),
            detail: extra_ns,
            seq: jseq,
        });
        inner.record_span(
            trace,
            SpanId::NONE,
            SpanEventKind::Duplicate,
            from_ep,
            &format!("dup:+{extra_ns}ns"),
        );
        Some((at.saturating_add(extra_ns), msg.clone()))
    } else {
        None
    };
    let seq = inner.bump_seq();
    inner.enqueue(Event {
        at,
        seq,
        to: EndpointId(ep),
        trace,
        dedup,
        lat_ns: effective,
        kind: EventKind::Deliver(msg),
    });
    // The duplicate copy shares the original's dedup key: with the
    // at-most-once window on, exactly one of the two reaches the endpoint.
    if let Some((copy_at, copy_msg)) = copy {
        let seq = inner.bump_seq();
        inner.enqueue(Event {
            at: copy_at,
            seq,
            to: EndpointId(ep),
            trace,
            dedup,
            lat_ns: copy_at.as_nanos().saturating_sub(inner.now.as_nanos()),
            kind: EventKind::Deliver(copy_msg),
        });
    }
    true
}

/// The handler-side view of the kernel.
pub struct Ctx<'a> {
    self_id: EndpointId,
    inner: &'a mut Inner,
    slots: &'a mut Vec<Slot>,
    spawned: Vec<EndpointId>,
}

impl Ctx<'_> {
    /// This endpoint's id.
    pub fn self_id(&self) -> EndpointId {
        self.self_id
    }

    /// This endpoint's address element.
    pub fn self_element(&self) -> ObjectAddressElement {
        self.self_id.element()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now
    }

    /// The kernel's deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.inner.rng
    }

    /// A fresh call id.
    pub fn fresh_call_id(&mut self) -> CallId {
        self.inner.fresh_call_id()
    }

    /// An empty argument buffer from the kernel pool (capacity recycled
    /// from a spent call when one is available).
    pub fn take_args(&mut self) -> Vec<LegionValue> {
        self.inner.pool.take_args()
    }

    /// Return a spent argument buffer to the kernel pool.
    pub fn recycle_args(&mut self, args: Vec<LegionValue>) {
        self.inner.pool.recycle_args(args);
    }

    /// A `LegionValue::Binding` copy of `src`, built in a recycled shell
    /// when the pool has one (allocation-free on the steady path).
    pub fn binding_value(&mut self, src: &Binding) -> LegionValue {
        self.inner.pool.binding_value(src)
    }

    /// Recycle the heap shells of a consumed value (binding boxes, list
    /// vectors) back into the kernel pool.
    pub fn recycle_value(&mut self, value: LegionValue) {
        self.inner.pool.recycle_value(value);
    }

    /// Recycle a fully-handled message's body buffers back into the
    /// kernel pool (`dispatch::serve` calls this on every served call).
    pub fn recycle_message(&mut self, msg: Message) {
        self.inner.pool.recycle_message(msg);
    }

    /// Bump a named protocol counter. Inside an active trace, the bump
    /// is also recorded as a `Note` span event — counters *are* the
    /// protocol-level events (cache hits, activations, …), so every
    /// instrumented site annotates the request it served for free.
    pub fn count(&mut self, name: &str) {
        self.count_n(name, 1);
    }

    /// Add to a named protocol counter (traced like [`Ctx::count`]).
    pub fn count_n(&mut self, name: &str, n: u64) {
        self.inner.note_count(name, n);
        self.trace_note(name);
    }

    /// [`Ctx::count_n`] for a pre-interned name — allocation-free, for
    /// counters bumped on sweep/teardown paths that must stay off the
    /// allocator even when no trace is active.
    pub fn count_n_sym(&mut self, sym: Sym, n: u64) {
        self.inner.note_count_sym(sym, n);
        if self.inner.current.is_active() {
            self.trace_note(sym.as_str());
        }
    }

    /// The trace context this handler is executing under.
    pub fn current_trace(&self) -> TraceContext {
        self.inner.current
    }

    /// Open a root span for a new workload-level request and make it the
    /// current context. Returns [`TraceContext::NONE`] when tracing is
    /// off (everything downstream degrades to a no-op).
    pub fn trace_begin(&mut self, label: &str) -> TraceContext {
        let at = self.inner.now;
        let tc = self.inner.sink.begin(at, self.self_id.0, label);
        if tc.is_active() {
            self.inner.current = tc;
        }
        tc
    }

    /// Close the current request's trace with an outcome label and leave
    /// the handler untraced.
    pub fn trace_end(&mut self, outcome: &str) {
        let tc = self.inner.current;
        if tc.is_active() {
            self.inner.record_span(
                tc,
                SpanId::NONE,
                SpanEventKind::End,
                self.self_id.0,
                outcome,
            );
        }
        self.inner.current = TraceContext::NONE;
    }

    /// Make `tc` the current context (continue a request whose context
    /// was stashed across an asynchronous boundary the kernel cannot see,
    /// e.g. state machines keyed by call id).
    pub fn trace_resume(&mut self, tc: TraceContext) {
        self.inner.current = tc;
    }

    /// Annotate the current trace with a protocol-level event (cache hit,
    /// activation, …). No-op outside a trace.
    pub fn trace_note(&mut self, label: &str) {
        let tc = self.inner.current;
        if tc.is_active() {
            self.inner
                .record_span(tc, SpanId::NONE, SpanEventKind::Note, self.self_id.0, label);
        }
    }

    /// Is this handler executing under an active trace? Gate `format!`
    /// label construction on this before calling [`Ctx::trace_note`], so
    /// untraced runs pay no allocation for notes that would be dropped.
    pub fn trace_active(&self) -> bool {
        self.inner.current.is_active()
    }

    /// Is the span sink enabled at all? Gate label construction for
    /// *root* spans ([`Ctx::trace_begin`]) on this — a root span records
    /// whenever the sink is on, even outside any current trace.
    pub fn tracing_enabled(&self) -> bool {
        self.inner.sink.is_enabled()
    }

    /// Record an event into the always-on flight recorder, attributed to
    /// this endpoint. Allocation-free (the label is a pre-interned
    /// [`Sym`]; `detail` is kind-specific).
    pub fn flight(&mut self, kind: FlightKind, label: Sym, detail: u64) {
        let jseq = self
            .inner
            .journal_note(record_kind(kind), self.self_id.0, detail, 0, label);
        let at = self.inner.now;
        self.inner.flight.record(FlightEvent {
            at,
            kind,
            endpoint: self.self_id.0,
            label,
            detail,
            seq: jseq,
        });
    }

    /// Should a deadline sweep that expired continuations dump the
    /// recorder tail?
    pub fn flight_dump_on_sweep(&self) -> bool {
        self.inner.flight_dump_on_sweep
    }

    /// Record an explicit SLO sample for this endpoint at the current
    /// virtual time. The kernel samples *hop* latencies automatically;
    /// endpoints that model service time (admission queues) record their
    /// end-to-end response time here so objectives judge what a caller
    /// actually experienced. No-op while SLO tracking is off.
    pub fn slo_record(&mut self, latency_ns: u64) {
        let at = self.inner.now.as_nanos();
        self.inner.slo.record(at, self.self_id.0, latency_ns);
    }

    /// Drain burn-rate alarms fired by the online SLO monitor since the
    /// last drain, as `(endpoint id, event)` in firing order. Always
    /// empty unless the kernel was configured with
    /// [`SimKernel::enable_slo_online`].
    pub fn drain_burn_events(&mut self) -> Vec<(u64, BurnEvent)> {
        self.inner.slo.drain_burn()
    }

    /// Dump the flight-recorder tail (newest `n` events) to stderr with
    /// a reason line — post-mortem context for sweeps, invariant
    /// violations, and imminent panics.
    pub fn dump_flight(&self, reason: &str, n: usize) {
        eprintln!("{}", self.inner.flight_dump(reason, n));
    }

    /// This endpoint's location.
    pub fn location(&self) -> Location {
        self.slots[self.self_id.0 as usize].meta.location
    }

    /// Send to one address element. `true` = accepted (may still be lost
    /// silently); `false` = detectably refused (stale address, §4.1.4).
    pub fn send(&mut self, to: ObjectAddressElement, mut msg: Message) -> bool {
        if msg.reply_to.is_none() {
            msg.reply_to = Some(self.self_element());
        }
        // Stamp the current trace context unless the caller set one
        // explicitly (e.g. a message built from a stored environment).
        if !msg.env.trace.is_active() {
            msg.env.trace = self.inner.current;
        }
        let loc = self.location();
        send_one(
            self.inner,
            self.slots,
            loc,
            Some(self.self_id.0 as usize),
            to,
            msg,
        )
    }

    /// Send through a full [`ObjectAddress`], honouring its semantics
    /// (§3.4, §4.3).
    pub fn send_address(&mut self, addr: &ObjectAddress, msg: Message) -> SendReport {
        let elements = &addr.elements;
        if elements.is_empty() {
            return SendReport::default();
        }
        let targets: Vec<ObjectAddressElement> = match addr.semantics {
            AddressSemantics::Single | AddressSemantics::User(_) => vec![elements[0]],
            AddressSemantics::SendToAll => elements.clone(),
            AddressSemantics::PickRandom => {
                let i = self.inner.rng.gen_range(0..elements.len());
                vec![elements[i]]
            }
            AddressSemantics::KOfN(k) => {
                let mut pool = elements.clone();
                pool.shuffle(&mut self.inner.rng);
                pool.truncate((k as usize).min(elements.len()));
                pool
            }
            AddressSemantics::FirstReachable => {
                // Try in order until a send is accepted.
                let mut report = SendReport::default();
                for e in elements {
                    report.attempted += 1;
                    if self.send(*e, msg.clone()) {
                        report.accepted += 1;
                        break;
                    }
                }
                return report;
            }
        };
        let mut report = SendReport::default();
        for e in targets {
            report.attempted += 1;
            if self.send(e, msg.clone()) {
                report.accepted += 1;
            }
        }
        report
    }

    /// Issue a method call to `to`, returning the fresh [`CallId`] if the
    /// send was accepted.
    pub fn call(
        &mut self,
        to: ObjectAddressElement,
        target: Loid,
        method: impl Into<Sym>,
        args: Vec<LegionValue>,
        env: InvocationEnv,
        sender: Option<Loid>,
    ) -> Option<CallId> {
        let id = self.fresh_call_id();
        let mut msg = Message::call(id, target, method, args, env);
        msg.sender = sender;
        if self.send(to, msg) {
            Some(id)
        } else {
            None
        }
    }

    /// Reply to `call` with `result`. Returns `false` if the caller's
    /// address is unknown or refused.
    pub fn reply(&mut self, call: &Message, result: Result<LegionValue, String>) -> bool {
        let Some(dest) = call.reply_to else {
            return false;
        };
        let id = self.fresh_call_id();
        let reply = Message::reply_to(call, id, result);
        self.send(dest, reply)
    }

    /// Fire `on_timer(tag)` on this endpoint after `delay_ns`. The timer
    /// captures the current trace context, so the firing handler resumes
    /// the same trace (retry/backoff stays attributed to its request).
    pub fn set_timer(&mut self, delay_ns: u64, tag: u64) {
        let at = self.inner.now.saturating_add(delay_ns);
        let seq = self.inner.bump_seq();
        let trace = self.inner.current;
        self.inner.enqueue(Event {
            at,
            seq,
            to: self.self_id,
            trace,
            dedup: None,
            lat_ns: 0,
            kind: EventKind::Timer(tag),
        });
    }

    /// Spawn a new endpoint (activation); its `on_start` runs right after
    /// the current handler returns.
    pub fn spawn(
        &mut self,
        ep: Box<dyn Endpoint>,
        location: Location,
        name: impl Into<String>,
    ) -> EndpointId {
        let id = EndpointId(self.slots.len() as u64);
        let name = name.into();
        self.inner
            .journal_note_str(RecordKind::Attach, id.0, 0, 0, &name);
        self.slots.push(Slot::new(
            EndpointMeta {
                location,
                name,
                received: 0,
                sent: 0,
                in_latency: Histogram::new(),
                alive: true,
            },
            ep,
        ));
        self.spawned.push(id);
        id
    }

    /// Kill an endpoint (deactivation). Killing `self` is allowed: the
    /// current handler finishes, then the endpoint is dropped.
    pub fn kill(&mut self, id: EndpointId) {
        if let Some(slot) = self.slots.get_mut(id.0 as usize) {
            slot.meta.alive = false;
            if id != self.self_id {
                slot.ep = None;
            }
            self.inner
                .journal_note_str(RecordKind::Detach, id.0, 0, 0, "");
        }
    }

    /// Metadata for any endpoint (alive or dead).
    pub fn meta_of(&self, id: EndpointId) -> Option<&EndpointMeta> {
        self.slots.get(id.0 as usize).map(|s| &s.meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Body;
    use legion_core::address::AddressSemantics;

    /// Echoes every call back as a reply carrying the same args.
    struct Echo {
        loid: Loid,
        got: Vec<String>,
    }

    impl Echo {
        fn new(loid: Loid) -> Self {
            Echo {
                loid,
                got: Vec::new(),
            }
        }
    }

    impl Endpoint for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if let Some(m) = msg.method() {
                self.got.push(m.to_owned());
                ctx.count("echo_calls");
                let args = msg.args().to_vec();
                ctx.reply(&msg, Ok(LegionValue::List(args)));
            }
            let _ = self.loid;
        }
    }

    /// Records replies it receives.
    #[derive(Default)]
    struct Client {
        replies: Vec<Result<LegionValue, String>>,
    }

    impl Endpoint for Client {
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, msg: Message) {
            if let Body::Reply { result, .. } = msg.body {
                self.replies.push(result);
            }
        }
    }

    fn kernel() -> SimKernel {
        SimKernel::new(
            Topology::fixed(1_000, 10_000, 1_000_000),
            FaultPlan::none(),
            42,
        )
    }

    #[test]
    fn call_and_reply_roundtrip() {
        let mut k = kernel();
        let echo = k.add_endpoint(
            Box::new(Echo::new(Loid::instance(16, 1))),
            Location::new(0, 0),
            "echo",
        );
        let client = k.add_endpoint(Box::new(Client::default()), Location::new(0, 1), "client");
        let id = k.fresh_call_id();
        let mut msg = Message::call(
            id,
            Loid::instance(16, 1),
            "Ping",
            vec![LegionValue::Uint(9)],
            InvocationEnv::anonymous(),
        );
        msg.reply_to = Some(client.element());
        assert!(k.inject(Location::new(0, 1), echo.element(), msg));
        k.run_until_quiescent(100);
        let c = k.endpoint::<Client>(client).unwrap();
        assert_eq!(c.replies.len(), 1);
        assert_eq!(
            c.replies[0],
            Ok(LegionValue::List(vec![LegionValue::Uint(9)]))
        );
        assert_eq!(k.counters().get("echo_calls"), 1);
        assert_eq!(k.meta(echo).unwrap().received, 1);
        assert_eq!(k.stats().delivered, 2); // call + reply
    }

    #[test]
    fn latency_tiers_shape_virtual_time() {
        let mut k = kernel();
        let echo = k.add_endpoint(
            Box::new(Echo::new(Loid::instance(16, 1))),
            Location::new(0, 0),
            "echo",
        );
        // Same-jurisdiction call: 10µs there + 10µs back = 20µs.
        let client = k.add_endpoint(Box::new(Client::default()), Location::new(0, 1), "client");
        let id = k.fresh_call_id();
        let mut msg = Message::call(
            id,
            Loid::instance(16, 1),
            "Ping",
            vec![],
            InvocationEnv::anonymous(),
        );
        msg.reply_to = Some(client.element());
        k.inject(Location::new(0, 1), echo.element(), msg);
        k.run_until_quiescent(100);
        assert_eq!(k.now(), SimTime(20_000));
    }

    #[test]
    fn send_to_dead_endpoint_is_refused() {
        let mut k = kernel();
        let echo = k.add_endpoint(
            Box::new(Echo::new(Loid::instance(16, 1))),
            Location::new(0, 0),
            "echo",
        );
        k.remove_endpoint(echo);
        let id = k.fresh_call_id();
        let msg = Message::call(
            id,
            Loid::instance(16, 1),
            "Ping",
            vec![],
            InvocationEnv::anonymous(),
        );
        assert!(!k.inject(Location::new(0, 0), echo.element(), msg));
        assert_eq!(k.stats().refused, 1);
    }

    #[test]
    fn send_to_unknown_endpoint_is_refused() {
        let mut k = kernel();
        let id = k.fresh_call_id();
        let msg = Message::call(
            id,
            Loid::instance(16, 1),
            "Ping",
            vec![],
            InvocationEnv::anonymous(),
        );
        assert!(!k.inject(
            Location::new(0, 0),
            ObjectAddressElement::sim(999),
            msg.clone()
        ));
        // Non-sim elements are refused too.
        assert!(!k.inject(
            Location::new(0, 0),
            ObjectAddressElement::ipv4([127, 0, 0, 1], 80),
            msg
        ));
        assert_eq!(k.stats().refused, 2);
    }

    /// An endpoint that forwards a call through a replicated address.
    struct Fanout {
        addr: ObjectAddress,
    }

    impl Endpoint for Fanout {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let id = ctx.fresh_call_id();
            let msg = Message::call(
                id,
                Loid::instance(16, 1),
                "Ping",
                vec![],
                InvocationEnv::anonymous(),
            );
            let report = ctx.send_address(&self.addr.clone(), msg);
            ctx.count_n("fanout_accepted", report.accepted as u64);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
    }

    fn replicated_kernel(
        semantics: AddressSemantics,
        replicas: usize,
    ) -> (SimKernel, Vec<EndpointId>) {
        let mut k = kernel();
        let mut eps = Vec::new();
        for i in 0..replicas {
            eps.push(k.add_endpoint(
                Box::new(Echo::new(Loid::instance(16, i as u64 + 1))),
                Location::new(0, i as u32),
                format!("replica{i}"),
            ));
        }
        let addr = ObjectAddress::replicated(eps.iter().map(|e| e.element()).collect(), semantics);
        k.add_endpoint(Box::new(Fanout { addr }), Location::new(0, 99), "fanout");
        (k, eps)
    }

    /// A small fixed workload: `calls` Pings from the client to the echo,
    /// with one arg knob to let tests plant a payload divergence.
    fn journaled_run(cfg: impl FnOnce(&mut SimKernel), calls: u64, arg0: u64) -> SimKernel {
        let mut k = kernel();
        cfg(&mut k);
        let echo = k.add_endpoint(
            Box::new(Echo::new(Loid::instance(16, 1))),
            Location::new(0, 0),
            "echo",
        );
        let client = k.add_endpoint(Box::new(Client::default()), Location::new(0, 1), "client");
        for i in 0..calls {
            let id = k.fresh_call_id();
            let arg = if i == 0 { arg0 } else { i };
            let mut msg = Message::call(
                id,
                Loid::instance(16, 1),
                "Ping",
                vec![LegionValue::Uint(arg)],
                InvocationEnv::anonymous(),
            );
            msg.reply_to = Some(client.element());
            k.inject(Location::new(0, 1), echo.element(), msg);
        }
        k.run_until_quiescent(1_000);
        k
    }

    #[test]
    fn journal_record_then_replay_is_identical() {
        use legion_journal::MemSink;
        let sink = MemSink::new();
        let mut k = journaled_run(|k| k.enable_journal_record(Box::new(sink.clone()), 4), 6, 0);
        let (recorded, div) = k.finish_journal().unwrap();
        assert!(div.is_none());
        assert!(recorded.records > 0);
        assert!(recorded.snapshots > 0, "cadence 4 must snapshot");
        let data = sink.contents();

        // Verified re-execution from the origin: every record byte-checked.
        let mut k = journaled_run(
            |k| {
                k.enable_journal_verify(data.clone(), ReplayStart::Origin)
                    .unwrap()
            },
            6,
            0,
        );
        let (s, div) = k.finish_journal().unwrap();
        assert!(div.is_none(), "{}", div.map(|d| d.to_string()).unwrap());
        assert_eq!(s.verified, recorded.records);
        assert_eq!(s.skipped, 0);

        // Snapshot fast path: the prefix is skipped, roots still checked.
        let mut k = journaled_run(
            |k| {
                k.enable_journal_verify(data.clone(), ReplayStart::LatestSnapshot)
                    .unwrap()
            },
            6,
            0,
        );
        let (s, div) = k.finish_journal().unwrap();
        assert!(div.is_none(), "{}", div.map(|d| d.to_string()).unwrap());
        assert!(s.skipped > 0, "snapshot fast path must skip a prefix");
        assert_eq!(s.skipped + s.verified, recorded.records);
    }

    #[test]
    fn journal_replay_catches_payload_divergence_at_snapshot_root() {
        use legion_journal::MemSink;
        let sink = MemSink::new();
        let mut k = journaled_run(|k| k.enable_journal_record(Box::new(sink.clone()), 4), 6, 0);
        k.finish_journal().unwrap();
        let data = sink.contents();

        // Same event timeline, different call argument: record bodies are
        // identical (args never enter the journal), so only the
        // content-addressed state root can catch it.
        let mut k = journaled_run(
            |k| k.enable_journal_verify(data, ReplayStart::Origin).unwrap(),
            6,
            999,
        );
        let (_, div) = k.finish_journal().unwrap();
        let div = div.expect("payload divergence must trip the root check");
        assert!(div.expected.contains("snapshot"), "{div}");
    }

    #[test]
    fn journal_replay_catches_missing_workload() {
        use legion_journal::MemSink;
        let sink = MemSink::new();
        let mut k = journaled_run(|k| k.enable_journal_record(Box::new(sink.clone()), 0), 6, 0);
        k.finish_journal().unwrap();
        let data = sink.contents();

        let mut k = journaled_run(
            |k| k.enable_journal_verify(data, ReplayStart::Origin).unwrap(),
            5,
            0,
        );
        let (_, div) = k.finish_journal().unwrap();
        let div = div.expect("a shorter run must diverge");
        assert!(div.got.contains("quiesced") || !div.got.is_empty(), "{div}");
    }

    #[test]
    fn flight_events_carry_journal_seq_and_dump_names_position() {
        use legion_journal::MemSink;
        let sink = MemSink::new();
        let k = journaled_run(|k| k.enable_journal_record(Box::new(sink.clone()), 4), 6, 0);
        assert!(k.flight().iter().all(|e| e.seq > 0));
        // Seqs are strictly increasing in recording order.
        let seqs: Vec<u64> = k.flight().iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
        let dump = k.flight_dump("test", 4);
        assert!(dump.contains("journal: next seq"), "{dump}");
        assert!(dump.contains("last snapshot #"), "{dump}");
        assert!(dump.contains("seq="), "{dump}");
    }

    #[test]
    fn journal_off_leaves_flight_seq_zero() {
        let k = journaled_run(|_| {}, 3, 0);
        assert!(!k.journal_enabled());
        assert!(k.flight().iter().all(|e| e.seq == 0));
    }

    #[test]
    fn send_to_all_reaches_every_replica() {
        let (mut k, eps) = replicated_kernel(AddressSemantics::SendToAll, 4);
        k.run_until_quiescent(100);
        for e in eps {
            assert_eq!(k.meta(e).unwrap().received, 1);
        }
        assert_eq!(k.counters().get("fanout_accepted"), 4);
    }

    #[test]
    fn pick_random_reaches_exactly_one() {
        let (mut k, eps) = replicated_kernel(AddressSemantics::PickRandom, 4);
        k.run_until_quiescent(100);
        let total: u64 = eps.iter().map(|e| k.meta(*e).unwrap().received).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn k_of_n_reaches_k_distinct() {
        let (mut k, eps) = replicated_kernel(AddressSemantics::KOfN(2), 5);
        k.run_until_quiescent(100);
        let hit: Vec<u64> = eps.iter().map(|e| k.meta(*e).unwrap().received).collect();
        assert_eq!(hit.iter().sum::<u64>(), 2);
        assert!(hit.iter().all(|&h| h <= 1), "distinct replicas: {hit:?}");
    }

    #[test]
    fn first_reachable_skips_dead_replicas() {
        let (mut k, eps) = replicated_kernel(AddressSemantics::FirstReachable, 3);
        k.remove_endpoint(eps[0]);
        k.run_until_quiescent(100);
        assert_eq!(k.meta(eps[1]).unwrap().received, 1);
        assert_eq!(k.meta(eps[2]).unwrap().received, 0);
    }

    #[test]
    fn empty_address_sends_nothing() {
        let mut k = kernel();
        let addr = ObjectAddress {
            elements: vec![],
            semantics: AddressSemantics::SendToAll,
        };
        k.add_endpoint(Box::new(Fanout { addr }), Location::new(0, 0), "fanout");
        k.run_until_quiescent(10);
        assert_eq!(k.stats().sent, 0);
    }

    struct TimerBeat {
        fired: Vec<u64>,
    }

    impl Endpoint for TimerBeat {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(500, 1);
            ctx.set_timer(1500, 2);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
            self.fired.push(tag);
            if tag == 2 {
                ctx.set_timer(100, 3);
            }
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let mut k = kernel();
        let t = k.add_endpoint(
            Box::new(TimerBeat { fired: vec![] }),
            Location::new(0, 0),
            "timer",
        );
        k.run_until_quiescent(100);
        assert_eq!(k.endpoint::<TimerBeat>(t).unwrap().fired, vec![1, 2, 3]);
        assert_eq!(k.now(), SimTime(1_600));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut k = kernel();
        let t = k.add_endpoint(
            Box::new(TimerBeat { fired: vec![] }),
            Location::new(0, 0),
            "timer",
        );
        k.run_until(SimTime(600));
        assert_eq!(k.endpoint::<TimerBeat>(t).unwrap().fired, vec![1]);
        assert_eq!(k.now(), SimTime(600));
        k.run_until(SimTime(10_000));
        assert_eq!(k.endpoint::<TimerBeat>(t).unwrap().fired, vec![1, 2, 3]);
    }

    /// Spawner: on start, spawns a child and messages it.
    struct Spawner;
    struct Child {
        started: bool,
        got: u64,
    }

    impl Endpoint for Spawner {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let child = ctx.spawn(
                Box::new(Child {
                    started: false,
                    got: 0,
                }),
                Location::new(0, 0),
                "child",
            );
            let id = ctx.fresh_call_id();
            let msg = Message::call(
                id,
                Loid::instance(16, 1),
                "Hello",
                vec![],
                InvocationEnv::anonymous(),
            );
            assert!(ctx.send(child.element(), msg));
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
    }

    impl Endpoint for Child {
        fn on_start(&mut self, _ctx: &mut Ctx<'_>) {
            self.started = true;
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {
            self.got += 1;
        }
    }

    #[test]
    fn handlers_can_spawn_endpoints() {
        let mut k = kernel();
        k.add_endpoint(Box::new(Spawner), Location::new(0, 0), "spawner");
        k.run_until_quiescent(100);
        assert_eq!(k.endpoint_count(), 2);
        let child_id = EndpointId(1);
        let child = k.endpoint::<Child>(child_id).unwrap();
        assert!(child.started);
        assert_eq!(child.got, 1);
    }

    struct SelfKiller;
    impl Endpoint for SelfKiller {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let me = ctx.self_id();
            ctx.kill(me);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {
            panic!("dead endpoints receive nothing");
        }
    }

    #[test]
    fn self_kill_takes_effect_after_handler() {
        let mut k = kernel();
        let id = k.add_endpoint(Box::new(SelfKiller), Location::new(0, 0), "sk");
        k.run_until_quiescent(10);
        assert!(!k.meta(id).unwrap().alive);
        // Deliveries to it are refused at send time.
        let cid = k.fresh_call_id();
        let msg = Message::call(
            cid,
            Loid::instance(16, 1),
            "Ping",
            vec![],
            InvocationEnv::anonymous(),
        );
        assert!(!k.inject(Location::new(0, 0), id.element(), msg));
    }

    #[test]
    fn drops_are_silent_and_counted() {
        let mut k = SimKernel::new(Topology::zero(), FaultPlan::none(), 7);
        k.faults_mut().set_drop_probability(1.0);
        let echo = k.add_endpoint(
            Box::new(Echo::new(Loid::instance(16, 1))),
            Location::new(0, 0),
            "echo",
        );
        let cid = k.fresh_call_id();
        let msg = Message::call(
            cid,
            Loid::instance(16, 1),
            "Ping",
            vec![],
            InvocationEnv::anonymous(),
        );
        // Accepted (sender can't tell) but never delivered.
        assert!(k.inject(Location::new(0, 0), echo.element(), msg));
        k.run_until_quiescent(10);
        assert_eq!(k.stats().lost, 1);
        assert_eq!(k.meta(echo).unwrap().received, 0);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed: u64| {
            let (mut k, _) = {
                let mut k = SimKernel::new(Topology::default(), FaultPlan::none(), seed);
                let mut eps = Vec::new();
                for i in 0..5 {
                    eps.push(k.add_endpoint(
                        Box::new(Echo::new(Loid::instance(16, i + 1))),
                        Location::new(i as u32 % 2, i as u32),
                        format!("e{i}"),
                    ));
                }
                let addr = ObjectAddress::replicated(
                    eps.iter().map(|e| e.element()).collect(),
                    AddressSemantics::KOfN(3),
                );
                k.add_endpoint(Box::new(Fanout { addr }), Location::new(0, 9), "f");
                (k, eps)
            };
            k.run_until_quiescent(1000);
            (k.now(), k.stats().delivered, k.latency_histogram().sum())
        };
        assert_eq!(run(123), run(123));
    }

    /// Forwards every call to `next` (same method, no args), so a request
    /// hops across a chain of endpoints under one trace.
    struct Relay {
        next: Option<ObjectAddressElement>,
    }

    impl Endpoint for Relay {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if let (Some(next), Some(target), Some(m)) = (self.next, msg.target, msg.method()) {
                ctx.call(next, target, m, vec![], InvocationEnv::anonymous(), None);
            }
        }
    }

    /// Build a 3-relay chain, push one traced request through it, and
    /// return the drained span events.
    fn traced_chain_run(seed: u64) -> Vec<SpanEvent> {
        let mut k = SimKernel::new(Topology::default(), FaultPlan::none(), seed);
        k.enable_tracing(1024);
        let c = k.add_endpoint(Box::new(Relay { next: None }), Location::new(1, 2), "c");
        let b = k.add_endpoint(
            Box::new(Relay {
                next: Some(c.element()),
            }),
            Location::new(1, 1),
            "b",
        );
        let a = k.add_endpoint(
            Box::new(Relay {
                next: Some(b.element()),
            }),
            Location::new(0, 1),
            "a",
        );
        let tc = k.begin_trace("chain");
        let cid = k.fresh_call_id();
        let msg = Message::call(
            cid,
            Loid::instance(16, 1),
            "Hop",
            vec![],
            InvocationEnv::anonymous().with_trace(tc),
        );
        assert!(k.inject(Location::new(0, 0), a.element(), msg));
        k.run_until_quiescent(1_000);
        k.end_trace(tc, "ok");
        k.drain_trace()
    }

    #[test]
    fn one_request_across_three_endpoints_is_one_parented_trace() {
        let events = traced_chain_run(5);
        // Every event belongs to the single trace the driver opened.
        let traces: std::collections::BTreeSet<_> = events.iter().map(|e| e.trace).collect();
        assert_eq!(traces.len(), 1, "{events:?}");
        let s = legion_obs::analysis::summarize(&events);
        assert_eq!(s.len(), 1);
        let s = &s[0];
        assert_eq!(s.hops.len(), 3, "{:?}", s.hops);
        // Delivered at three distinct endpoints.
        let visited: std::collections::BTreeSet<_> = s.hops.iter().filter_map(|h| h.to).collect();
        assert_eq!(visited.len(), 3);
        // Parent chain: root span → hop1 → hop2 → hop3.
        let root = events
            .iter()
            .find(|e| e.kind == SpanEventKind::Begin)
            .unwrap()
            .span;
        assert_eq!(s.hops[0].parent, root);
        assert_eq!(s.hops[1].parent, s.hops[0].span);
        assert_eq!(s.hops[2].parent, s.hops[1].span);
        // And the reconstruction accounts (at least) 95% of the latency.
        let b = legion_obs::analysis::hop_breakdown(&events);
        assert_eq!(b.requests, 1);
        assert!(b.min_coverage >= 0.95, "{b:?}");
    }

    #[test]
    fn same_seed_trace_export_is_byte_identical() {
        let a = legion_obs::export::to_jsonl(&traced_chain_run(9));
        let b = legion_obs::export::to_jsonl(&traced_chain_run(9));
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn dropped_message_records_fault_verdict_span() {
        let mut k = SimKernel::new(Topology::zero(), FaultPlan::none(), 7);
        k.enable_tracing(64);
        k.faults_mut().set_drop_probability(1.0);
        let echo = k.add_endpoint(
            Box::new(Echo::new(Loid::instance(16, 1))),
            Location::new(0, 0),
            "echo",
        );
        let tc = k.begin_trace("doomed");
        let cid = k.fresh_call_id();
        let msg = Message::call(
            cid,
            Loid::instance(16, 1),
            "Ping",
            vec![],
            InvocationEnv::anonymous().with_trace(tc),
        );
        assert!(k.inject(Location::new(0, 0), echo.element(), msg));
        k.run_until_quiescent(10);
        k.end_trace(tc, "lost");
        let events = k.drain_trace();
        let drop = events
            .iter()
            .find(|e| e.kind == SpanEventKind::Drop)
            .expect("drop span recorded");
        assert_eq!(drop.label, "drop:silent");
        assert_eq!(drop.trace, tc.trace);
    }

    #[test]
    fn refused_message_records_fault_verdict_span() {
        let mut k = kernel();
        k.enable_tracing(64);
        let echo = k.add_endpoint(
            Box::new(Echo::new(Loid::instance(16, 1))),
            Location::new(0, 0),
            "echo",
        );
        k.remove_endpoint(echo);
        let tc = k.begin_trace("stale");
        let cid = k.fresh_call_id();
        let msg = Message::call(
            cid,
            Loid::instance(16, 1),
            "Ping",
            vec![],
            InvocationEnv::anonymous().with_trace(tc),
        );
        assert!(!k.inject(Location::new(0, 1), echo.element(), msg));
        k.end_trace(tc, "refused");
        let events = k.drain_trace();
        let refuse = events
            .iter()
            .find(|e| e.kind == SpanEventKind::Refuse)
            .expect("refuse span recorded");
        assert_eq!(refuse.label, "refused:dead-endpoint");
        assert_eq!(refuse.trace, tc.trace);
    }

    #[test]
    fn untraced_crash_fallout_still_records_fault_spans() {
        // A message without any trace context refused by a crashed
        // endpoint, and one already queued to it when it dies, must both
        // show up in the span stream (trace id NONE) — crash fallout is
        // observable without whole-flow tracing.
        let mut k = kernel();
        k.enable_tracing(64);
        let echo = k.add_endpoint(
            Box::new(Echo::new(Loid::instance(16, 1))),
            Location::new(0, 0),
            "echo",
        );
        let cid = k.fresh_call_id();
        let msg = Message::call(
            cid,
            Loid::instance(16, 1),
            "Ping",
            vec![],
            InvocationEnv::anonymous(),
        );
        // Queued delivery, then the endpoint dies: dead letter.
        assert!(k.inject(Location::new(0, 1), echo.element(), msg.clone()));
        k.remove_endpoint(echo);
        k.run_until_quiescent(10);
        // And a post-crash send: detectable refusal.
        assert!(!k.inject(Location::new(0, 1), echo.element(), msg));
        let events = k.drain_trace();
        let dead = events
            .iter()
            .find(|e| e.kind == SpanEventKind::DeadLetter)
            .expect("dead-letter span for untraced message");
        assert_eq!(dead.label, "dead_letter:Ping");
        assert_eq!(dead.trace, legion_core::trace::TraceId::NONE);
        let refuse = events
            .iter()
            .find(|e| e.kind == SpanEventKind::Refuse)
            .expect("refuse span for untraced message");
        assert_eq!(refuse.label, "refused:dead-endpoint");
        assert_eq!(refuse.trace, legion_core::trace::TraceId::NONE);
    }

    #[test]
    fn external_set_timer_fires_and_respects_liveness() {
        struct Ticker {
            tags: Vec<u64>,
        }
        impl Endpoint for Ticker {
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, tag: u64) {
                self.tags.push(tag);
            }
        }
        let mut k = kernel();
        let t = k.add_endpoint(
            Box::new(Ticker { tags: Vec::new() }),
            Location::new(0, 0),
            "ticker",
        );
        assert!(k.set_timer(t, 5_000, 7));
        assert!(k.set_timer(t, 1_000, 3));
        k.run_until_quiescent(10);
        assert_eq!(k.endpoint::<Ticker>(t).unwrap().tags, vec![3, 7]);
        assert_eq!(k.now(), SimTime(5_000));
        k.remove_endpoint(t);
        assert!(!k.set_timer(t, 1_000, 9), "dead endpoint: refused");
    }

    #[test]
    fn duplicated_message_is_delivered_exactly_once() {
        let mut k = SimKernel::new(Topology::zero(), FaultPlan::seeded(3), 7);
        k.enable_tracing(64);
        k.faults_mut().set_duplicate_probability(1.0);
        let echo = k.add_endpoint(
            Box::new(Echo::new(Loid::instance(16, 1))),
            Location::new(0, 0),
            "echo",
        );
        let cid = k.fresh_call_id();
        let msg = Message::call(
            cid,
            Loid::instance(16, 1),
            "Ping",
            vec![],
            InvocationEnv::anonymous(),
        );
        assert!(k.inject(Location::new(0, 1), echo.element(), msg));
        k.run_until_quiescent(20);
        // The copy was queued but the at-most-once window suppressed it.
        assert_eq!(k.meta(echo).unwrap().received, 1);
        assert_eq!(k.counters().get("net.duplicated"), 1);
        assert_eq!(k.counters().get("net.dedup_dropped"), 1);
        assert_eq!(k.endpoint::<Echo>(echo).unwrap().got.len(), 1);
        let events = k.drain_trace();
        assert!(events.iter().any(|e| e.kind == SpanEventKind::Duplicate));
        assert!(events.iter().any(|e| e.kind == SpanEventKind::Dedup));
    }

    #[test]
    fn dedup_disabled_exposes_endpoints_to_duplicates() {
        let mut k = SimKernel::new(Topology::zero(), FaultPlan::seeded(3), 7);
        k.set_dedup_enabled(false);
        assert!(!k.dedup_enabled());
        k.faults_mut().set_duplicate_probability(1.0);
        let echo = k.add_endpoint(
            Box::new(Echo::new(Loid::instance(16, 1))),
            Location::new(0, 0),
            "echo",
        );
        let cid = k.fresh_call_id();
        let msg = Message::call(
            cid,
            Loid::instance(16, 1),
            "Ping",
            vec![],
            InvocationEnv::anonymous(),
        );
        assert!(k.inject(Location::new(0, 1), echo.element(), msg));
        k.run_until_quiescent(20);
        // Without the window the endpoint executes the call twice.
        assert_eq!(k.meta(echo).unwrap().received, 2);
        assert_eq!(k.endpoint::<Echo>(echo).unwrap().got.len(), 2);
    }

    #[test]
    fn delay_spike_stretches_delivery_time() {
        let mut plan = FaultPlan::none();
        plan.add_delay_spike(crate::faults::DelaySpike {
            jurisdiction: None,
            from_ns: 0,
            until_ns: 100_000,
            multiplier: 3,
        });
        let mut k = SimKernel::new(Topology::fixed(1_000, 10_000, 1_000_000), plan, 42);
        let echo = k.add_endpoint(
            Box::new(Echo::new(Loid::instance(16, 1))),
            Location::new(0, 0),
            "echo",
        );
        let client = k.add_endpoint(Box::new(Client::default()), Location::new(0, 1), "client");
        let cid = k.fresh_call_id();
        let mut msg = Message::call(
            cid,
            Loid::instance(16, 1),
            "Ping",
            vec![],
            InvocationEnv::anonymous(),
        );
        msg.reply_to = Some(client.element());
        assert!(k.inject(Location::new(0, 1), echo.element(), msg));
        k.run_until_quiescent(20);
        // 10µs LAN × 3 each way instead of 10µs + 10µs.
        assert_eq!(k.now(), SimTime(60_000));
        assert_eq!(k.counters().get("net.delayed"), 2);
        assert_eq!(k.endpoint::<Client>(client).unwrap().replies.len(), 1);
    }

    #[test]
    fn reorder_jitter_delays_but_delivers() {
        let mut k = SimKernel::new(
            Topology::fixed(1_000, 10_000, 1_000_000),
            FaultPlan::seeded(9),
            42,
        );
        k.faults_mut().set_reorder(1.0, 5_000);
        let echo = k.add_endpoint(
            Box::new(Echo::new(Loid::instance(16, 1))),
            Location::new(0, 0),
            "echo",
        );
        let cid = k.fresh_call_id();
        let msg = Message::call(
            cid,
            Loid::instance(16, 1),
            "Ping",
            vec![],
            InvocationEnv::anonymous(),
        );
        assert!(k.inject(Location::new(0, 1), echo.element(), msg));
        k.run_until_quiescent(20);
        assert_eq!(k.meta(echo).unwrap().received, 1);
        assert!(
            k.now() > SimTime(10_000) && k.now() <= SimTime(15_000),
            "perturbed delivery at {:?}",
            k.now()
        );
    }

    #[test]
    fn adversarial_runs_are_reproducible_per_seed() {
        let run = |seed: u64| {
            let mut plan = FaultPlan::seeded(seed);
            plan.set_drop_probability(0.1);
            plan.set_duplicate_probability(0.2);
            plan.set_reorder(0.3, 40_000);
            let mut k = SimKernel::new(Topology::default(), plan, seed);
            let mut eps = Vec::new();
            for i in 0..5 {
                eps.push(k.add_endpoint(
                    Box::new(Echo::new(Loid::instance(16, i + 1))),
                    Location::new(i as u32 % 2, i as u32),
                    format!("e{i}"),
                ));
            }
            let addr = ObjectAddress::replicated(
                eps.iter().map(|e| e.element()).collect(),
                AddressSemantics::SendToAll,
            );
            k.add_endpoint(Box::new(Fanout { addr }), Location::new(0, 9), "f");
            k.run_until_quiescent(1_000);
            (
                k.now(),
                k.stats().clone(),
                k.counters().get("net.duplicated"),
                k.counters().get("net.dedup_dropped"),
                k.latency_histogram().sum(),
            )
        };
        assert_eq!(run(123), run(123));
        assert_ne!(run(123), run(124));
    }
}
