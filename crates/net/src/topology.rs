//! Topology-aware latency model for the simulated wide area (DESIGN.md
//! substitution: the 1995 NII → a three-tier latency model).
//!
//! Legion targets "wide-area assemblies of workstations, supercomputers,
//! and parallel supercomputers" (§1) and assumes "most accesses will be
//! local ... within a department or university campus" (§5.2). The
//! simulator therefore distinguishes three tiers:
//!
//! * **same host** — inter-process, microseconds;
//! * **same jurisdiction** — campus LAN, tens to hundreds of microseconds;
//! * **cross jurisdiction** — WAN, tens of milliseconds.
//!
//! Each tier samples uniformly from `[base, base + jitter]` using the
//! kernel's deterministic RNG.

use legion_core::time::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Where an endpoint lives, for latency purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Location {
    /// Jurisdiction index.
    pub jurisdiction: u32,
    /// Host index within the jurisdiction.
    pub host: u32,
}

impl Location {
    /// Construct a location.
    pub fn new(jurisdiction: u32, host: u32) -> Self {
        Location { jurisdiction, host }
    }
}

/// One tier's latency: uniform in `[base_ns, base_ns + jitter_ns]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySpec {
    /// Minimum latency in simulated nanoseconds.
    pub base_ns: u64,
    /// Additional uniform jitter in simulated nanoseconds.
    pub jitter_ns: u64,
}

impl LatencySpec {
    /// A fixed latency with no jitter.
    pub const fn fixed(base_ns: u64) -> Self {
        LatencySpec {
            base_ns,
            jitter_ns: 0,
        }
    }

    /// Sample a latency.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        if self.jitter_ns == 0 {
            self.base_ns
        } else {
            self.base_ns + rng.gen_range(0..=self.jitter_ns)
        }
    }
}

/// The three-tier latency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Two endpoints on the same host.
    pub same_host: LatencySpec,
    /// Same jurisdiction, different hosts (campus LAN).
    pub same_jurisdiction: LatencySpec,
    /// Different jurisdictions (WAN).
    pub cross_jurisdiction: LatencySpec,
}

impl Default for Topology {
    /// Mid-1990s campus/WAN numbers: 5 µs IPC, 100 µs ±50 µs LAN,
    /// 40 ms ±20 ms WAN.
    fn default() -> Self {
        Topology {
            same_host: LatencySpec::fixed(5_000),
            same_jurisdiction: LatencySpec {
                base_ns: 100_000,
                jitter_ns: 50_000,
            },
            cross_jurisdiction: LatencySpec {
                base_ns: 40_000_000,
                jitter_ns: 20_000_000,
            },
        }
    }
}

impl Topology {
    /// A zero-latency topology (pure message-count experiments).
    pub fn zero() -> Self {
        Topology {
            same_host: LatencySpec::fixed(0),
            same_jurisdiction: LatencySpec::fixed(0),
            cross_jurisdiction: LatencySpec::fixed(0),
        }
    }

    /// A fixed-latency topology useful for deterministic latency tests.
    pub fn fixed(same_host: u64, lan: u64, wan: u64) -> Self {
        Topology {
            same_host: LatencySpec::fixed(same_host),
            same_jurisdiction: LatencySpec::fixed(lan),
            cross_jurisdiction: LatencySpec::fixed(wan),
        }
    }

    /// Which tier connects `a` and `b`?
    pub fn tier(&self, a: Location, b: Location) -> LatencySpec {
        if a.jurisdiction != b.jurisdiction {
            self.cross_jurisdiction
        } else if a.host != b.host {
            self.same_jurisdiction
        } else {
            self.same_host
        }
    }

    /// Sample the latency between two locations.
    pub fn latency<R: Rng>(&self, a: Location, b: Location, rng: &mut R) -> SimTime {
        SimTime(self.tier(a, b).sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn tiers_are_selected_correctly() {
        let t = Topology::fixed(1, 10, 100);
        let a = Location::new(0, 0);
        let same_host = Location::new(0, 0);
        let same_jur = Location::new(0, 1);
        let cross = Location::new(1, 0);
        assert_eq!(t.tier(a, same_host).base_ns, 1);
        assert_eq!(t.tier(a, same_jur).base_ns, 10);
        assert_eq!(t.tier(a, cross).base_ns, 100);
    }

    #[test]
    fn default_tiers_are_ordered() {
        let t = Topology::default();
        assert!(t.same_host.base_ns < t.same_jurisdiction.base_ns);
        assert!(
            t.same_jurisdiction.base_ns + t.same_jurisdiction.jitter_ns
                < t.cross_jurisdiction.base_ns
        );
    }

    #[test]
    fn jitter_samples_within_range() {
        let spec = LatencySpec {
            base_ns: 100,
            jitter_ns: 50,
        };
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = spec.sample(&mut rng);
            assert!((100..=150).contains(&v));
        }
    }

    #[test]
    fn fixed_spec_has_no_jitter() {
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(LatencySpec::fixed(42).sample(&mut rng), 42);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let t = Topology::default();
        let sample = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..100)
                .map(|i| {
                    t.latency(Location::new(0, 0), Location::new(i % 3, i), &mut rng)
                        .as_nanos()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(1), sample(1));
        assert_ne!(sample(1), sample(2));
    }

    #[test]
    fn zero_topology_is_zero() {
        let t = Topology::zero();
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(
            t.latency(Location::new(0, 0), Location::new(5, 9), &mut rng),
            SimTime::ZERO
        );
    }
}
