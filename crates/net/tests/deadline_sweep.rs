//! Edge cases of the shared continuation deadline sweep.
//!
//! Every endpoint that waits on replies shares one deadline mechanism:
//! [`insert_pending`] records the continuation with `deadline = now + d`
//! and arms a sweep timer; [`sweep_expired`] then resolves everything
//! overdue with the uniform [`timeout_error`]. These tests pin down the
//! boundary behavior that is easy to regress and hard to spot in the
//! end-to-end experiments:
//!
//! * a deadline **exactly equal** to the sweep's `now` has expired
//!   (`<=`, not `<`) — the timer armed with delay `d` fires at `now + d`
//!   and must collect the continuation it was armed for;
//! * several continuations expiring in one sweep all resolve, in
//!   ascending [`CallId`] order, each with the same uniform
//!   `CoreError::Timeout` rendering;
//! * a sweep firing after the *callee* endpoint was removed still times
//!   the waiter out — removal produces a dead letter, never a reply, and
//!   the waiter must not leak the continuation.

use legion_core::env::InvocationEnv;
use legion_core::loid::Loid;
use legion_core::value::LegionValue;
use legion_net::dispatch::{
    cont, insert_pending, is_timeout, reply_result, sweep_expired, timeout_error, Continuations,
    TIMER_DEADLINE_SWEEP,
};
use legion_net::faults::FaultPlan;
use legion_net::message::{CallId, Message};
use legion_net::sim::{Ctx, Endpoint, EndpointId, SimKernel};
use legion_net::topology::{Location, Topology};

const TIMEOUT_NS: u64 = 5_000;
const TARGET: Loid = Loid::instance(77, 1);
const WAITER: Loid = Loid::instance(77, 2);

/// Calls `target` `calls` times at start, arming the shared deadline
/// machinery for each call, and records every resolution in order.
struct Waiter {
    target: EndpointId,
    calls: usize,
    conts: Continuations<Waiter>,
    /// `(call_id, error)` per resolved continuation, in resolution order.
    resolved: Vec<(u64, Result<LegionValue, String>)>,
    /// Expired-count returned by each sweep that found something.
    sweeps: Vec<usize>,
}

impl Waiter {
    fn new(target: EndpointId, calls: usize) -> Self {
        Waiter {
            target,
            calls,
            conts: Continuations::new(),
            resolved: Vec::new(),
            sweeps: Vec::new(),
        }
    }
}

impl Endpoint for Waiter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..self.calls {
            let id = ctx
                .call(
                    self.target.element(),
                    TARGET,
                    "Ping",
                    vec![],
                    InvocationEnv::solo(WAITER),
                    Some(WAITER),
                )
                .expect("send accepted");
            let raw = id.0;
            insert_pending(
                &mut self.conts,
                ctx,
                id,
                cont(move |e: &mut Waiter, _ctx, r| e.resolved.push((raw, r))),
                Some(TIMEOUT_NS),
                TIMER_DEADLINE_SWEEP,
            );
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        if let Some(id) = legion_net::dispatch::reply_id(&msg) {
            if let Some(k) = self.conts.take(&id) {
                k(self, ctx, reply_result(&msg));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag == TIMER_DEADLINE_SWEEP {
            let n = sweep_expired(self, ctx, |e| &mut e.conts, TIMEOUT_NS);
            if n > 0 {
                self.sweeps.push(n);
            }
        }
    }
}

/// Swallows every call: no reply, ever (the lost-reply worst case).
struct BlackHole;

impl Endpoint for BlackHole {
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
}

fn kernel() -> SimKernel {
    SimKernel::new(
        Topology::fixed(1_000, 10_000, 1_000_000),
        FaultPlan::none(),
        7,
    )
}

/// A deadline exactly equal to the sweep's `now` is overdue: the timer
/// armed by `insert_pending` at delay `d` fires at `now + d`, and that
/// sweep alone must collect the continuation (`deadline <= now`).
#[test]
fn deadline_equal_to_now_expires() {
    let mut k = kernel();
    let hole = k.add_endpoint(Box::new(BlackHole), Location::new(0, 0), "hole");
    let w = k.add_endpoint(
        Box::new(Waiter::new(hole, 1)),
        Location::new(0, 1),
        "waiter",
    );
    k.run_until_quiescent(10_000);
    let waiter = k.endpoint::<Waiter>(w).unwrap();
    assert_eq!(waiter.sweeps, vec![1], "the arming sweep itself collects");
    assert_eq!(waiter.resolved.len(), 1);
    let (_, r) = &waiter.resolved[0];
    assert_eq!(
        r.as_ref().err().map(String::as_str),
        Some(timeout_error(TIMEOUT_NS).as_str())
    );
}

/// Directly at the store level: `take_expired(now)` takes a continuation
/// whose deadline *equals* `now`, and leaves one due a tick later.
#[test]
fn take_expired_boundary_is_inclusive() {
    use legion_core::time::SimTime;
    let mut c: Continuations<Waiter> = Continuations::new();
    c.insert_with_deadline(CallId(1), cont(|_, _, _| {}), SimTime(100));
    c.insert_with_deadline(CallId(2), cont(|_, _, _| {}), SimTime(101));
    assert!(c.take_expired(SimTime(99)).is_empty());
    let due = c.take_expired(SimTime(100));
    assert_eq!(due.len(), 1);
    assert_eq!(due[0].0, CallId(1));
    assert_eq!(c.take_expired(SimTime(101)).len(), 1);
}

/// Several continuations past their deadlines resolve in one sweep, in
/// ascending `CallId` order, each with the identical uniform timeout
/// rendering — the error callers branch on with [`is_timeout`].
#[test]
fn one_sweep_resolves_all_expired_in_call_id_order() {
    let mut k = kernel();
    let hole = k.add_endpoint(Box::new(BlackHole), Location::new(0, 0), "hole");
    let w = k.add_endpoint(
        Box::new(Waiter::new(hole, 3)),
        Location::new(0, 1),
        "waiter",
    );
    k.run_until_quiescent(10_000);
    let waiter = k.endpoint::<Waiter>(w).unwrap();
    // All three calls were armed at the same instant, so the first sweep
    // to reach the shared deadline collects all of them at once.
    assert_eq!(waiter.sweeps.iter().sum::<usize>(), 3);
    assert_eq!(waiter.sweeps[0], 3, "one sweep, three expiries");
    let ids: Vec<u64> = waiter.resolved.iter().map(|(id, _)| *id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "resolution follows CallId order");
    for (_, r) in &waiter.resolved {
        let err = r.as_ref().expect_err("timed out");
        assert!(is_timeout(err), "uniform timeout rendering, got {err}");
        assert_eq!(err, &timeout_error(TIMEOUT_NS));
    }
}

/// The callee is removed right after the calls are sent: deliveries
/// become dead letters and no reply can ever arrive. The waiter's sweep
/// must still fire and time the continuations out — endpoint removal
/// must not leak waiters.
#[test]
fn sweep_fires_after_callee_removed() {
    let mut k = kernel();
    let hole = k.add_endpoint(Box::new(BlackHole), Location::new(0, 0), "hole");
    let w = k.add_endpoint(
        Box::new(Waiter::new(hole, 2)),
        Location::new(0, 1),
        "waiter",
    );
    // Run only the start events (calls sent, timers armed), then kill the
    // callee before anything is delivered.
    k.run_until(k.now());
    k.remove_endpoint(hole);
    k.run_until_quiescent(10_000);
    let waiter = k.endpoint::<Waiter>(w).unwrap();
    assert_eq!(waiter.resolved.len(), 2, "both waiters timed out");
    for (_, r) in &waiter.resolved {
        assert!(is_timeout(r.as_ref().expect_err("timed out")));
    }
    assert!(waiter.conts.is_empty(), "no leaked continuations");
}
