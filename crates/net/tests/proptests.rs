//! Property-based tests for the substrate: histogram quantiles against
//! exact order statistics, fault-plan symmetry, and kernel determinism
//! under randomized endpoint populations.

use legion_core::env::InvocationEnv;
use legion_core::loid::Loid;
use legion_net::faults::{FaultPlan, Verdict};
use legion_net::message::Message;
use legion_net::metrics::Histogram;
use legion_net::sim::{Ctx, Endpoint, SimKernel};
use legion_net::topology::{LatencySpec, Location, Topology};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// The log₂ histogram's quantile over-estimates the exact order
    /// statistic by at most 2x and never under-estimates below the
    /// bucket's lower bound.
    #[test]
    fn histogram_quantile_brackets_exact(
        mut samples in proptest::collection::vec(0u64..1_000_000, 1..300),
        q in 0.0f64..=1.0,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let exact = samples[rank - 1];
        let approx = h.quantile(q);
        prop_assert!(approx >= exact, "approx {approx} < exact {exact}");
        prop_assert!(
            approx <= exact.saturating_mul(2).max(1),
            "approx {approx} > 2*exact {exact}"
        );
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), samples[0]);
        prop_assert_eq!(h.max(), *samples.last().unwrap());
    }

    /// Histogram merge equals recording the concatenation.
    #[test]
    fn histogram_merge_is_concat(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut ha = Histogram::new();
        for &s in &a { ha.record(s); }
        let mut hb = Histogram::new();
        for &s in &b { hb.record(s); }
        ha.merge(&hb);
        let mut hc = Histogram::new();
        for &s in a.iter().chain(b.iter()) { hc.record(s); }
        prop_assert_eq!(ha, hc);
    }

    /// Partitions are symmetric and heal exactly.
    #[test]
    fn partitions_are_symmetric(pairs in proptest::collection::vec((0u32..8, 0u32..8), 0..16)) {
        let mut plan = FaultPlan::none();
        for (a, b) in &pairs {
            plan.partition(*a, *b);
        }
        for a in 0..8u32 {
            for b in 0..8u32 {
                let now = legion_core::time::SimTime::ZERO;
                let ab = plan.judge(1, Location::new(a, 0), Location::new(b, 0), now);
                let ba = plan.judge(1, Location::new(b, 0), Location::new(a, 0), now);
                prop_assert_eq!(ab == Verdict::DropSilently, ba == Verdict::DropSilently);
                let expected = pairs.iter().any(|(x, y)| {
                    (*x.min(y), *x.max(y)) == (a.min(b), a.max(b))
                });
                prop_assert_eq!(ab == Verdict::DropSilently, expected);
            }
        }
        for (a, b) in &pairs {
            plan.heal(*a, *b);
        }
        prop_assert!(!plan.has_partitions());
    }

    /// Latency sampling always lands in `[base, base+jitter]` and picks
    /// the right tier.
    #[test]
    fn topology_samples_in_range(
        base in 0u64..10_000,
        jitter in 0u64..10_000,
        aj in 0u32..4, ah in 0u32..4, bj in 0u32..4, bh in 0u32..4,
        seed in any::<u64>(),
    ) {
        let spec = LatencySpec { base_ns: base, jitter_ns: jitter };
        let t = Topology { same_host: spec, same_jurisdiction: spec, cross_jurisdiction: spec };
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = Location::new(aj, ah);
        let b = Location::new(bj, bh);
        for _ in 0..20 {
            let l = t.latency(a, b, &mut rng).as_nanos();
            prop_assert!(l >= base && l <= base + jitter);
        }
    }

    /// At-most-once delivery: under any mix of duplication and reordering
    /// (no drops), each logical call executes exactly once on the callee
    /// and the caller observes exactly one reply — duplicate copies of
    /// both the call and the reply are absorbed by the receiver-side
    /// dedup window.
    #[test]
    fn exactly_once_under_duplication_and_reorder(
        seed in any::<u64>(),
        n_calls in 1u32..6,
        dup in 0.0f64..=1.0,
        reorder_p in 0.0f64..=1.0,
        jitter in 0u64..200_000,
    ) {
        struct Caller {
            target: u64,
            calls: u32,
            replies: u32,
        }
        impl Endpoint for Caller {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for _ in 0..self.calls {
                    let id = ctx.fresh_call_id();
                    let msg = Message::call(
                        id,
                        Loid::instance(7, 1),
                        "Work",
                        vec![],
                        InvocationEnv::anonymous(),
                    );
                    ctx.send(legion_core::address::ObjectAddressElement::sim(self.target), msg);
                }
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, msg: Message) {
                if msg.is_reply() {
                    self.replies += 1;
                }
            }
        }
        struct Worker {
            executions: u32,
        }
        impl Endpoint for Worker {
            fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
                if !msg.is_reply() {
                    self.executions += 1;
                    ctx.reply(&msg, Ok(legion_core::value::LegionValue::Void));
                }
            }
        }
        let mut k = SimKernel::with_seed(seed);
        let worker = k.add_endpoint(
            Box::new(Worker { executions: 0 }),
            Location::new(1, 0),
            "worker",
        );
        let caller = k.add_endpoint(
            Box::new(Caller { target: worker.0, calls: n_calls, replies: 0 }),
            Location::new(0, 0),
            "caller",
        );
        k.faults_mut().set_seed(seed);
        k.faults_mut().set_duplicate_probability(dup);
        k.faults_mut().set_reorder(reorder_p, jitter);
        k.run_until_quiescent(100_000);
        let executed = k.endpoint::<Worker>(worker).unwrap().executions;
        let replied = k.endpoint::<Caller>(caller).unwrap().replies;
        prop_assert_eq!(executed, n_calls, "each logical call must execute exactly once");
        prop_assert_eq!(replied, n_calls, "each logical call must yield exactly one reply");
    }

    /// A randomized ping-pong population is deterministic per seed: the
    /// same seed gives identical delivered counts and final time.
    #[test]
    fn kernel_deterministic_for_random_populations(
        n in 1usize..10,
        fanout in 1usize..5,
        seed in any::<u64>(),
    ) {
        struct Pinger {
            peers: Vec<u64>,
            budget: u32,
        }
        impl Endpoint for Pinger {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for &p in &self.peers.clone() {
                    let id = ctx.fresh_call_id();
                    let msg = Message::call(
                        id,
                        Loid::instance(1, p + 1),
                        "Ping",
                        vec![],
                        InvocationEnv::anonymous(),
                    );
                    ctx.send(legion_core::address::ObjectAddressElement::sim(p), msg);
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
                if self.budget > 0 && !msg.is_reply() {
                    self.budget -= 1;
                    ctx.reply(&msg, Ok(legion_core::value::LegionValue::Void));
                }
            }
        }
        let run = |seed: u64| {
            let mut k = SimKernel::with_seed(seed);
            for i in 0..n {
                let peers = (0..fanout).map(|f| ((i + f + 1) % n) as u64).collect();
                k.add_endpoint(
                    Box::new(Pinger { peers, budget: 3 }),
                    Location::new((i % 3) as u32, i as u32),
                    format!("p{i}"),
                );
            }
            k.run_until_quiescent(100_000);
            (k.now(), k.stats().delivered, k.stats().sent)
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
