//! Per-request critical-path reconstruction.
//!
//! Rebuilds each trace from its flat event list: pairs every `Send` with
//! its `Deliver` (same span id) to recover hop latencies, then accounts
//! the request's end-to-end time into **network** time (the union of
//! in-flight hop intervals) and **wait** time (everything else — queueing
//! at endpoints, timer backoff, inter-phase think time). Because wait is
//! an explicit bucket, the breakdown accounts for 100% of each request's
//! latency; the per-hop-label rows then explain where the network time
//! went.

use crate::span::{SpanEvent, SpanEventKind};
use legion_core::time::SimTime;
use legion_core::trace::{SpanId, TraceId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How one message hop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HopFate {
    /// Delivered at this virtual time.
    Delivered(SimTime),
    /// Silently dropped by the fault plan.
    Dropped,
    /// Detectably refused at the sender.
    Refused,
    /// Arrived to find the endpoint dead.
    DeadLettered,
    /// No terminal event recorded (still in flight at drain time).
    Pending,
}

/// One reconstructed message hop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hop {
    /// The hop's span id.
    pub span: SpanId,
    /// The span that caused this hop.
    pub parent: SpanId,
    /// Method name (or `reply`) of the message.
    pub label: String,
    /// When it left the sender.
    pub sent_at: SimTime,
    /// The sending endpoint.
    pub from: u64,
    /// The receiving endpoint, once known.
    pub to: Option<u64>,
    /// How it ended.
    pub fate: HopFate,
}

impl Hop {
    /// The hop's in-flight latency, for delivered hops.
    pub fn latency(&self) -> Option<u64> {
        match self.fate {
            HopFate::Delivered(at) => Some(at.saturating_since(self.sent_at)),
            _ => None,
        }
    }
}

/// Everything reconstructed about one trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// The trace id.
    pub trace: TraceId,
    /// The `Begin` label (operation name), if a `Begin` was captured.
    pub label: String,
    /// When the root span opened.
    pub begin_at: Option<SimTime>,
    /// When the request ended.
    pub end_at: Option<SimTime>,
    /// The `End` label (outcome), if an `End` was captured.
    pub outcome: String,
    /// Message hops, in send order.
    pub hops: Vec<Hop>,
    /// `Note` annotations as `(at, endpoint, label)`.
    pub notes: Vec<(SimTime, u64, String)>,
    /// Timer firings observed inside the trace.
    pub timers: u64,
}

/// Group a flat event list into per-trace summaries, ordered by trace id.
pub fn summarize(events: &[SpanEvent]) -> Vec<TraceSummary> {
    let mut by_trace: BTreeMap<TraceId, TraceSummary> = BTreeMap::new();
    for e in events {
        if !e.trace.is_some() {
            continue;
        }
        let s = by_trace.entry(e.trace).or_insert_with(|| TraceSummary {
            trace: e.trace,
            label: String::new(),
            begin_at: None,
            end_at: None,
            outcome: String::new(),
            hops: Vec::new(),
            notes: Vec::new(),
            timers: 0,
        });
        match e.kind {
            SpanEventKind::Begin => {
                s.begin_at = Some(e.at);
                s.label = e.label.clone();
            }
            SpanEventKind::End => {
                s.end_at = Some(e.at);
                s.outcome = e.label.clone();
            }
            SpanEventKind::Send => s.hops.push(Hop {
                span: e.span,
                parent: e.parent,
                label: e.label.clone(),
                sent_at: e.at,
                from: e.endpoint,
                to: None,
                fate: HopFate::Pending,
            }),
            SpanEventKind::Deliver
            | SpanEventKind::Drop
            | SpanEventKind::Refuse
            | SpanEventKind::DeadLetter => {
                if let Some(h) = s.hops.iter_mut().rev().find(|h| h.span == e.span) {
                    h.fate = match e.kind {
                        SpanEventKind::Deliver => HopFate::Delivered(e.at),
                        SpanEventKind::Drop => HopFate::Dropped,
                        SpanEventKind::Refuse => HopFate::Refused,
                        _ => HopFate::DeadLettered,
                    };
                    if e.kind == SpanEventKind::Deliver {
                        h.to = Some(e.endpoint);
                    }
                }
            }
            SpanEventKind::Timer => s.timers += 1,
            // Fault-verdict annotations: the hop's fate is still decided
            // by its eventual Deliver/Drop event, so these read as notes.
            SpanEventKind::Note
            | SpanEventKind::Duplicate
            | SpanEventKind::Delay
            | SpanEventKind::Dedup => s.notes.push((e.at, e.endpoint, e.label.clone())),
        }
    }
    by_trace.into_values().collect()
}

/// One trace's latency accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestPath {
    /// The trace id.
    pub trace: TraceId,
    /// The operation name.
    pub label: String,
    /// End-to-end latency in virtual nanoseconds (0 if begin/end missing).
    pub total_ns: u64,
    /// Nanoseconds with at least one hop of this trace in flight.
    pub network_ns: u64,
    /// `total - network`: queueing, timer backoff, think time.
    pub wait_ns: u64,
    /// Per-hop-label `(label, hops, summed latency)` in label order.
    pub by_label: Vec<(String, u64, u64)>,
    /// Hops that never delivered (dropped/refused/dead-lettered/pending).
    pub faulted_hops: u64,
    /// Fraction of `total_ns` accounted by `network + wait` (1.0 by
    /// construction when begin/end were both captured).
    pub coverage: f64,
}

/// Account one trace's end-to-end time. Hops outside `[begin, end]` are
/// clamped into the window.
pub fn request_path(s: &TraceSummary) -> RequestPath {
    let begin = s.begin_at.unwrap_or(SimTime::ZERO);
    let end = s.end_at.unwrap_or(begin);
    let total_ns = end.saturating_since(begin);

    // Union of in-flight intervals, clamped to the request window.
    let mut intervals: Vec<(u64, u64)> = s
        .hops
        .iter()
        .filter_map(|h| {
            let d = match h.fate {
                HopFate::Delivered(at) => at.as_nanos(),
                _ => return None,
            };
            let lo = h.sent_at.as_nanos().max(begin.as_nanos());
            let hi = d.min(end.as_nanos());
            (hi > lo).then_some((lo, hi))
        })
        .collect();
    intervals.sort_unstable();
    let mut network_ns = 0u64;
    let mut cursor = 0u64;
    for (lo, hi) in intervals {
        let lo = lo.max(cursor);
        if hi > lo {
            network_ns += hi - lo;
            cursor = hi;
        }
        cursor = cursor.max(hi);
    }

    let mut by_label: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut faulted = 0u64;
    for h in &s.hops {
        match h.latency() {
            Some(lat) => {
                let e = by_label.entry(h.label.clone()).or_insert((0, 0));
                e.0 += 1;
                e.1 += lat;
            }
            None => faulted += 1,
        }
    }

    let wait_ns = total_ns.saturating_sub(network_ns);
    RequestPath {
        trace: s.trace,
        label: s.label.clone(),
        total_ns,
        network_ns,
        wait_ns,
        by_label: by_label.into_iter().map(|(l, (n, t))| (l, n, t)).collect(),
        faulted_hops: faulted,
        coverage: if total_ns == 0 {
            1.0
        } else {
            (network_ns + wait_ns) as f64 / total_ns as f64
        },
    }
}

/// Aggregate accounting across every trace in an event list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopBreakdown {
    /// Number of traces with both `Begin` and `End` captured.
    pub requests: u64,
    /// Σ end-to-end latency across those requests.
    pub total_ns: u64,
    /// Σ in-flight (network) time.
    pub network_ns: u64,
    /// Σ wait time.
    pub wait_ns: u64,
    /// Per-label `(label, hops, summed latency)` across all requests.
    pub by_label: Vec<(String, u64, u64)>,
    /// Hops that never delivered.
    pub faulted_hops: u64,
    /// The worst per-request accounted fraction (min over requests).
    pub min_coverage: f64,
}

/// Build the aggregate breakdown for an event list.
pub fn hop_breakdown(events: &[SpanEvent]) -> HopBreakdown {
    let mut agg = HopBreakdown {
        requests: 0,
        total_ns: 0,
        network_ns: 0,
        wait_ns: 0,
        by_label: Vec::new(),
        faulted_hops: 0,
        min_coverage: 1.0,
    };
    let mut labels: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for s in summarize(events) {
        if s.begin_at.is_none() || s.end_at.is_none() {
            continue;
        }
        let p = request_path(&s);
        agg.requests += 1;
        agg.total_ns += p.total_ns;
        agg.network_ns += p.network_ns;
        agg.wait_ns += p.wait_ns;
        agg.faulted_hops += p.faulted_hops;
        agg.min_coverage = agg.min_coverage.min(p.coverage);
        for (l, n, t) in p.by_label {
            let e = labels.entry(l).or_insert((0, 0));
            e.0 += n;
            e.1 += t;
        }
    }
    agg.by_label = labels.into_iter().map(|(l, (n, t))| (l, n, t)).collect();
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_core::trace::SpanId;

    fn ev(
        trace: u64,
        span: u64,
        parent: u64,
        kind: SpanEventKind,
        at: u64,
        label: &str,
    ) -> SpanEvent {
        SpanEvent {
            trace: TraceId(trace),
            span: SpanId(span),
            parent: SpanId(parent),
            kind,
            at: SimTime(at),
            endpoint: 0,
            label: label.into(),
        }
    }

    /// begin@0 .. send@0->deliver@10 .. send@10->deliver@30 .. end@40
    fn one_trace() -> Vec<SpanEvent> {
        vec![
            ev(1, 1, 0, SpanEventKind::Begin, 0, "lookup"),
            ev(1, 2, 1, SpanEventKind::Send, 0, "GetBinding"),
            ev(1, 2, 1, SpanEventKind::Deliver, 10, ""),
            ev(1, 3, 2, SpanEventKind::Send, 10, "reply"),
            ev(1, 3, 2, SpanEventKind::Deliver, 30, ""),
            ev(1, 1, 0, SpanEventKind::End, 40, "ok"),
        ]
    }

    #[test]
    fn hops_pair_send_with_deliver() {
        let s = summarize(&one_trace());
        assert_eq!(s.len(), 1);
        let s = &s[0];
        assert_eq!(s.hops.len(), 2);
        assert_eq!(s.hops[0].latency(), Some(10));
        assert_eq!(s.hops[1].latency(), Some(20));
        assert_eq!(s.label, "lookup");
        assert_eq!(s.outcome, "ok");
    }

    #[test]
    fn path_accounts_everything() {
        let s = summarize(&one_trace());
        let p = request_path(&s[0]);
        assert_eq!(p.total_ns, 40);
        assert_eq!(p.network_ns, 30);
        assert_eq!(p.wait_ns, 10);
        assert_eq!(p.network_ns + p.wait_ns, p.total_ns);
        assert_eq!(p.coverage, 1.0);
        assert_eq!(p.faulted_hops, 0);
    }

    #[test]
    fn overlapping_hops_do_not_double_count() {
        let events = vec![
            ev(1, 1, 0, SpanEventKind::Begin, 0, "fanout"),
            ev(1, 2, 1, SpanEventKind::Send, 0, "Ping"),
            ev(1, 3, 1, SpanEventKind::Send, 0, "Ping"),
            ev(1, 2, 1, SpanEventKind::Deliver, 10, ""),
            ev(1, 3, 1, SpanEventKind::Deliver, 15, ""),
            ev(1, 1, 0, SpanEventKind::End, 15, "ok"),
        ];
        let p = request_path(&summarize(&events)[0]);
        assert_eq!(p.network_ns, 15, "union, not sum");
        assert_eq!(p.wait_ns, 0);
        // Per-label sums still show both hops.
        assert_eq!(p.by_label, vec![("Ping".to_string(), 2, 25)]);
    }

    #[test]
    fn faulted_hops_are_counted_not_timed() {
        let events = vec![
            ev(1, 1, 0, SpanEventKind::Begin, 0, "op"),
            ev(1, 2, 1, SpanEventKind::Send, 0, "Ping"),
            ev(1, 2, 1, SpanEventKind::Drop, 0, "drop"),
            ev(1, 1, 0, SpanEventKind::End, 50, "failed"),
        ];
        let p = request_path(&summarize(&events)[0]);
        assert_eq!(p.faulted_hops, 1);
        assert_eq!(p.network_ns, 0);
        assert_eq!(p.wait_ns, 50);
    }

    #[test]
    fn aggregate_spans_multiple_traces() {
        let mut events = one_trace();
        let mut second = one_trace();
        for e in &mut second {
            e.trace = TraceId(2);
        }
        events.extend(second);
        let b = hop_breakdown(&events);
        assert_eq!(b.requests, 2);
        assert_eq!(b.total_ns, 80);
        assert_eq!(b.network_ns, 60);
        assert_eq!(b.wait_ns, 20);
        assert!(b.min_coverage >= 0.95, "acceptance floor");
    }
}
