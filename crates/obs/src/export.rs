//! JSONL export of recorded span events.
//!
//! One event per line, in recording order. Because the kernel is
//! deterministic and ids come from counters, two same-seed runs render
//! byte-identical output — which the acceptance tests assert.

use crate::span::SpanEvent;
use serde::{json, DeError, Deserialize, Serialize};

/// Render events as JSON Lines (one compact object per line, trailing
/// newline included when non-empty).
pub fn to_jsonl(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&json::to_string(&e.to_json_value()));
        out.push('\n');
    }
    out
}

/// Parse JSON Lines back into events (blank lines are skipped).
pub fn from_jsonl(text: &str) -> Result<Vec<SpanEvent>, DeError> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let v = json::from_str(l)?;
            SpanEvent::from_json_value(&v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanEventKind;
    use legion_core::time::SimTime;
    use legion_core::trace::{SpanId, TraceId};

    fn sample() -> Vec<SpanEvent> {
        vec![
            SpanEvent {
                trace: TraceId(1),
                span: SpanId(1),
                parent: SpanId::NONE,
                kind: SpanEventKind::Begin,
                at: SimTime(0),
                endpoint: 7,
                label: "lookup".into(),
            },
            SpanEvent {
                trace: TraceId(1),
                span: SpanId(2),
                parent: SpanId(1),
                kind: SpanEventKind::Send,
                at: SimTime(10),
                endpoint: 7,
                label: "GetBinding".into(),
            },
        ]
    }

    #[test]
    fn jsonl_round_trips() {
        let events = sample();
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), 2);
        let back = from_jsonl(&text).expect("parses");
        assert_eq!(back, events);
    }

    #[test]
    fn empty_input_renders_empty() {
        assert_eq!(to_jsonl(&[]), "");
        assert!(from_jsonl("").expect("parses").is_empty());
    }
}
