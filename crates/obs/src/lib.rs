//! # legion-obs — causal tracing and trace analysis
//!
//! The paper's scalability argument (§5.2) is an argument about *where
//! requests go*; this crate makes that observable per request. A
//! workload-level operation opens a **trace**; every kernel message hop,
//! timer, and protocol annotation inside it becomes a **span event**
//! recorded into a bounded [`sink::TraceSink`]. The kernel in
//! `legion-net` is the only writer, so traces are exactly as
//! deterministic as the simulation itself: two runs with the same seed
//! produce byte-identical JSONL.
//!
//! | Module | Role |
//! |---|---|
//! | [`span`] | The span-event schema (what gets recorded) |
//! | [`sink`] | Bounded ring-buffer sink + deterministic id allocators |
//! | [`export`] | JSONL rendering of recorded events |
//! | [`analysis`] | Per-request hop reconstruction and latency breakdown |

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod export;
pub mod sink;
pub mod span;

pub use analysis::{HopBreakdown, RequestPath, TraceSummary};
pub use sink::TraceSink;
pub use span::{SpanEvent, SpanEventKind};
