//! # legion-obs — causal tracing and trace analysis
//!
//! The paper's scalability argument (§5.2) is an argument about *where
//! requests go*; this crate makes that observable per request. A
//! workload-level operation opens a **trace**; every kernel message hop,
//! timer, and protocol annotation inside it becomes a **span event**
//! recorded into a bounded [`sink::TraceSink`]. The kernel in
//! `legion-net` is the only writer, so traces are exactly as
//! deterministic as the simulation itself: two runs with the same seed
//! produce byte-identical JSONL.
//!
//! | Module | Role |
//! |---|---|
//! | [`span`] | The span-event schema (what gets recorded) |
//! | [`sink`] | Bounded ring-buffer sink + deterministic id allocators |
//! | [`export`] | JSONL rendering of recorded events |
//! | [`analysis`] | Per-request hop reconstruction and latency breakdown |
//! | [`recorder`] | Always-on, allocation-free flight recorder (post-mortem tail) |
//! | [`profile`] | Per-endpoint × per-method cost attribution |
//! | [`slo`] | Windowed exact p50/p99 vs objectives, error budgets, burn events |

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod export;
pub mod profile;
pub mod recorder;
pub mod sink;
pub mod slo;
pub mod span;

pub use analysis::{HopBreakdown, RequestPath, TraceSummary};
pub use profile::{KernelProfiler, MethodStat, Profile, ProfileEntry};
pub use recorder::{FlightEvent, FlightKind, FlightRecorder};
pub use sink::TraceSink;
pub use slo::{SloConfig, SloObjective, SloReport, SloTracker};
pub use span::{SpanEvent, SpanEventKind};
