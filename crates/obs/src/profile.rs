//! Kernel profiler: per-endpoint × per-method attribution.
//!
//! The §5.2 scalability claims are claims about *where work goes*; the
//! profiler pins them down per `(endpoint, method)` pair: how many
//! messages, how much sim-time (the hop latency each delivery paid), how
//! much wall-time the handler burned, and how much allocator pressure it
//! generated (read from [`legion_core::allocs`], fed by the counting
//! allocator `legion-bench` registers).
//!
//! Determinism discipline: message counts and sim-time are exactly as
//! deterministic as the simulation; wall-time never is, and allocation
//! deltas are only deterministic in a single-threaded process with the
//! counting allocator registered. The exported run report therefore
//! keeps only `count` and `sim_ns` (see
//! [`Profile::to_json_value`]); wall/alloc attribution stays available
//! in-memory for bench assertions and interactive digging.
//!
//! Steady-state cost: recording into an existing `(endpoint, method)`
//! entry allocates nothing, and [`KernelProfiler::reset_values`] zeroes
//! stats *in place* without dropping the map nodes — so a warm-up wave
//! populates the keys and the measured wave's profiling overhead is a
//! handful of atomic loads and a map lookup per delivery.

use crate::analysis::{request_path, summarize};
use crate::span::SpanEvent;
use legion_core::symbol::Sym;
use serde::Value;
use std::collections::BTreeMap;

/// Accumulated cost of one `(endpoint, method)` pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MethodStat {
    /// Messages delivered.
    pub count: u64,
    /// Summed sim-time (hop latency paid by each delivery), ns.
    pub sim_ns: u64,
    /// Summed handler wall-time, ns (not deterministic; excluded from
    /// exported reports).
    pub wall_ns: u64,
    /// Allocations performed by the handlers (zero without a counting
    /// allocator registered).
    pub allocs: u64,
    /// Bytes allocated by the handlers.
    pub alloc_bytes: u64,
}

/// The kernel-side collector. Off by default; when off, recording is a
/// single branch.
#[derive(Debug, Clone, Default)]
pub struct KernelProfiler {
    enabled: bool,
    stats: BTreeMap<(u64, Sym), MethodStat>,
}

impl KernelProfiler {
    /// A disabled profiler (the kernel's default state).
    pub fn disabled() -> Self {
        KernelProfiler::default()
    }

    /// An enabled, empty profiler.
    pub fn enabled() -> Self {
        KernelProfiler {
            enabled: true,
            stats: BTreeMap::new(),
        }
    }

    /// Is attribution on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Attribute one delivery. No-op when disabled.
    #[inline]
    pub fn record(
        &mut self,
        endpoint: u64,
        method: Sym,
        sim_ns: u64,
        wall_ns: u64,
        allocs: u64,
        alloc_bytes: u64,
    ) {
        if !self.enabled {
            return;
        }
        let s = self.stats.entry((endpoint, method)).or_default();
        s.count += 1;
        s.sim_ns += sim_ns;
        s.wall_ns += wall_ns;
        s.allocs += allocs;
        s.alloc_bytes += alloc_bytes;
    }

    /// Zero every stat **in place**, keeping the `(endpoint, method)`
    /// keys — a measured wave after a warm-up wave re-fills existing
    /// entries without new map allocations.
    pub fn reset_values(&mut self) {
        for s in self.stats.values_mut() {
            *s = MethodStat::default();
        }
    }

    /// Snapshot the collected attribution into a [`Profile`], resolving
    /// endpoint ids to names with `name_of`. Entries with a zero count
    /// (warm-up keys the measured wave never touched) are skipped;
    /// ordering is by `(endpoint, method name)` so the snapshot is
    /// stable across processes (raw `Sym` ids are intern-order).
    pub fn snapshot(&self, name_of: impl Fn(u64) -> String) -> Profile {
        let mut entries: Vec<ProfileEntry> = self
            .stats
            .iter()
            .filter(|(_, s)| s.count > 0)
            .map(|(&(endpoint, method), &stat)| ProfileEntry {
                endpoint,
                endpoint_name: name_of(endpoint),
                method: method.as_str().to_owned(),
                stat,
            })
            .collect();
        entries.sort_by(|a, b| (a.endpoint, &a.method).cmp(&(b.endpoint, &b.method)));
        Profile { entries }
    }
}

/// One row of a [`Profile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Kernel endpoint id.
    pub endpoint: u64,
    /// The endpoint's human-readable name.
    pub endpoint_name: String,
    /// Method name (or `reply`).
    pub method: String,
    /// Accumulated cost.
    pub stat: MethodStat,
}

/// A snapshot of the profiler: per-`(endpoint, method)` rows, sorted by
/// `(endpoint, method name)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// The attribution rows.
    pub entries: Vec<ProfileEntry>,
}

/// One row of the aggregated hot-method table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotMethod {
    /// Method name.
    pub method: String,
    /// Deliveries across all endpoints.
    pub count: u64,
    /// Summed sim-time, ns.
    pub sim_ns: u64,
    /// Summed allocations.
    pub allocs: u64,
    /// Summed allocated bytes.
    pub alloc_bytes: u64,
    /// Endpoints that handled this method.
    pub endpoints: u64,
}

impl Profile {
    /// Total deliveries attributed.
    pub fn total_count(&self) -> u64 {
        self.entries.iter().map(|e| e.stat.count).sum()
    }

    /// The top-`n` methods by summed sim-time, aggregated across
    /// endpoints. Ties break by method name, so the table is
    /// deterministic.
    pub fn hot_methods(&self, n: usize) -> Vec<HotMethod> {
        let mut agg: BTreeMap<&str, HotMethod> = BTreeMap::new();
        for e in &self.entries {
            let row = agg.entry(&e.method).or_insert_with(|| HotMethod {
                method: e.method.clone(),
                count: 0,
                sim_ns: 0,
                allocs: 0,
                alloc_bytes: 0,
                endpoints: 0,
            });
            row.count += e.stat.count;
            row.sim_ns += e.stat.sim_ns;
            row.allocs += e.stat.allocs;
            row.alloc_bytes += e.stat.alloc_bytes;
            row.endpoints += 1;
        }
        let mut rows: Vec<HotMethod> = agg.into_values().collect();
        rows.sort_by(|a, b| b.sim_ns.cmp(&a.sim_ns).then(a.method.cmp(&b.method)));
        rows.truncate(n);
        rows
    }

    /// The profile as JSON. Only the deterministic fields (`count`,
    /// `sim_ns`) are exported unless `include_costs` is set; wall-time
    /// and allocation deltas vary run-to-run / thread-to-thread and
    /// would break byte-identical golden reports.
    pub fn to_json_value(&self, include_costs: bool) -> Value {
        Value::Array(
            self.entries
                .iter()
                .map(|e| {
                    let mut fields = vec![
                        ("endpoint".to_string(), Value::U64(e.endpoint)),
                        ("name".to_string(), Value::Str(e.endpoint_name.clone())),
                        ("method".to_string(), Value::Str(e.method.clone())),
                        ("count".to_string(), Value::U64(e.stat.count)),
                        ("sim_ns".to_string(), Value::U64(e.stat.sim_ns)),
                    ];
                    if include_costs {
                        fields.push(("wall_ns".to_string(), Value::U64(e.stat.wall_ns)));
                        fields.push(("allocs".to_string(), Value::U64(e.stat.allocs)));
                        fields.push(("alloc_bytes".to_string(), Value::U64(e.stat.alloc_bytes)));
                    }
                    Value::Object(fields)
                })
                .collect(),
        )
    }
}

/// One label of the critical-path-weighted profile: `(label, hops,
/// summed critical-path ns)`.
pub type PathWeight = (String, u64, u64);

/// Aggregate the per-request critical paths ([`request_path`]) across
/// every complete trace in `events`, summing hop counts and time per
/// label. This weights each message kind by the time it actually spent
/// on requests' critical paths — the number to attack first when E17/E18
/// hunt latency — and is deterministic because it is derived purely from
/// span events.
pub fn critical_path_profile(events: &[SpanEvent]) -> Vec<PathWeight> {
    let mut agg: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for s in summarize(events) {
        if s.begin_at.is_none() || s.end_at.is_none() {
            continue;
        }
        for (label, hops, time_ns) in request_path(&s).by_label {
            let e = agg.entry(label).or_insert((0, 0));
            e.0 += hops;
            e.1 += time_ns;
        }
    }
    let mut rows: Vec<PathWeight> = agg
        .into_iter()
        .map(|(label, (hops, time_ns))| (label, hops, time_ns))
        .collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_core::symbol;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = KernelProfiler::disabled();
        p.record(1, symbol::PING, 10, 10, 1, 64);
        assert!(p.snapshot(|e| format!("ep{e}")).entries.is_empty());
    }

    #[test]
    fn records_aggregate_per_endpoint_method() {
        let mut p = KernelProfiler::enabled();
        p.record(1, symbol::PING, 10, 5, 1, 64);
        p.record(1, symbol::PING, 20, 5, 0, 0);
        p.record(2, symbol::GET_BINDING, 7, 1, 2, 128);
        let prof = p.snapshot(|e| format!("ep{e}"));
        assert_eq!(prof.entries.len(), 2);
        let ping = &prof.entries[0];
        assert_eq!((ping.endpoint, ping.method.as_str()), (1, "Ping"));
        assert_eq!(ping.stat.count, 2);
        assert_eq!(ping.stat.sim_ns, 30);
        assert_eq!(prof.total_count(), 3);
    }

    #[test]
    fn reset_values_keeps_keys_and_zeroes_stats() {
        let mut p = KernelProfiler::enabled();
        p.record(1, symbol::PING, 10, 0, 0, 0);
        p.reset_values();
        // Zero-count warm-up keys are skipped by the snapshot…
        assert!(p.snapshot(|_| String::new()).entries.is_empty());
        // …but re-recording refills the existing node.
        p.record(1, symbol::PING, 3, 0, 0, 0);
        let prof = p.snapshot(|_| String::new());
        assert_eq!(prof.entries[0].stat.count, 1);
        assert_eq!(prof.entries[0].stat.sim_ns, 3);
    }

    #[test]
    fn hot_methods_sort_by_sim_time() {
        let mut p = KernelProfiler::enabled();
        p.record(1, symbol::PING, 5, 0, 0, 0);
        p.record(2, symbol::PING, 5, 0, 0, 0);
        p.record(3, symbol::GET_BINDING, 100, 0, 0, 0);
        let prof = p.snapshot(|e| format!("ep{e}"));
        let hot = prof.hot_methods(10);
        assert_eq!(hot[0].method, "GetBinding");
        assert_eq!(hot[1].method, "Ping");
        assert_eq!(hot[1].count, 2);
        assert_eq!(hot[1].endpoints, 2);
        assert_eq!(prof.hot_methods(1).len(), 1);
    }

    #[test]
    fn json_export_hides_costs_by_default() {
        let mut p = KernelProfiler::enabled();
        p.record(1, symbol::PING, 5, 99, 3, 333);
        let prof = p.snapshot(|e| format!("ep{e}"));
        let lean = serde::json::to_string(&prof.to_json_value(false));
        assert!(!lean.contains("wall_ns"), "{lean}");
        assert!(!lean.contains("allocs"), "{lean}");
        let full = serde::json::to_string(&prof.to_json_value(true));
        assert!(full.contains("\"wall_ns\":99"), "{full}");
        assert!(full.contains("\"alloc_bytes\":333"), "{full}");
    }
}
