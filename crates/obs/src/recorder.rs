//! The always-on flight recorder: a bounded, allocation-free ring of
//! recent kernel events.
//!
//! Traces and metrics answer "what happened over the run"; the flight
//! recorder answers "what happened *just before it went wrong*". The
//! kernel records every delivery, dead letter, fault verdict, timeout
//! sweep, and HA verdict into a fixed-capacity ring that overwrites its
//! oldest entry once full — so when a chaos invariant trips, a deadline
//! sweep fires, or a run panics, the dump carries the last-N-events
//! context of the failure without anyone having enabled anything.
//!
//! Cost discipline: a [`FlightEvent`] is a small `Copy` struct whose
//! label is a pre-interned [`Sym`], and the ring's backing storage is
//! allocated once at construction. Recording an event after the ring has
//! warmed up performs **zero** heap allocations, which is what lets the
//! recorder stay always-on under the bench allocation gates.

use legion_core::symbol::Sym;
use legion_core::time::SimTime;
use serde::Value;
use std::fmt;

/// Default ring capacity: enough context to see the few round-trips
/// preceding a failure, small enough to be free to keep around.
pub const DEFAULT_CAPACITY: usize = 256;

/// What kind of kernel event a [`FlightEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlightKind {
    /// A message was delivered to a live endpoint.
    Deliver,
    /// A delivery found its endpoint dead on arrival.
    DeadLetter,
    /// A send was refused detectably (dead/unknown endpoint).
    Refuse,
    /// A message was silently dropped by the fault plan.
    Drop,
    /// A duplicate delivery was suppressed by the at-most-once window.
    Dedup,
    /// The fault plan duplicated a message.
    Duplicate,
    /// The fault plan delayed a message.
    Delay,
    /// A dispatch deadline sweep expired a pending continuation.
    Timeout,
    /// A high-availability verdict (suspect, host-dead, recovery, …).
    HaVerdict,
    /// A free-form endpoint annotation.
    Note,
    /// A call refused admission by an overloaded endpoint (load shed).
    Shed,
}

impl FlightKind {
    /// Stable lower-case label used in dumps and JSON.
    pub fn label(self) -> &'static str {
        match self {
            FlightKind::Deliver => "deliver",
            FlightKind::DeadLetter => "dead_letter",
            FlightKind::Refuse => "refuse",
            FlightKind::Drop => "drop",
            FlightKind::Dedup => "dedup",
            FlightKind::Duplicate => "duplicate",
            FlightKind::Delay => "delay",
            FlightKind::Timeout => "timeout",
            FlightKind::HaVerdict => "ha_verdict",
            FlightKind::Note => "note",
            FlightKind::Shed => "shed",
        }
    }
}

impl fmt::Display for FlightKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded kernel event. `Copy`, fixed-size, no owned strings: the
/// `label` is a pre-interned symbol (message kind, counter name, HA
/// verdict) and `detail` is a kind-specific number (call id, extra
/// nanoseconds, silence duration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Virtual time the event happened.
    pub at: SimTime,
    /// What happened.
    pub kind: FlightKind,
    /// The endpoint it happened at (receiver for deliveries, sender for
    /// refusals/drops).
    pub endpoint: u64,
    /// Pre-interned label: the message's method symbol, the counter
    /// name, or the HA verdict.
    pub label: Sym,
    /// Kind-specific detail (call id, extra delay in ns, silence ns, …).
    pub detail: u64,
    /// Journal sequence number of the event, when the kernel journal is
    /// recording or verifying (0 when journaling is off) — the handle
    /// that makes a dumped event directly replayable.
    pub seq: u64,
}

impl FlightEvent {
    /// The event as a JSON value (dump/export shape).
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("at".to_string(), Value::U64(self.at.as_nanos())),
            ("kind".to_string(), Value::Str(self.kind.label().into())),
            ("endpoint".to_string(), Value::U64(self.endpoint)),
            ("label".to_string(), Value::Str(self.label.as_str().into())),
            ("detail".to_string(), Value::U64(self.detail)),
            ("seq".to_string(), Value::U64(self.seq)),
        ])
    }
}

impl fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}ns] {:<11} ep{:<4} {} ({})",
            self.at.as_nanos(),
            self.kind.label(),
            self.endpoint,
            self.label.as_str(),
            self.detail
        )?;
        if self.seq != 0 {
            write!(f, " seq={}", self.seq)?;
        }
        Ok(())
    }
}

/// The bounded ring. Pushes until full, then overwrites the oldest
/// entry; [`FlightRecorder::iter`] always yields the surviving events in
/// chronological (recording) order.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<FlightEvent>,
    /// Requested capacity — `buf.capacity()` may round up, and the ring
    /// arithmetic needs the exact modulus.
    cap: usize,
    /// Index the next event is written at once the ring is full.
    next: usize,
    /// Events ever recorded (including overwritten ones).
    total: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` events (min 1). The ring's
    /// storage is fully allocated here, up front.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        FlightRecorder {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            total: 0,
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Nothing recorded yet?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events ever recorded, overwritten ones included.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events lost to overwriting.
    pub fn overwritten(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Record an event. Allocation-free: either appends into storage
    /// reserved at construction or overwrites the oldest entry in place.
    #[inline]
    pub fn record(&mut self, ev: FlightEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
            self.next = self.buf.len() % self.cap;
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
        }
        self.total += 1;
    }

    /// Forget everything, keeping the allocated storage.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.total = 0;
    }

    /// Surviving events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &FlightEvent> {
        let split = if self.buf.len() < self.cap {
            0
        } else {
            self.next
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    /// The newest `n` surviving events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<FlightEvent> {
        let skip = self.buf.len().saturating_sub(n);
        self.iter().skip(skip).copied().collect()
    }

    /// The tail as a JSON value: `{total, overwritten, tail: [...]}`.
    pub fn tail_json(&self, n: usize) -> Value {
        Value::Object(vec![
            ("total".to_string(), Value::U64(self.total)),
            ("overwritten".to_string(), Value::U64(self.overwritten())),
            (
                "tail".to_string(),
                Value::Array(self.tail(n).iter().map(|e| e.to_json_value()).collect()),
            ),
        ])
    }

    /// A human-readable dump of the newest `n` events, for stderr
    /// post-mortems. `reason` says why the dump fired.
    pub fn dump(&self, reason: &str, n: usize) -> String {
        let tail = self.tail(n);
        let mut out = format!(
            "=== flight recorder: {reason} (showing {} of {} recorded) ===\n",
            tail.len(),
            self.total
        );
        for ev in &tail {
            out.push_str(&format!("  {ev}\n"));
        }
        out.push_str("=== end flight recorder ===");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legion_core::symbol;

    fn ev(i: u64) -> FlightEvent {
        FlightEvent {
            at: SimTime(i * 10),
            kind: FlightKind::Deliver,
            endpoint: i,
            label: symbol::PING,
            detail: i,
            seq: 0,
        }
    }

    #[test]
    fn below_capacity_keeps_everything_in_order() {
        let mut r = FlightRecorder::new(8);
        for i in 0..5 {
            r.record(ev(i));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.total(), 5);
        assert_eq!(r.overwritten(), 0);
        let got: Vec<u64> = r.iter().map(|e| e.detail).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wrap_around_overwrites_oldest_first() {
        let mut r = FlightRecorder::new(4);
        for i in 0..10 {
            r.record(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total(), 10);
        assert_eq!(r.overwritten(), 6);
        // Events 0..=5 were overwritten; 6..=9 survive, oldest first.
        let got: Vec<u64> = r.iter().map(|e| e.detail).collect();
        assert_eq!(got, vec![6, 7, 8, 9]);
        // The tail trims from the old end.
        let tail: Vec<u64> = r.tail(2).iter().map(|e| e.detail).collect();
        assert_eq!(tail, vec![8, 9]);
        // Asking for more than is held returns everything.
        assert_eq!(r.tail(100).len(), 4);
    }

    #[test]
    fn exact_fill_then_one_more() {
        let mut r = FlightRecorder::new(3);
        for i in 0..3 {
            r.record(ev(i));
        }
        assert_eq!(
            r.iter().map(|e| e.detail).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        r.record(ev(3));
        assert_eq!(
            r.iter().map(|e| e.detail).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut r = FlightRecorder::new(4);
        for i in 0..6 {
            r.record(ev(i));
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.total(), 0);
        r.record(ev(42));
        assert_eq!(r.iter().map(|e| e.detail).collect::<Vec<_>>(), vec![42]);
    }

    #[test]
    fn dump_and_json_render() {
        let mut r = FlightRecorder::new(4);
        for i in 0..6 {
            r.record(ev(i));
        }
        let text = r.dump("test", 3);
        assert!(text.contains("flight recorder: test"));
        assert!(text.contains("deliver"));
        let json = serde::json::to_string(&r.tail_json(3));
        assert!(json.contains("\"total\":6"), "{json}");
        assert!(json.contains("\"kind\":\"deliver\""), "{json}");
    }
}
