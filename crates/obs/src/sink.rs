//! The bounded trace sink and its deterministic id allocators.
//!
//! The sink is a ring buffer: once `capacity` events are held, recording
//! another evicts the oldest and bumps `dropped`. Id allocation is a pair
//! of plain counters, so a run's ids depend only on the order of
//! recording — which, under the deterministic kernel, depends only on
//! the seed. A disabled sink records nothing and allocates nothing,
//! keeping untraced runs bit-identical to pre-tracing behaviour.

use crate::span::{SpanEvent, SpanEventKind};
use legion_core::time::SimTime;
use legion_core::trace::{SpanId, TraceContext, TraceId};
use std::collections::VecDeque;

/// A bounded, deterministic recorder of [`SpanEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    events: VecDeque<SpanEvent>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
    next_trace: u64,
    next_span: u64,
}

impl TraceSink {
    /// A disabled sink (records nothing).
    pub fn disabled() -> Self {
        TraceSink::default()
    }

    /// An enabled sink holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceSink {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            enabled: true,
            dropped: 0,
            next_trace: 0,
            next_span: 0,
        }
    }

    /// Is the sink recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Allocate a fresh trace id (deterministic counter).
    pub fn next_trace(&mut self) -> TraceId {
        self.next_trace += 1;
        TraceId(self.next_trace)
    }

    /// Allocate a fresh span id (deterministic counter).
    pub fn next_span(&mut self) -> SpanId {
        self.next_span += 1;
        SpanId(self.next_span)
    }

    /// Open a root span: allocates trace + span ids and records `Begin`.
    /// Returns [`TraceContext::NONE`] when the sink is disabled.
    pub fn begin(&mut self, at: SimTime, endpoint: u64, label: &str) -> TraceContext {
        if !self.enabled {
            return TraceContext::NONE;
        }
        let tc = TraceContext::new(self.next_trace(), self.next_span());
        self.record(SpanEvent {
            trace: tc.trace,
            span: tc.span,
            parent: SpanId::NONE,
            kind: SpanEventKind::Begin,
            at,
            endpoint,
            label: label.to_owned(),
        });
        tc
    }

    /// Record one event (no-op when disabled; evicts the oldest event
    /// when full).
    pub fn record(&mut self, event: SpanEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterate held events in recording order.
    pub fn iter(&self) -> impl Iterator<Item = &SpanEvent> {
        self.events.iter()
    }

    /// Take all held events, leaving the sink enabled and empty.
    pub fn drain(&mut self) -> Vec<SpanEvent> {
        self.events.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: u64, span: u64) -> SpanEvent {
        SpanEvent {
            trace: TraceId(trace),
            span: SpanId(span),
            parent: SpanId::NONE,
            kind: SpanEventKind::Note,
            at: SimTime(1),
            endpoint: 0,
            label: String::new(),
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut s = TraceSink::disabled();
        assert!(!s.is_enabled());
        s.record(ev(1, 1));
        assert!(s.is_empty());
        assert_eq!(s.begin(SimTime(0), 0, "op"), TraceContext::NONE);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut s = TraceSink::with_capacity(2);
        s.record(ev(1, 1));
        s.record(ev(1, 2));
        s.record(ev(1, 3));
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 1);
        let spans: Vec<u64> = s.iter().map(|e| e.span.0).collect();
        assert_eq!(spans, vec![2, 3]);
    }

    #[test]
    fn ids_are_sequential_and_nonzero() {
        let mut s = TraceSink::with_capacity(16);
        assert_eq!(s.next_trace(), TraceId(1));
        assert_eq!(s.next_trace(), TraceId(2));
        assert_eq!(s.next_span(), SpanId(1));
        let tc = s.begin(SimTime(5), 9, "op");
        assert!(tc.is_active());
        assert_eq!(tc.trace, TraceId(3));
        assert_eq!(tc.span, SpanId(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn drain_empties_but_keeps_recording() {
        let mut s = TraceSink::with_capacity(8);
        s.record(ev(1, 1));
        let drained = s.drain();
        assert_eq!(drained.len(), 1);
        assert!(s.is_empty());
        s.record(ev(1, 2));
        assert_eq!(s.len(), 1);
    }
}
