//! SLO tracking: windowed p50/p99 per endpoint against configured
//! objectives, with error budgets and burn-rate events.
//!
//! The ROADMAP E18 plan (load-driven class cloning) needs a *signal*:
//! "this endpoint is burning its latency budget faster than it can
//! afford". This module turns the kernel's per-endpoint delivery
//! latencies, bucketed into fixed windows of virtual time, into exactly
//! that: each window gets an **exact** nearest-rank p50/p99 verdict
//! against the endpoint's objective; the fraction of violating windows
//! is charged against the **error budget**; and whenever the cumulative
//! **burn rate** (budget consumed ÷ budget that sustainable consumption
//! would have used by now) crosses the configured threshold on a
//! violating window, a [`BurnEvent`] fires.
//!
//! Quantiles are exact (sorted samples, nearest-rank), not the ~2×
//! log-bucket approximation [`Histogram`](struct@crate::analysis) users
//! get elsewhere — objectives are contracts, and a contract checked
//! against an approximation is no contract. Everything here is a pure
//! function of the simulation's deterministic latencies, so SLO verdicts
//! golden-test cleanly.

use serde::Value;
use std::collections::BTreeMap;

/// Latency objectives for one endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloObjective {
    /// Window-median objective, ns.
    pub p50_ns: u64,
    /// Window-tail objective, ns.
    pub p99_ns: u64,
    /// Fraction of windows allowed to violate (0, 1].
    pub error_budget: f64,
    /// Burn-rate multiple that fires a [`BurnEvent`] (≥ 1.0 means
    /// "consuming budget faster than sustainable").
    pub burn_threshold: f64,
}

impl Default for SloObjective {
    fn default() -> Self {
        SloObjective {
            p50_ns: 2_000_000,
            p99_ns: 50_000_000,
            error_budget: 0.1,
            burn_threshold: 2.0,
        }
    }
}

/// Tracker configuration: the window width plus a default objective and
/// per-endpoint overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Window width in virtual ns.
    pub window_ns: u64,
    /// Objective applied to endpoints without an override.
    pub objective: SloObjective,
    /// Per-endpoint overrides.
    pub per_endpoint: BTreeMap<u64, SloObjective>,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            window_ns: 1_000_000,
            objective: SloObjective::default(),
            per_endpoint: BTreeMap::new(),
        }
    }
}

impl SloConfig {
    /// The objective for `endpoint` (override or default).
    pub fn objective_for(&self, endpoint: u64) -> SloObjective {
        self.per_endpoint
            .get(&endpoint)
            .copied()
            .unwrap_or(self.objective)
    }
}

/// Exact nearest-rank quantile of an ascending-sorted slice: the
/// smallest element such that at least `q` of the samples are ≤ it.
/// Returns 0 for an empty slice.
pub fn quantile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Collects per-endpoint latency samples into windows of virtual time.
/// Disabled (the kernel default) until given a config; recording while
/// disabled is a no-op.
///
/// Recording sits on the kernel's delivery path, so the tracker keeps a
/// single flat sample log — one amortized `Vec` push per delivery, no
/// per-window map nodes or per-window buffers. Bucketing into windows
/// happens once, at [`report`](SloTracker::report) time (the cold path).
#[derive(Debug, Clone, Default)]
pub struct SloTracker {
    cfg: Option<SloConfig>,
    /// `(endpoint, window start ns, latency ns)`, in arrival order.
    samples: Vec<(u64, u64, u64)>,
    /// Incremental burn monitor (opt-in; see [`SloTracker::new_online`]).
    online: Option<OnlineMonitor>,
}

/// Incremental per-endpoint window state for the online burn monitor.
///
/// The batch [`report`](SloTracker::report) evaluates windows at the end
/// of a run — too late for a control loop that must react *during* the
/// run. The online monitor closes each endpoint's window as soon as a
/// sample lands in a later one, evaluates it against the objective with
/// the same exact nearest-rank quantiles and cumulative burn arithmetic
/// as the batch path, and queues fired [`BurnEvent`]s for a consumer
/// (the auto-scaling policy) to drain. Storage is bounded by one open
/// window's samples per endpoint.
///
/// One deliberate divergence from the batch report: the kernel records a
/// delivery's SLO sample at *send* time keyed by its future arrival, so
/// per-endpoint window starts are not strictly monotone. The batch sort
/// puts late samples in their true window; the online monitor folds a
/// sample for an already-closed window into the open one (a window, once
/// judged, stays judged). The monitor is a control signal — the batch
/// report remains the contract.
#[derive(Debug, Clone, Default)]
struct OnlineMonitor {
    per_endpoint: BTreeMap<u64, OnlineEndpoint>,
    fired: Vec<(u64, BurnEvent)>,
}

#[derive(Debug, Clone, Default)]
struct OnlineEndpoint {
    window_start: u64,
    /// Samples of the open window, unsorted (sorted once at close).
    pending: Vec<u64>,
    windows_seen: u64,
    violating: u64,
}

impl OnlineMonitor {
    fn observe(&mut self, cfg: &SloConfig, endpoint: u64, start: u64, latency_ns: u64) {
        let state = self.per_endpoint.entry(endpoint).or_default();
        if start > state.window_start && !state.pending.is_empty() {
            let objective = cfg.objective_for(endpoint);
            state.pending.sort_unstable();
            let p50 = quantile_sorted(&state.pending, 0.50);
            let p99 = quantile_sorted(&state.pending, 0.99);
            let ok = p50 <= objective.p50_ns && p99 <= objective.p99_ns;
            let closed_start = state.window_start;
            state.windows_seen += 1;
            if !ok {
                state.violating += 1;
                if objective.error_budget > 0.0 {
                    let burn = (state.violating as f64 / state.windows_seen as f64)
                        / objective.error_budget;
                    if burn >= objective.burn_threshold {
                        self.fired.push((
                            endpoint,
                            BurnEvent {
                                window_start: closed_start,
                                burn_rate: burn,
                            },
                        ));
                    }
                }
            }
            state.pending.clear();
        }
        state.window_start = state.window_start.max(start);
        state.pending.push(latency_ns);
    }
}

impl SloTracker {
    /// The disabled tracker.
    pub fn disabled() -> Self {
        SloTracker::default()
    }

    /// A tracker with objectives configured (window width is forced to
    /// at least 1 ns).
    pub fn new(mut cfg: SloConfig) -> Self {
        cfg.window_ns = cfg.window_ns.max(1);
        SloTracker {
            cfg: Some(cfg),
            samples: Vec::with_capacity(1024),
            online: None,
        }
    }

    /// A tracker that additionally evaluates windows *incrementally* and
    /// queues fired [`BurnEvent`]s for [`drain_burn`](Self::drain_burn)
    /// — the in-run signal an auto-scaling control loop consumes.
    pub fn new_online(cfg: SloConfig) -> Self {
        let mut t = Self::new(cfg);
        t.online = Some(OnlineMonitor::default());
        t
    }

    /// Is the incremental burn monitor active?
    pub fn online_enabled(&self) -> bool {
        self.online.is_some()
    }

    /// Take the burn events the online monitor has fired since the last
    /// drain, as `(endpoint, event)` in firing order. Empty without
    /// [`new_online`](Self::new_online).
    pub fn drain_burn(&mut self) -> Vec<(u64, BurnEvent)> {
        match &mut self.online {
            Some(m) => std::mem::take(&mut m.fired),
            None => Vec::new(),
        }
    }

    /// Is the tracker collecting?
    pub fn is_enabled(&self) -> bool {
        self.cfg.is_some()
    }

    /// The active configuration, if any.
    pub fn config(&self) -> Option<&SloConfig> {
        self.cfg.as_ref()
    }

    /// Record a delivery latency observed at virtual time `at_ns` for
    /// `endpoint`.
    #[inline]
    pub fn record(&mut self, at_ns: u64, endpoint: u64, latency_ns: u64) {
        let Some(cfg) = &self.cfg else {
            return;
        };
        let start = (at_ns / cfg.window_ns) * cfg.window_ns;
        self.samples.push((endpoint, start, latency_ns));
        if let Some(online) = &mut self.online {
            online.observe(cfg, endpoint, start, latency_ns);
        }
    }

    /// Drop collected samples and online-monitor state, keeping the
    /// configuration (and the monitor, if one was enabled).
    pub fn clear(&mut self) {
        self.samples.clear();
        if let Some(online) = &mut self.online {
            *online = OnlineMonitor::default();
        }
    }

    /// Evaluate every endpoint's windows against its objective,
    /// resolving endpoint ids to names with `name_of`. Returns `None`
    /// when the tracker is disabled.
    pub fn report(&self, name_of: impl Fn(u64) -> String) -> Option<SloReport> {
        let cfg = self.cfg.as_ref()?;
        // Bucket the flat log: one lexicographic sort groups samples by
        // (endpoint, window start) and leaves each group's latencies
        // ascending, ready for exact nearest-rank quantiles.
        let mut log = self.samples.clone();
        log.sort_unstable();
        let mut endpoints: Vec<EndpointSlo> = Vec::new();
        let mut current: Option<EndpointSlo> = None;
        let mut i = 0;
        while i < log.len() {
            let (endpoint, start, _) = log[i];
            let mut j = i;
            while j < log.len() && log[j].0 == endpoint && log[j].1 == start {
                j += 1;
            }
            let sorted: Vec<u64> = log[i..j].iter().map(|&(_, _, lat)| lat).collect();
            i = j;
            if current.as_ref().map(|c| c.endpoint) != Some(endpoint) {
                if let Some(done) = current.take() {
                    endpoints.push(finish_endpoint(done));
                }
                current = Some(EndpointSlo {
                    endpoint,
                    name: name_of(endpoint),
                    objective: cfg.objective_for(endpoint),
                    windows: Vec::new(),
                    violating: 0,
                    budget_used: 0.0,
                    ok: true,
                    burn_events: Vec::new(),
                });
            }
            let slo = current.as_mut().expect("just initialized");
            let p50 = quantile_sorted(&sorted, 0.50);
            let p99 = quantile_sorted(&sorted, 0.99);
            let ok = p50 <= slo.objective.p50_ns && p99 <= slo.objective.p99_ns;
            if !ok {
                slo.violating += 1;
            }
            slo.windows.push(WindowVerdict {
                start,
                count: sorted.len() as u64,
                p50_ns: p50,
                p99_ns: p99,
                ok,
            });
            // Cumulative burn rate after this window: the fraction of
            // windows so far that violated, as a multiple of the
            // sustainable rate (= the error budget itself).
            if !ok && slo.objective.error_budget > 0.0 {
                let seen = slo.windows.len() as f64;
                let burn = (slo.violating as f64 / seen) / slo.objective.error_budget;
                if burn >= slo.objective.burn_threshold {
                    slo.burn_events.push(BurnEvent {
                        window_start: start,
                        burn_rate: burn,
                    });
                }
            }
        }
        if let Some(done) = current.take() {
            endpoints.push(finish_endpoint(done));
        }
        Some(SloReport {
            window_ns: cfg.window_ns,
            endpoints,
        })
    }
}

fn finish_endpoint(mut slo: EndpointSlo) -> EndpointSlo {
    let windows = slo.windows.len() as f64;
    slo.budget_used = if windows > 0.0 && slo.objective.error_budget > 0.0 {
        (slo.violating as f64 / windows) / slo.objective.error_budget
    } else {
        0.0
    };
    slo.ok = slo.budget_used <= 1.0;
    slo
}

/// One window's exact quantiles and verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowVerdict {
    /// Window start, virtual ns.
    pub start: u64,
    /// Samples in the window.
    pub count: u64,
    /// Exact nearest-rank median.
    pub p50_ns: u64,
    /// Exact nearest-rank 99th percentile.
    pub p99_ns: u64,
    /// Did the window meet both objectives?
    pub ok: bool,
}

/// The burn-rate alarm: fired on a violating window once the cumulative
/// burn rate crosses the objective's threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnEvent {
    /// Start of the window that fired the alarm, virtual ns.
    pub window_start: u64,
    /// The cumulative burn rate at that point (1.0 = consuming the
    /// budget exactly as fast as sustainable).
    pub burn_rate: f64,
}

/// One endpoint's SLO evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointSlo {
    /// Kernel endpoint id.
    pub endpoint: u64,
    /// The endpoint's human-readable name.
    pub name: String,
    /// The objective it was judged against.
    pub objective: SloObjective,
    /// Per-window verdicts, in window order.
    pub windows: Vec<WindowVerdict>,
    /// Windows that violated.
    pub violating: u64,
    /// Violating fraction ÷ error budget (> 1.0 = budget blown).
    pub budget_used: f64,
    /// Did the endpoint stay within budget?
    pub ok: bool,
    /// Burn-rate alarms, in firing order.
    pub burn_events: Vec<BurnEvent>,
}

/// The full SLO evaluation: one entry per endpoint that received
/// traffic, in endpoint order.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Window width the tracker bucketed by.
    pub window_ns: u64,
    /// Per-endpoint verdicts.
    pub endpoints: Vec<EndpointSlo>,
}

impl SloReport {
    /// Did every endpoint stay within budget?
    pub fn all_ok(&self) -> bool {
        self.endpoints.iter().all(|e| e.ok)
    }

    /// Total burn-rate alarms fired.
    pub fn burn_event_count(&self) -> usize {
        self.endpoints.iter().map(|e| e.burn_events.len()).sum()
    }

    /// The report as JSON. Burn rates and budget fractions are rendered
    /// as millionths (integers) so the document stays byte-stable.
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("window_ns".to_string(), Value::U64(self.window_ns)),
            (
                "endpoints".to_string(),
                Value::Array(
                    self.endpoints
                        .iter()
                        .map(|e| {
                            Value::Object(vec![
                                ("endpoint".to_string(), Value::U64(e.endpoint)),
                                ("name".to_string(), Value::Str(e.name.clone())),
                                (
                                    "p50_objective_ns".to_string(),
                                    Value::U64(e.objective.p50_ns),
                                ),
                                (
                                    "p99_objective_ns".to_string(),
                                    Value::U64(e.objective.p99_ns),
                                ),
                                (
                                    "error_budget_ppm".to_string(),
                                    Value::U64(to_ppm(e.objective.error_budget)),
                                ),
                                ("windows".to_string(), Value::U64(e.windows.len() as u64)),
                                ("violating".to_string(), Value::U64(e.violating)),
                                (
                                    "budget_used_ppm".to_string(),
                                    Value::U64(to_ppm(e.budget_used)),
                                ),
                                ("ok".to_string(), Value::Bool(e.ok)),
                                (
                                    "burn_events".to_string(),
                                    Value::Array(
                                        e.burn_events
                                            .iter()
                                            .map(|b| {
                                                Value::Object(vec![
                                                    (
                                                        "window_start".to_string(),
                                                        Value::U64(b.window_start),
                                                    ),
                                                    (
                                                        "burn_rate_ppm".to_string(),
                                                        Value::U64(to_ppm(b.burn_rate)),
                                                    ),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A non-negative fraction as integer millionths, saturating (keeps the
/// JSON free of float formatting).
fn to_ppm(x: f64) -> u64 {
    if !x.is_finite() || x <= 0.0 {
        return 0;
    }
    (x * 1_000_000.0).round().min(u64::MAX as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window_ns: u64, p50: u64, p99: u64, budget: f64) -> SloConfig {
        SloConfig {
            window_ns,
            objective: SloObjective {
                p50_ns: p50,
                p99_ns: p99,
                error_budget: budget,
                burn_threshold: 2.0,
            },
            per_endpoint: BTreeMap::new(),
        }
    }

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        assert_eq!(quantile_sorted(&[], 0.5), 0);
        assert_eq!(quantile_sorted(&[7], 0.5), 7);
        assert_eq!(quantile_sorted(&[1, 2, 3, 4], 0.5), 2);
        assert_eq!(quantile_sorted(&[1, 2, 3, 4, 5], 0.5), 3);
        assert_eq!(quantile_sorted(&[1, 2, 3, 4, 5], 0.99), 5);
        assert_eq!(quantile_sorted(&[1, 2, 3, 4, 5], 0.0), 1);
        assert_eq!(quantile_sorted(&[1, 2, 3, 4, 5], 1.0), 5);
        // 100 samples: p99 is the 99th element (nearest rank).
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_sorted(&v, 0.99), 99);
        assert_eq!(quantile_sorted(&v, 0.50), 50);
    }

    #[test]
    fn disabled_tracker_reports_nothing() {
        let mut t = SloTracker::disabled();
        t.record(0, 1, 100);
        assert!(t.report(|_| String::new()).is_none());
    }

    #[test]
    fn windows_bucket_by_virtual_time() {
        let mut t = SloTracker::new(cfg(100, 50, 90, 0.5));
        // Window [0,100): meets both objectives.
        t.record(10, 1, 40);
        t.record(90, 1, 45);
        // Window [100,200): p50 blows the objective.
        t.record(150, 1, 80);
        t.record(199, 1, 90);
        let r = t.report(|e| format!("ep{e}")).unwrap();
        assert_eq!(r.endpoints.len(), 1);
        let e = &r.endpoints[0];
        assert_eq!(e.windows.len(), 2);
        assert!(e.windows[0].ok);
        assert_eq!(e.windows[0].p50_ns, 40);
        assert!(!e.windows[1].ok);
        assert_eq!(e.violating, 1);
        // 1 of 2 windows violating at budget 0.5 → budget exactly spent.
        assert!((e.budget_used - 1.0).abs() < 1e-9);
        assert!(e.ok);
    }

    #[test]
    fn burn_events_fire_past_threshold() {
        // Budget 0.25, threshold 2.0 → an alarm needs a violating
        // window while ≥ half of the windows so far violated.
        let mut t = SloTracker::new(SloConfig {
            window_ns: 100,
            objective: SloObjective {
                p50_ns: 10,
                p99_ns: 10,
                error_budget: 0.25,
                burn_threshold: 2.0,
            },
            per_endpoint: BTreeMap::new(),
        });
        t.record(10, 1, 100); // window 0: violates, burn 1/0.25 = 4 → fires
        t.record(110, 1, 5); // window 1: ok
        t.record(210, 1, 100); // window 2: violates, burn (2/3)/0.25 ≈ 2.7 → fires
        let r = t.report(|_| String::new()).unwrap();
        let e = &r.endpoints[0];
        assert_eq!(e.burn_events.len(), 2);
        assert_eq!(e.burn_events[0].window_start, 0);
        assert!(e.burn_events[0].burn_rate > 3.9);
        assert_eq!(e.burn_events[1].window_start, 200);
        assert!(!e.ok, "2/3 violating at budget 0.25 blows the budget");
        assert!(!r.all_ok());
        assert_eq!(r.burn_event_count(), 2);
    }

    #[test]
    fn per_endpoint_overrides_apply() {
        let mut c = cfg(100, 10, 10, 0.1);
        c.per_endpoint.insert(
            2,
            SloObjective {
                p50_ns: 1_000,
                p99_ns: 1_000,
                error_budget: 0.1,
                burn_threshold: 2.0,
            },
        );
        let mut t = SloTracker::new(c);
        t.record(10, 1, 500); // violates the default objective
        t.record(10, 2, 500); // within its override
        let r = t.report(|e| format!("ep{e}")).unwrap();
        assert!(!r.endpoints[0].ok);
        assert!(r.endpoints[1].ok);
    }

    #[test]
    fn online_monitor_matches_batch_burn_events() {
        // Monotone arrivals: the online monitor must fire the same burn
        // events as the batch report, one window late (a window closes
        // when the next one opens).
        let cfg = SloConfig {
            window_ns: 100,
            objective: SloObjective {
                p50_ns: 10,
                p99_ns: 10,
                error_budget: 0.25,
                burn_threshold: 2.0,
            },
            per_endpoint: BTreeMap::new(),
        };
        let mut t = SloTracker::new_online(cfg);
        t.record(10, 1, 100); // window 0: violates
        t.record(110, 1, 5); // window 1: ok (closes window 0)
        t.record(210, 1, 100); // window 2: violates (closes window 1)
        t.record(310, 1, 5); // closes window 2
        let online = t.drain_burn();
        let batch = t.report(|_| String::new()).unwrap().endpoints[0]
            .burn_events
            .clone();
        assert_eq!(online.len(), batch.len());
        for ((ep, o), b) in online.iter().zip(batch.iter()) {
            assert_eq!(*ep, 1);
            assert_eq!(o.window_start, b.window_start);
            assert!((o.burn_rate - b.burn_rate).abs() < 1e-9);
        }
        assert!(t.drain_burn().is_empty(), "drain empties the queue");
    }

    #[test]
    fn online_monitor_is_bounded_and_resettable() {
        let mut t = SloTracker::new_online(cfg(100, 1_000, 1_000, 0.5));
        for i in 0..10_000u64 {
            t.record(i * 10, 7, 5);
        }
        assert!(t.online_enabled());
        assert!(t.drain_burn().is_empty(), "healthy stream fires nothing");
        t.clear();
        assert!(t.report(|_| String::new()).unwrap().endpoints.is_empty());
    }

    #[test]
    fn plain_tracker_has_no_online_events() {
        let mut t = SloTracker::new(cfg(100, 10, 10, 0.1));
        t.record(10, 1, 500);
        t.record(110, 1, 500);
        assert!(!t.online_enabled());
        assert!(t.drain_burn().is_empty());
    }

    #[test]
    fn json_is_float_free() {
        let mut t = SloTracker::new(cfg(100, 10, 10, 0.3));
        t.record(10, 1, 500);
        let r = t.report(|_| "x".into()).unwrap();
        let json = serde::json::to_string(&r.to_json_value());
        assert!(json.contains("\"budget_used_ppm\":3333333"), "{json}");
        assert!(!json.contains('.'), "floats leaked into JSON: {json}");
    }
}
