//! The span-event schema.
//!
//! A trace is a flat, time-ordered list of [`SpanEvent`]s. A message hop
//! is one span: its `Send` event (at the sender, at send time) and its
//! `Deliver` event (at the receiver, at delivery time) share a span id,
//! so hop latency falls out of the event list without any state. Faulted
//! hops get a `Drop`/`Refuse`/`DeadLetter` event instead of a `Deliver`,
//! tagged with the fault verdict in `label`.

use legion_core::time::SimTime;
use legion_core::trace::{SpanId, TraceId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What happened at one point of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SpanEventKind {
    /// A root span opened (one per workload-level request).
    Begin,
    /// The request finished (successfully or not — see `label`).
    End,
    /// A message hop left its sender.
    Send,
    /// A message hop arrived at a live endpoint.
    Deliver,
    /// The fault plan silently dropped the hop.
    Drop,
    /// The send was detectably refused (dead/unknown endpoint, §4.1.4).
    Refuse,
    /// Delivery found the endpoint dead on arrival.
    DeadLetter,
    /// The fault plan duplicated the hop (a second copy was queued).
    Duplicate,
    /// The fault plan delayed the hop (spike multiplier / reorder jitter).
    Delay,
    /// The receiver's at-most-once window rejected a duplicate delivery.
    Dedup,
    /// A timer armed inside this trace fired.
    Timer,
    /// A protocol-level annotation (cache hit/miss, activation, …).
    Note,
}

impl fmt::Display for SpanEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpanEventKind::Begin => "begin",
            SpanEventKind::End => "end",
            SpanEventKind::Send => "send",
            SpanEventKind::Deliver => "deliver",
            SpanEventKind::Drop => "drop",
            SpanEventKind::Refuse => "refuse",
            SpanEventKind::DeadLetter => "dead_letter",
            SpanEventKind::Duplicate => "duplicate",
            SpanEventKind::Delay => "delay",
            SpanEventKind::Dedup => "dedup",
            SpanEventKind::Timer => "timer",
            SpanEventKind::Note => "note",
        };
        f.write_str(s)
    }
}

/// One recorded event. ~64 bytes; the sink stores these by value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// The request this event belongs to.
    pub trace: TraceId,
    /// The span this event describes.
    pub span: SpanId,
    /// The causal parent span (`SpanId::NONE` for roots).
    pub parent: SpanId,
    /// What happened.
    pub kind: SpanEventKind,
    /// When (virtual time).
    pub at: SimTime,
    /// The endpoint where the event was observed (`u64::MAX` when the
    /// event originated outside the kernel, e.g. a driver injection).
    pub endpoint: u64,
    /// Kind-specific detail: method name for hops, counter name for
    /// notes, outcome for `End`, timer tag for `Timer`.
    pub label: String,
}

impl SpanEvent {
    /// The sentinel endpoint for events originating outside the kernel.
    pub const EXTERNAL: u64 = u64::MAX;
}

impl fmt::Display for SpanEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}/{} (parent {}) {} @ep{} [{}]",
            self.kind, self.trace, self.span, self.parent, self.at, self.endpoint, self.label
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_render_distinctly() {
        let kinds = [
            SpanEventKind::Begin,
            SpanEventKind::End,
            SpanEventKind::Send,
            SpanEventKind::Deliver,
            SpanEventKind::Drop,
            SpanEventKind::Refuse,
            SpanEventKind::DeadLetter,
            SpanEventKind::Duplicate,
            SpanEventKind::Delay,
            SpanEventKind::Dedup,
            SpanEventKind::Timer,
            SpanEventKind::Note,
        ];
        let mut seen = std::collections::HashSet::new();
        for k in kinds {
            assert!(seen.insert(k.to_string()), "duplicate rendering for {k:?}");
        }
    }

    #[test]
    fn event_displays_all_parts() {
        let e = SpanEvent {
            trace: TraceId(1),
            span: SpanId(2),
            parent: SpanId::NONE,
            kind: SpanEventKind::Send,
            at: SimTime(10),
            endpoint: 3,
            label: "Ping".into(),
        };
        let s = e.to_string();
        assert!(s.contains("T1") && s.contains("S2") && s.contains("Ping"));
    }
}
