//! Property-based tests for the SLO tracker's windowed quantiles.
//!
//! Objectives are contracts, so the tracker's per-window p50/p99 must be
//! *exact* — not the ~2× log-bucket approximation the metrics histograms
//! use. The properties here check the tracker against an independent
//! brute-force reference: samples re-bucketed by hand, quantiles taken
//! by scanning for the smallest value covering the rank.

use legion_obs::slo::{quantile_sorted, SloConfig, SloObjective, SloTracker};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Brute-force nearest-rank quantile: the smallest sample `v` such that
/// at least `ceil(q * n)` samples are ≤ `v`. Written without sorting so
/// a shared bug in the sort-based implementation can't hide.
fn reference_quantile(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let need = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    let mut best: Option<u64> = None;
    for &candidate in samples {
        let covered = samples.iter().filter(|&&s| s <= candidate).count();
        if covered >= need && best.is_none_or(|b| candidate < b) {
            best = Some(candidate);
        }
    }
    best.expect("non-empty samples always yield a quantile")
}

fn arb_samples() -> impl Strategy<Value = Vec<(u64, u64)>> {
    // (arrival time, latency) pairs; times spread across several windows.
    proptest::collection::vec((0u64..10_000, 0u64..1_000_000), 1..200)
}

proptest! {
    /// The sorted nearest-rank quantile matches the brute-force scan for
    /// every probability, including the degenerate ends.
    #[test]
    fn quantile_sorted_matches_reference(
        mut samples in proptest::collection::vec(0u64..1_000_000, 0..200),
        q in 0.0f64..=1.0,
    ) {
        let reference = reference_quantile(&samples, q);
        samples.sort_unstable();
        prop_assert_eq!(quantile_sorted(&samples, q), reference);
    }

    /// The tracker's per-window p50/p99 equal the reference quantiles of
    /// exactly the samples that landed in that window, and every sample
    /// is accounted for in exactly one window.
    #[test]
    fn windowed_quantiles_match_reference(
        samples in arb_samples(),
        window_ns in 1u64..5_000,
    ) {
        let mut t = SloTracker::new(SloConfig {
            window_ns,
            objective: SloObjective::default(),
            per_endpoint: BTreeMap::new(),
        });
        let mut by_window: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for &(at, latency) in &samples {
            t.record(at, 1, latency);
            by_window.entry((at / window_ns) * window_ns).or_default().push(latency);
        }
        let report = t.report(|e| format!("ep{e}")).expect("tracker is enabled");
        prop_assert_eq!(report.endpoints.len(), 1);
        let ep = &report.endpoints[0];
        prop_assert_eq!(ep.windows.len(), by_window.len());
        let mut total = 0u64;
        for (verdict, (&start, expected)) in ep.windows.iter().zip(by_window.iter()) {
            prop_assert_eq!(verdict.start, start);
            prop_assert_eq!(verdict.count, expected.len() as u64);
            prop_assert_eq!(verdict.p50_ns, reference_quantile(expected, 0.50));
            prop_assert_eq!(verdict.p99_ns, reference_quantile(expected, 0.99));
            total += verdict.count;
        }
        prop_assert_eq!(total, samples.len() as u64);
    }

    /// Windows violate exactly when the reference quantiles exceed the
    /// objective, and the violating count + budget verdict follow.
    #[test]
    fn verdicts_follow_reference_quantiles(
        samples in arb_samples(),
        p50_obj in 0u64..1_000_000,
        p99_obj in 0u64..1_000_000,
    ) {
        let window_ns = 1_000;
        let mut t = SloTracker::new(SloConfig {
            window_ns,
            objective: SloObjective {
                p50_ns: p50_obj,
                p99_ns: p99_obj,
                ..SloObjective::default()
            },
            per_endpoint: BTreeMap::new(),
        });
        let mut by_window: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for &(at, latency) in &samples {
            t.record(at, 1, latency);
            by_window.entry((at / window_ns) * window_ns).or_default().push(latency);
        }
        let report = t.report(|_| String::new()).expect("tracker is enabled");
        let ep = &report.endpoints[0];
        let mut violating = 0u64;
        for (verdict, expected) in ep.windows.iter().zip(by_window.values()) {
            let expect_ok = reference_quantile(expected, 0.50) <= p50_obj
                && reference_quantile(expected, 0.99) <= p99_obj;
            prop_assert_eq!(verdict.ok, expect_ok);
            if !expect_ok {
                violating += 1;
            }
        }
        prop_assert_eq!(ep.violating, violating);
        let budget_used =
            (violating as f64 / ep.windows.len() as f64) / ep.objective.error_budget;
        prop_assert!((ep.budget_used - budget_used).abs() < 1e-12);
        prop_assert_eq!(ep.ok, budget_used <= 1.0);
    }
}
