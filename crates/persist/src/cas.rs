//! Content-addressed storage: SHA-256 chunk ids and blob stores.
//!
//! The journal/snapshot architecture (see `legion-journal`) follows the
//! AgentOS model: an authoritative append-only log plus *materialized*
//! state snapshots stored as content-addressed chunks. Naming a chunk by
//! the hash of its bytes makes deduplication structural — two snapshots
//! that share a section store it once — and makes integrity checking
//! free: a chunk that fails to hash to its own name is corrupt.
//!
//! * [`sha256`] — a local, dependency-free SHA-256 (FIPS 180-4);
//! * [`ChunkId`] — a 32-byte content hash naming a chunk;
//! * [`BlobStore`] — the store interface, with an in-memory
//!   ([`MemBlobStore`]) and a directory-backed ([`DirBlobStore`])
//!   implementation.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;

/// SHA-256 round constants (first 32 bits of the fractional parts of the
/// cube roots of the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values (first 32 bits of the fractional parts of the
/// square roots of the first 8 primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered toward the next 64-byte block.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and produce the digest.
    pub fn finish(mut self) -> [u8; 32] {
        let bit_len = self.total.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // `update` would count the length bytes into `total`; append the
        // final block by hand instead.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// SHA-256 of `data` in one call.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

/// The content address of a chunk: the SHA-256 of its bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(pub [u8; 32]);

impl ChunkId {
    /// The id of `bytes`.
    pub fn of(bytes: &[u8]) -> Self {
        ChunkId(sha256(bytes))
    }

    /// Lower-case hex rendering (64 chars).
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }

    /// Parse a 64-char hex string back into an id.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(ChunkId(out))
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl fmt::Debug for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChunkId({}..)", &self.to_hex()[..12])
    }
}

/// A content-addressed blob store: chunks keyed by their own hash.
pub trait BlobStore {
    /// Store `bytes`, returning its id and whether it was already present
    /// (`true` = deduplicated, no new bytes written).
    fn put(&mut self, bytes: &[u8]) -> (ChunkId, bool);

    /// Fetch a chunk by id.
    fn get(&self, id: &ChunkId) -> Option<Vec<u8>>;

    /// Is `id` present?
    fn contains(&self, id: &ChunkId) -> bool;

    /// Number of distinct chunks stored.
    fn len(&self) -> usize;

    /// Is the store empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of distinct chunk content (physical, post-dedup).
    fn stored_bytes(&self) -> u64;
}

/// An in-memory blob store (the default snapshot backend).
#[derive(Default, Debug, Clone)]
pub struct MemBlobStore {
    chunks: BTreeMap<ChunkId, Vec<u8>>,
    bytes: u64,
}

impl MemBlobStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BlobStore for MemBlobStore {
    fn put(&mut self, bytes: &[u8]) -> (ChunkId, bool) {
        let id = ChunkId::of(bytes);
        if self.chunks.contains_key(&id) {
            return (id, true);
        }
        self.bytes += bytes.len() as u64;
        self.chunks.insert(id, bytes.to_vec());
        (id, false)
    }

    fn get(&self, id: &ChunkId) -> Option<Vec<u8>> {
        self.chunks.get(id).cloned()
    }

    fn contains(&self, id: &ChunkId) -> bool {
        self.chunks.contains_key(id)
    }

    fn len(&self) -> usize {
        self.chunks.len()
    }

    fn stored_bytes(&self) -> u64 {
        self.bytes
    }
}

/// A directory-backed blob store: one file per chunk, named by its hex
/// id. Writes are idempotent; a chunk whose file already exists is never
/// rewritten.
#[derive(Debug)]
pub struct DirBlobStore {
    dir: PathBuf,
}

impl DirBlobStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DirBlobStore { dir })
    }

    fn path_of(&self, id: &ChunkId) -> PathBuf {
        self.dir.join(id.to_hex())
    }
}

impl BlobStore for DirBlobStore {
    fn put(&mut self, bytes: &[u8]) -> (ChunkId, bool) {
        let id = ChunkId::of(bytes);
        let path = self.path_of(&id);
        if path.exists() {
            return (id, true);
        }
        // Best-effort: a store on a failing disk degrades to "absent",
        // which `get` reports as None.
        let _ = std::fs::write(&path, bytes);
        (id, false)
    }

    fn get(&self, id: &ChunkId) -> Option<Vec<u8>> {
        let bytes = std::fs::read(self.path_of(id)).ok()?;
        // Verify content-address integrity on the way out.
        if ChunkId::of(&bytes) == *id {
            Some(bytes)
        } else {
            None
        }
    }

    fn contains(&self, id: &ChunkId) -> bool {
        self.path_of(id).exists()
    }

    fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|d| d.filter_map(|e| e.ok()).count())
            .unwrap_or(0)
    }

    fn stored_bytes(&self) -> u64 {
        std::fs::read_dir(&self.dir)
            .map(|d| {
                d.filter_map(|e| e.ok())
                    .filter_map(|e| e.metadata().ok())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        ChunkId::of(bytes).to_hex()
    }

    #[test]
    fn sha256_test_vectors() {
        // FIPS 180-4 / NIST examples.
        assert_eq!(
            hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // One million 'a's exercises multi-block + buffering paths.
        let mut h = Sha256::new();
        for _ in 0..10_000 {
            h.update(&[b'a'; 100]);
        }
        assert_eq!(
            ChunkId(h.finish()).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7) as u8).collect();
        for split in [0, 1, 63, 64, 65, 127, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), sha256(&data), "split {split}");
        }
    }

    #[test]
    fn hex_roundtrip() {
        let id = ChunkId::of(b"roundtrip");
        assert_eq!(ChunkId::from_hex(&id.to_hex()), Some(id));
        assert_eq!(ChunkId::from_hex("zz"), None);
        assert_eq!(ChunkId::from_hex(&"g".repeat(64)), None);
    }

    #[test]
    fn mem_store_dedups() {
        let mut store = MemBlobStore::new();
        let (a, dup_a) = store.put(b"chunk one");
        let (_b, dup_b) = store.put(b"chunk two");
        let (a2, dup_a2) = store.put(b"chunk one");
        assert!(!dup_a && !dup_b && dup_a2);
        assert_eq!(a, a2);
        assert_eq!(store.len(), 2);
        assert_eq!(store.stored_bytes(), 18);
        assert_eq!(store.get(&a).as_deref(), Some(&b"chunk one"[..]));
        assert!(!store.contains(&ChunkId::of(b"absent")));
    }

    #[test]
    fn dir_store_roundtrip_and_integrity() {
        let dir = std::env::temp_dir().join(format!("legion-cas-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DirBlobStore::open(&dir).unwrap();
        let (id, dup) = store.put(b"persisted chunk");
        assert!(!dup);
        let (_, dup2) = store.put(b"persisted chunk");
        assert!(dup2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(&id).as_deref(), Some(&b"persisted chunk"[..]));
        // Corrupt the file on disk: the store must refuse to return it.
        std::fs::write(dir.join(id.to_hex()), b"tampered").unwrap();
        assert_eq!(store.get(&id), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
