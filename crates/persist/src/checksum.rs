//! CRC-32 (IEEE 802.3) checksums for Object Persistent Representations.
//!
//! An OPR is "a sequential set of bytes" (§3.1.1) that may cross disks and
//! jurisdictions during migration (Fig. 11); the checksum lets a Magistrate
//! detect truncation or corruption before attempting activation.
//! Implemented locally (table-driven, reflected polynomial `0xEDB88320`)
//! to keep the dependency set to the approved list.

/// The reflected CRC-32 polynomial (IEEE).
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Compute the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming update: feed chunks with `state` starting at `0xFFFF_FFFF`
/// and finish by XOR-ing with `0xFFFF_FFFF`.
pub fn update(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes.
    pub fn write(&mut self, data: &[u8]) {
        self.state = update(self.state, data);
    }

    /// Finish and return the checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"hello legion world";
        let mut h = Crc32::new();
        h.write(&data[..5]);
        h.write(&data[5..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 1024];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let clean = crc32(&data);
        data[512] ^= 0x01;
        assert_ne!(crc32(&data), clean);
    }

    #[test]
    fn empty_hasher_is_zero() {
        assert_eq!(Crc32::new().finish(), 0);
    }
}
