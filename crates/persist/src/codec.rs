//! Binary wire/disk codec for Legion values.
//!
//! Object Persistent Representations are "a sequential set of bytes"
//! (§3.1.1); this module defines the byte format used for OPR payloads
//! and for any value that crosses a jurisdiction boundary. The format is
//! self-describing per field (tag byte + body), little-endian, with LEB128
//! varints for lengths.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use legion_core::address::{
    AddressKind, AddressSemantics, ObjectAddress, ObjectAddressElement, ADDRESS_INFO_BYTES,
};
use legion_core::binding::Binding;
use legion_core::loid::{ClassId, Loid, PUBLIC_KEY_BYTES};
use legion_core::time::{Expiry, SimTime};
use legion_core::value::LegionValue;
use std::fmt;

/// Codec failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of bytes mid-field.
    Truncated,
    /// Unknown tag byte for the expected kind.
    BadTag(u8),
    /// A length prefix exceeded the sanity limit.
    LengthTooLarge(u64),
    /// String bytes were not UTF-8.
    BadUtf8,
    /// A varint ran past its maximum width.
    BadVarint,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            CodecError::LengthTooLarge(n) => write!(f, "length {n} exceeds sanity limit"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string"),
            CodecError::BadVarint => write!(f, "varint too long"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Result alias for codec operations.
pub type CodecResult<T> = Result<T, CodecError>;

/// Sanity limit for length prefixes (16 MiB) — an OPR field larger than
/// this is corruption, not data.
pub const MAX_LEN: u64 = 16 * 1024 * 1024;

// ----- writer ------------------------------------------------------------

/// Append-only encoder over a `BytesMut`.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// A fresh writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Finish, returning the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Write a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Write a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Write an LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                break;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Write length-prefixed bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.buf.put_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Write a LOID (fixed width: 8 + 8 + key bytes).
    pub fn put_loid(&mut self, l: &Loid) {
        self.put_u64(l.class_id.0);
        self.put_u64(l.class_specific);
        self.buf.put_slice(&l.public_key);
    }

    /// Write an Object Address Element (tag + 256-bit info).
    pub fn put_element(&mut self, e: &ObjectAddressElement) {
        self.put_u32(e.kind.tag());
        self.buf.put_slice(&e.info);
    }

    /// Write address semantics.
    pub fn put_semantics(&mut self, s: &AddressSemantics) {
        match s {
            AddressSemantics::Single => self.put_u8(0),
            AddressSemantics::SendToAll => self.put_u8(1),
            AddressSemantics::PickRandom => self.put_u8(2),
            AddressSemantics::KOfN(k) => {
                self.put_u8(3);
                self.put_u32(*k);
            }
            AddressSemantics::FirstReachable => self.put_u8(4),
            AddressSemantics::User(tag) => {
                self.put_u8(5);
                self.put_u32(*tag);
            }
        }
    }

    /// Write a full Object Address.
    pub fn put_address(&mut self, a: &ObjectAddress) {
        self.put_varint(a.elements.len() as u64);
        for e in &a.elements {
            self.put_element(e);
        }
        self.put_semantics(&a.semantics);
    }

    /// Write an expiry.
    pub fn put_expiry(&mut self, e: &Expiry) {
        match e {
            Expiry::Never => self.put_u8(0),
            Expiry::At(t) => {
                self.put_u8(1);
                self.put_u64(t.as_nanos());
            }
        }
    }

    /// Write a binding triple.
    pub fn put_binding(&mut self, b: &Binding) {
        self.put_loid(&b.loid);
        self.put_address(&b.address);
        self.put_expiry(&b.expiry);
    }

    /// Write a dynamic value (tag + body).
    pub fn put_value(&mut self, v: &LegionValue) {
        match v {
            LegionValue::Void => self.put_u8(0),
            LegionValue::Bool(b) => {
                self.put_u8(1);
                self.put_u8(u8::from(*b));
            }
            LegionValue::Int(i) => {
                self.put_u8(2);
                self.put_u64(*i as u64);
            }
            LegionValue::Uint(u) => {
                self.put_u8(3);
                self.put_u64(*u);
            }
            LegionValue::Float(x) => {
                self.put_u8(4);
                self.put_u64(x.to_bits());
            }
            LegionValue::Str(s) => {
                self.put_u8(5);
                self.put_str(s);
            }
            LegionValue::Bytes(b) => {
                self.put_u8(6);
                self.put_bytes(b);
            }
            LegionValue::Loid(l) => {
                self.put_u8(7);
                self.put_loid(l);
            }
            LegionValue::Address(a) => {
                self.put_u8(8);
                self.put_address(a);
            }
            LegionValue::Binding(b) => {
                self.put_u8(9);
                self.put_binding(b);
            }
            LegionValue::List(items) => {
                self.put_u8(10);
                self.put_varint(items.len() as u64);
                for item in items {
                    self.put_value(item);
                }
            }
        }
    }
}

// ----- reader ------------------------------------------------------------

/// Decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Read from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Have all bytes been consumed?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.buf.len() < n {
            return Err(CodecError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u32.
    pub fn get_u32(&mut self) -> CodecResult<u32> {
        let mut b = self.take(4)?;
        Ok(b.get_u32_le())
    }

    /// Read a little-endian u64.
    pub fn get_u64(&mut self) -> CodecResult<u64> {
        let mut b = self.take(8)?;
        Ok(b.get_u64_le())
    }

    /// Read an LEB128 varint.
    pub fn get_varint(&mut self) -> CodecResult<u64> {
        let mut out: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.get_u8()?;
            out |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
        }
        Err(CodecError::BadVarint)
    }

    /// Read length-prefixed bytes.
    pub fn get_bytes(&mut self) -> CodecResult<Vec<u8>> {
        let len = self.get_varint()?;
        if len > MAX_LEN {
            return Err(CodecError::LengthTooLarge(len));
        }
        Ok(self.take(len as usize)?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> CodecResult<String> {
        String::from_utf8(self.get_bytes()?).map_err(|_| CodecError::BadUtf8)
    }

    /// Read a LOID.
    pub fn get_loid(&mut self) -> CodecResult<Loid> {
        let class_id = self.get_u64()?;
        let class_specific = self.get_u64()?;
        let key = self.take(PUBLIC_KEY_BYTES)?;
        let mut public_key = [0u8; PUBLIC_KEY_BYTES];
        public_key.copy_from_slice(key);
        Ok(Loid {
            class_id: ClassId(class_id),
            class_specific,
            public_key,
        })
    }

    /// Read an Object Address Element.
    pub fn get_element(&mut self) -> CodecResult<ObjectAddressElement> {
        let tag = self.get_u32()?;
        let info_bytes = self.take(ADDRESS_INFO_BYTES)?;
        let mut info = [0u8; ADDRESS_INFO_BYTES];
        info.copy_from_slice(info_bytes);
        Ok(ObjectAddressElement {
            kind: AddressKind::from_tag(tag),
            info,
        })
    }

    /// Read address semantics.
    pub fn get_semantics(&mut self) -> CodecResult<AddressSemantics> {
        match self.get_u8()? {
            0 => Ok(AddressSemantics::Single),
            1 => Ok(AddressSemantics::SendToAll),
            2 => Ok(AddressSemantics::PickRandom),
            3 => Ok(AddressSemantics::KOfN(self.get_u32()?)),
            4 => Ok(AddressSemantics::FirstReachable),
            5 => Ok(AddressSemantics::User(self.get_u32()?)),
            t => Err(CodecError::BadTag(t)),
        }
    }

    /// Read a full Object Address.
    pub fn get_address(&mut self) -> CodecResult<ObjectAddress> {
        let n = self.get_varint()?;
        if n > MAX_LEN {
            return Err(CodecError::LengthTooLarge(n));
        }
        let mut elements = Vec::with_capacity(n as usize);
        for _ in 0..n {
            elements.push(self.get_element()?);
        }
        let semantics = self.get_semantics()?;
        Ok(ObjectAddress {
            elements,
            semantics,
        })
    }

    /// Read an expiry.
    pub fn get_expiry(&mut self) -> CodecResult<Expiry> {
        match self.get_u8()? {
            0 => Ok(Expiry::Never),
            1 => Ok(Expiry::At(SimTime(self.get_u64()?))),
            t => Err(CodecError::BadTag(t)),
        }
    }

    /// Read a binding triple.
    pub fn get_binding(&mut self) -> CodecResult<Binding> {
        Ok(Binding {
            loid: self.get_loid()?,
            address: self.get_address()?,
            expiry: self.get_expiry()?,
        })
    }

    /// Read a dynamic value.
    pub fn get_value(&mut self) -> CodecResult<LegionValue> {
        match self.get_u8()? {
            0 => Ok(LegionValue::Void),
            1 => Ok(LegionValue::Bool(self.get_u8()? != 0)),
            2 => Ok(LegionValue::Int(self.get_u64()? as i64)),
            3 => Ok(LegionValue::Uint(self.get_u64()?)),
            4 => Ok(LegionValue::Float(f64::from_bits(self.get_u64()?))),
            5 => Ok(LegionValue::Str(self.get_str()?)),
            6 => Ok(LegionValue::Bytes(self.get_bytes()?)),
            7 => Ok(LegionValue::Loid(self.get_loid()?)),
            8 => Ok(LegionValue::Address(self.get_address()?)),
            9 => Ok(LegionValue::Binding(Box::new(self.get_binding()?))),
            10 => {
                let n = self.get_varint()?;
                if n > MAX_LEN {
                    return Err(CodecError::LengthTooLarge(n));
                }
                let mut items = Vec::with_capacity((n as usize).min(1024));
                for _ in 0..n {
                    items.push(self.get_value()?);
                }
                Ok(LegionValue::List(items))
            }
            t => Err(CodecError::BadTag(t)),
        }
    }
}

/// Encode one value to bytes.
pub fn encode_value(v: &LegionValue) -> Bytes {
    let mut w = Writer::new();
    w.put_value(v);
    w.finish()
}

/// Decode one value, requiring full consumption.
pub fn decode_value(bytes: &[u8]) -> CodecResult<LegionValue> {
    let mut r = Reader::new(bytes);
    let v = r.get_value()?;
    if !r.is_empty() {
        return Err(CodecError::Truncated); // trailing garbage
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &LegionValue) -> LegionValue {
        decode_value(&encode_value(v)).expect("roundtrip decode")
    }

    #[test]
    fn scalar_roundtrips() {
        for v in [
            LegionValue::Void,
            LegionValue::Bool(true),
            LegionValue::Bool(false),
            LegionValue::Int(-12345),
            LegionValue::Int(i64::MIN),
            LegionValue::Uint(u64::MAX),
            LegionValue::Float(3.25),
            LegionValue::Float(f64::NEG_INFINITY),
            LegionValue::Str("héllo".into()),
            LegionValue::Str(String::new()),
            LegionValue::Bytes(vec![0, 255, 1, 2]),
            LegionValue::Loid(Loid::instance(77, 88)),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let v = LegionValue::Float(f64::NAN);
        match roundtrip(&v) {
            LegionValue::Float(x) => assert!(x.is_nan()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn address_and_binding_roundtrip() {
        let addr = ObjectAddress::replicated(
            vec![
                ObjectAddressElement::sim(7),
                ObjectAddressElement::ipv4([10, 1, 2, 3], 8080),
                ObjectAddressElement::ipv4_node([10, 1, 2, 4], 9090, 17),
            ],
            AddressSemantics::KOfN(2),
        );
        let b = Binding {
            loid: Loid::instance(5, 6),
            address: addr.clone(),
            expiry: Expiry::At(SimTime::from_secs(12)),
        };
        assert_eq!(
            roundtrip(&LegionValue::Address(addr.clone())),
            LegionValue::Address(addr)
        );
        assert_eq!(
            roundtrip(&LegionValue::Binding(Box::new(b.clone()))),
            LegionValue::Binding(Box::new(b))
        );
    }

    #[test]
    fn nested_list_roundtrip() {
        let v = LegionValue::List(vec![
            LegionValue::List(vec![LegionValue::Uint(1), LegionValue::Str("x".into())]),
            LegionValue::Void,
            LegionValue::Binding(Box::new(Binding::forever(
                Loid::instance(1, 2),
                ObjectAddress::single(ObjectAddressElement::sim(3)),
            ))),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut w = Writer::new();
            w.put_varint(v);
            let bytes = w.finish();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.get_varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let full = encode_value(&LegionValue::List(vec![
            LegionValue::Str("hello".into()),
            LegionValue::Loid(Loid::instance(9, 9)),
        ]));
        for cut in 0..full.len() {
            let r = decode_value(&full[..cut]);
            assert!(r.is_err(), "decode of {cut}-byte prefix must fail");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_value(&LegionValue::Uint(7)).to_vec();
        bytes.push(0);
        assert_eq!(decode_value(&bytes), Err(CodecError::Truncated));
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert_eq!(decode_value(&[99]), Err(CodecError::BadTag(99)));
        let mut r = Reader::new(&[9]);
        assert!(r.get_semantics().is_err());
        let mut r = Reader::new(&[7]);
        assert!(r.get_expiry().is_err());
    }

    #[test]
    fn oversized_length_is_rejected() {
        // Claim a 1 TiB string.
        let mut w = Writer::new();
        w.put_u8(5); // Str tag
        w.put_varint(1 << 40);
        let bytes = w.finish();
        assert!(matches!(
            decode_value(&bytes),
            Err(CodecError::LengthTooLarge(_))
        ));
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut w = Writer::new();
        w.put_u8(5); // Str tag
        w.put_bytes(&[0xFF, 0xFE]);
        assert_eq!(decode_value(&w.finish()), Err(CodecError::BadUtf8));
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let bytes = [0x80u8; 11];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_varint(), Err(CodecError::BadVarint));
    }
}
