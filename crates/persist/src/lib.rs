//! # legion-persist — Object Persistent Representations and storage
//!
//! The Inert half of the paper's object lifecycle (§3.1): when a
//! Magistrate deactivates an object it calls `SaveState()` and writes an
//! **Object Persistent Representation** — "a sequential set of bytes" —
//! to the jurisdiction's storage, locating it with an **Object Persistent
//! Address** ("typically a file name ... only meaningful within the
//! Jurisdiction").
//!
//! * [`codec`] — the byte format for values, addresses and bindings;
//! * [`checksum`] — CRC-32 (local implementation);
//! * [`cas`] — SHA-256 content-addressed chunk stores (the snapshot and
//!   incremental-checkpoint backend);
//! * [`opr`] — the OPR container (magic, version, LOID, class, interface
//!   hash, state payload, checksum);
//! * [`storage`] — simulated disks and the jurisdiction-scoped visibility
//!   rules of Figure 11.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cas;
pub mod checksum;
pub mod codec;
pub mod opr;
pub mod storage;

pub use cas::{sha256, BlobStore, ChunkId, DirBlobStore, MemBlobStore, Sha256};
pub use checksum::{crc32, Crc32};
pub use codec::{decode_value, encode_value, CodecError, CodecResult, Reader, Writer};
pub use opr::{Opr, OprError};
pub use storage::{JurisdictionStorage, PersistentAddress, SimDisk, StorageError};
