//! Object Persistent Representations (paper §3.1.1).
//!
//! "An Object Persistent Representation is a sequential set of bytes that
//! represents an Inert object, and that can be used by a Magistrate to
//! activate the object." Every object exports `SaveState`/`RestoreState`;
//! Magistrates call them to produce and interpret OPRs.
//!
//! On-disk layout (all multi-byte fields little-endian):
//!
//! ```text
//! magic   "LOPR"            4 bytes
//! version u8                currently 1
//! loid                      the object's LOID
//! class   loid              the object's class (activation needs the
//!                           class to re-establish the interface)
//! iface   u64               interface shape hash at save time — drift
//!                           detection between an OPR and its class
//! state   varint + bytes    the SaveState() payload
//! crc     u32               CRC-32 over everything above
//! ```

use crate::checksum::crc32;
use crate::codec::{CodecError, CodecResult, Reader, Writer};
use bytes::Bytes;
use legion_core::loid::Loid;
use std::fmt;

/// The 4-byte magic prefix.
pub const MAGIC: &[u8; 4] = b"LOPR";
/// Current format version.
pub const VERSION: u8 = 1;

/// A decoded Object Persistent Representation.
///
/// ```
/// use legion_core::loid::Loid;
/// use legion_persist::opr::Opr;
///
/// let opr = Opr::new(
///     Loid::instance(16, 1),
///     Loid::class_object(16),
///     0xABCD,
///     b"v 1\ncount\tu 42\n".to_vec(),
/// );
/// let bytes = opr.encode();
/// assert_eq!(Opr::decode(&bytes).unwrap(), opr);
/// // Any corruption is detected.
/// let mut bad = bytes.to_vec();
/// bad[10] ^= 0xFF;
/// assert!(Opr::decode(&bad).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Opr {
    /// The Inert object's LOID.
    pub loid: Loid,
    /// The LOID of the object's class.
    pub class: Loid,
    /// Interface shape hash at save time.
    pub interface_hash: u64,
    /// The object's `SaveState()` payload.
    pub state: Vec<u8>,
}

/// OPR decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OprError {
    /// The magic prefix was wrong — not an OPR.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The checksum did not match — corruption in storage or transfer.
    BadChecksum {
        /// Checksum stored in the OPR.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// A field failed to decode.
    Codec(CodecError),
}

impl fmt::Display for OprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OprError::BadMagic => write!(f, "not an OPR (bad magic)"),
            OprError::BadVersion(v) => write!(f, "unsupported OPR version {v}"),
            OprError::BadChecksum { stored, computed } => write!(
                f,
                "OPR checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            OprError::Codec(e) => write!(f, "OPR field error: {e}"),
        }
    }
}

impl std::error::Error for OprError {}

impl From<CodecError> for OprError {
    fn from(e: CodecError) -> Self {
        OprError::Codec(e)
    }
}

impl Opr {
    /// Build an OPR for `loid` (an instance of `class`) from its saved
    /// state.
    pub fn new(loid: Loid, class: Loid, interface_hash: u64, state: Vec<u8>) -> Self {
        Opr {
            loid,
            class,
            interface_hash,
            state,
        }
    }

    /// Encode to the on-disk byte format.
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.put_u8(MAGIC[0]);
        w.put_u8(MAGIC[1]);
        w.put_u8(MAGIC[2]);
        w.put_u8(MAGIC[3]);
        w.put_u8(VERSION);
        w.put_loid(&self.loid);
        w.put_loid(&self.class);
        w.put_u64(self.interface_hash);
        w.put_bytes(&self.state);
        let body = w.finish();
        let crc = crc32(&body);
        let mut w2 = Writer::new();
        // Re-emit body + trailer. (Writer has no raw-slice append by
        // design; the copy is fine at OPR sizes.)
        for &b in body.iter() {
            w2.put_u8(b);
        }
        w2.put_u32(crc);
        w2.finish()
    }

    /// Decode and verify an OPR from bytes.
    pub fn decode(bytes: &[u8]) -> Result<Opr, OprError> {
        if bytes.len() < 4 + 1 + 4 {
            return Err(OprError::Codec(CodecError::Truncated));
        }
        if &bytes[..4] != MAGIC {
            return Err(OprError::BadMagic);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let computed = crc32(body);
        if stored != computed {
            return Err(OprError::BadChecksum { stored, computed });
        }
        let mut r = Reader::new(&body[4..]);
        let version = r.get_u8()?;
        if version != VERSION {
            return Err(OprError::BadVersion(version));
        }
        let loid = r.get_loid()?;
        let class = r.get_loid()?;
        let interface_hash = r.get_u64()?;
        let state = r.get_bytes()?;
        if !r.is_empty() {
            return Err(OprError::Codec(CodecError::Truncated));
        }
        Ok(Opr {
            loid,
            class,
            interface_hash,
            state,
        })
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

/// Quick check whether bytes look like an OPR (magic only).
pub fn looks_like_opr(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && &bytes[..4] == MAGIC
}

/// Convenience: decode, returning a codec result for callers that treat
/// all failures alike.
pub fn decode_strict(bytes: &[u8]) -> CodecResult<Opr> {
    Opr::decode(bytes).map_err(|e| match e {
        OprError::Codec(c) => c,
        _ => CodecError::Truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Opr {
        Opr::new(
            Loid::instance(16, 42),
            Loid::class_object(16),
            0xDEAD_BEEF_0BAD_F00D,
            b"v 3\ncount\tu 42\n".to_vec(),
        )
    }

    #[test]
    fn encode_decode_roundtrip() {
        let opr = sample();
        let bytes = opr.encode();
        assert!(looks_like_opr(&bytes));
        let back = Opr::decode(&bytes).unwrap();
        assert_eq!(back, opr);
    }

    #[test]
    fn empty_state_roundtrips() {
        let opr = Opr::new(Loid::instance(1, 1), Loid::class_object(1), 0, vec![]);
        assert_eq!(Opr::decode(&opr.encode()).unwrap(), opr);
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.to_vec();
            bad[i] ^= 0x40;
            let res = Opr::decode(&bad);
            assert!(res.is_err(), "flipping byte {i} must be detected");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(Opr::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn bad_magic_is_not_an_opr() {
        let mut bytes = sample().encode().to_vec();
        bytes[0] = b'X';
        assert_eq!(Opr::decode(&bytes), Err(OprError::BadMagic));
        assert!(!looks_like_opr(&bytes));
    }

    #[test]
    fn bad_version_is_rejected() {
        let opr = sample();
        // Re-encode manually with a bumped version byte and fixed CRC.
        let bytes = opr.encode();
        let mut body = bytes[..bytes.len() - 4].to_vec();
        body[4] = 99;
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(Opr::decode(&body), Err(OprError::BadVersion(99)));
    }

    #[test]
    fn trailing_garbage_inside_body_is_rejected() {
        let opr = sample();
        let bytes = opr.encode();
        let mut body = bytes[..bytes.len() - 4].to_vec();
        body.push(0xAB); // junk inside the checksummed region
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Opr::decode(&body),
            Err(OprError::Codec(CodecError::Truncated))
        ));
    }

    #[test]
    fn error_display() {
        let e = OprError::BadChecksum {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("mismatch"));
    }
}
