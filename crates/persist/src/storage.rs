//! Simulated jurisdiction storage (paper §2.2, §3.1, Figure 11).
//!
//! "A Jurisdiction consists of some aggregate persistent storage space and
//! a set of Legion hosts ... all of a Jurisdiction's persistent storage
//! space must be visible from each of its hosts." An Inert object lives on
//! one of the jurisdiction's disks and is located by an **Object
//! Persistent Address** — "typically a file name, and will only be
//! meaningful within the Jurisdiction in which it resides" (§3.1.1).
//!
//! [`JurisdictionStorage`] models the aggregate space as a set of
//! [`SimDisk`]s. Visibility-from-every-host is a property the runtime
//! enforces (any host of the jurisdiction may ask its storage for any
//! OPR); cross-jurisdiction access is a type error by construction —
//! a [`PersistentAddress`] names its jurisdiction and the storage refuses
//! foreign addresses.

use crate::cas::ChunkId;
use crate::opr::{Opr, OprError};
use legion_core::loid::Loid;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An Object Persistent Address: jurisdiction-scoped "file name" (§3.1.1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PersistentAddress {
    /// The jurisdiction the address is meaningful in.
    pub jurisdiction: u32,
    /// Disk index within the jurisdiction.
    pub disk: u32,
    /// File name on that disk.
    pub path: String,
}

impl fmt::Display for PersistentAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "jur{}:disk{}:{}",
            self.jurisdiction, self.disk, self.path
        )
    }
}

/// Storage failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The address names a different jurisdiction — Object Persistent
    /// Addresses are "only meaningful within the Jurisdiction".
    ForeignJurisdiction {
        /// Jurisdiction of the storage asked.
        ours: u32,
        /// Jurisdiction in the address.
        theirs: u32,
    },
    /// No such disk in this jurisdiction.
    NoSuchDisk(u32),
    /// No file at the path.
    NotFound(String),
    /// The disk is full.
    DiskFull {
        /// Disk index.
        disk: u32,
        /// Bytes that did not fit.
        needed: u64,
        /// Bytes still free.
        free: u64,
    },
    /// The stored bytes failed OPR validation.
    Corrupt(OprError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ForeignJurisdiction { ours, theirs } => write!(
                f,
                "persistent address from jurisdiction {theirs} used in jurisdiction {ours}"
            ),
            StorageError::NoSuchDisk(d) => write!(f, "no disk {d} in this jurisdiction"),
            StorageError::NotFound(p) => write!(f, "no file {p:?}"),
            StorageError::DiskFull { disk, needed, free } => {
                write!(f, "disk {disk} full ({needed} bytes needed, {free} free)")
            }
            StorageError::Corrupt(e) => write!(f, "corrupt OPR: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// One simulated disk: a byte-budgeted file map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimDisk {
    files: BTreeMap<String, Vec<u8>>,
    capacity: u64,
    used: u64,
}

impl SimDisk {
    /// A disk with `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        SimDisk {
            files: BTreeMap::new(),
            capacity,
            used: 0,
        }
    }

    /// Bytes in use.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    fn write(&mut self, disk_index: u32, path: &str, bytes: Vec<u8>) -> Result<(), StorageError> {
        let new_len = bytes.len() as u64;
        let old_len = self.files.get(path).map(|f| f.len() as u64).unwrap_or(0);
        let needed = new_len.saturating_sub(old_len);
        if needed > self.free() {
            return Err(StorageError::DiskFull {
                disk: disk_index,
                needed: new_len,
                free: self.free(),
            });
        }
        self.used = self.used - old_len + new_len;
        self.files.insert(path.to_owned(), bytes);
        Ok(())
    }

    fn read(&self, path: &str) -> Result<&[u8], StorageError> {
        self.files
            .get(path)
            .map(|v| v.as_slice())
            .ok_or_else(|| StorageError::NotFound(path.to_owned()))
    }

    fn delete(&mut self, path: &str) -> Result<(), StorageError> {
        match self.files.remove(path) {
            Some(bytes) => {
                self.used -= bytes.len() as u64;
                Ok(())
            }
            None => Err(StorageError::NotFound(path.to_owned())),
        }
    }
}

/// One content-addressed checkpoint blob: where it lives and how many
/// Object Persistent Addresses currently reference it.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CasRef {
    disk: u32,
    path: String,
    refs: u64,
    len: u64,
}

/// The aggregate persistent storage of one jurisdiction.
///
/// OPR checkpoints are stored **content-addressed**: [`store_opr`]
/// hashes the encoded OPR and, when an identical checkpoint is already
/// on disk, returns the existing address and bumps a reference count
/// instead of writing a second copy. Repeated checkpoints of an
/// unchanged object therefore cost zero extra disk — the incremental
/// half of the journal/snapshot durability story. [`delete`] decrements
/// the count and only frees the blob when the last reference goes.
///
/// [`store_opr`]: JurisdictionStorage::store_opr
/// [`delete`]: JurisdictionStorage::delete
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JurisdictionStorage {
    jurisdiction: u32,
    disks: Vec<SimDisk>,
    seq: u64,
    /// hex(ChunkId) → blob location + refcount, for `cas/` paths.
    cas: BTreeMap<String, CasRef>,
    dedup_hits: u64,
    logical_bytes: u64,
}

impl JurisdictionStorage {
    /// Storage for `jurisdiction` with `disks` disks of `disk_capacity`
    /// bytes each.
    pub fn new(jurisdiction: u32, disks: usize, disk_capacity: u64) -> Self {
        JurisdictionStorage {
            jurisdiction,
            disks: (0..disks).map(|_| SimDisk::new(disk_capacity)).collect(),
            seq: 0,
            cas: BTreeMap::new(),
            dedup_hits: 0,
            logical_bytes: 0,
        }
    }

    /// The jurisdiction this storage belongs to.
    pub fn jurisdiction(&self) -> u32 {
        self.jurisdiction
    }

    /// Number of disks.
    pub fn disk_count(&self) -> usize {
        self.disks.len()
    }

    /// Total bytes in use across disks.
    pub fn used(&self) -> u64 {
        self.disks.iter().map(|d| d.used()).sum()
    }

    /// Total files across disks.
    pub fn file_count(&self) -> usize {
        self.disks.iter().map(|d| d.file_count()).sum()
    }

    fn check(&self, addr: &PersistentAddress) -> Result<(), StorageError> {
        if addr.jurisdiction != self.jurisdiction {
            return Err(StorageError::ForeignJurisdiction {
                ours: self.jurisdiction,
                theirs: addr.jurisdiction,
            });
        }
        if addr.disk as usize >= self.disks.len() {
            return Err(StorageError::NoSuchDisk(addr.disk));
        }
        Ok(())
    }

    /// Store an OPR content-addressed, choosing the emptiest disk for new
    /// content; returns the Object Persistent Address. A checkpoint whose
    /// bytes are already stored returns the existing address (refcounted)
    /// and writes nothing.
    pub fn store_opr(&mut self, opr: &Opr) -> Result<PersistentAddress, StorageError> {
        let bytes = opr.encode().to_vec();
        let hex = ChunkId::of(&bytes).to_hex();
        if let Some(entry) = self.cas.get_mut(&hex) {
            entry.refs += 1;
            self.dedup_hits += 1;
            self.logical_bytes += entry.len;
            return Ok(PersistentAddress {
                jurisdiction: self.jurisdiction,
                disk: entry.disk,
                path: entry.path.clone(),
            });
        }
        let disk = self
            .disks
            .iter()
            .enumerate()
            .max_by_key(|(_, d)| d.free())
            .map(|(i, _)| i as u32)
            .ok_or(StorageError::NoSuchDisk(0))?;
        self.seq += 1;
        let addr = PersistentAddress {
            jurisdiction: self.jurisdiction,
            disk,
            path: format!("cas/{hex}.lopr"),
        };
        let len = bytes.len() as u64;
        self.disks[disk as usize].write(disk, &addr.path, bytes)?;
        self.logical_bytes += len;
        self.cas.insert(
            hex,
            CasRef {
                disk,
                path: addr.path.clone(),
                refs: 1,
                len,
            },
        );
        Ok(addr)
    }

    /// Checkpoints deduplicated away (stores that wrote nothing).
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// Bytes the vault would hold without content dedup (every
    /// `store_opr` counted at full size). Compare with [`used`] for the
    /// physical footprint.
    ///
    /// [`used`]: JurisdictionStorage::used
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    /// Store raw bytes at an explicit address (used to receive a shipped
    /// OPR from another jurisdiction during Copy/Move).
    pub fn store_at(
        &mut self,
        addr: &PersistentAddress,
        bytes: Vec<u8>,
    ) -> Result<(), StorageError> {
        self.check(addr)?;
        self.disks[addr.disk as usize].write(addr.disk, &addr.path, bytes)
    }

    /// Load and validate the OPR at `addr`.
    pub fn load_opr(&self, addr: &PersistentAddress) -> Result<Opr, StorageError> {
        self.check(addr)?;
        let bytes = self.disks[addr.disk as usize].read(&addr.path)?;
        Opr::decode(bytes).map_err(StorageError::Corrupt)
    }

    /// Read the raw bytes at `addr` (for shipping to another jurisdiction).
    pub fn read_raw(&self, addr: &PersistentAddress) -> Result<Vec<u8>, StorageError> {
        self.check(addr)?;
        Ok(self.disks[addr.disk as usize].read(&addr.path)?.to_vec())
    }

    /// Delete the file at `addr`. For content-addressed checkpoints this
    /// drops one reference; the blob is only freed when the last address
    /// referencing it is deleted.
    pub fn delete(&mut self, addr: &PersistentAddress) -> Result<(), StorageError> {
        self.check(addr)?;
        let hex = addr
            .path
            .strip_prefix("cas/")
            .and_then(|p| p.strip_suffix(".lopr"));
        if let Some(hex) = hex {
            if let Some(entry) = self.cas.get_mut(hex) {
                entry.refs -= 1;
                if entry.refs > 0 {
                    return Ok(());
                }
                self.cas.remove(hex);
                return self.disks[addr.disk as usize].delete(&addr.path);
            }
        }
        self.disks[addr.disk as usize].delete(&addr.path)
    }

    /// Does a file exist at `addr` (and in this jurisdiction)?
    pub fn exists(&self, addr: &PersistentAddress) -> bool {
        self.check(addr).is_ok() && self.disks[addr.disk as usize].read(&addr.path).is_ok()
    }

    /// Corrupt one byte of the file at `addr` (fault injection for tests
    /// and the lifecycle experiments).
    pub fn corrupt(&mut self, addr: &PersistentAddress, offset: usize) -> Result<(), StorageError> {
        self.check(addr)?;
        let disk = &mut self.disks[addr.disk as usize];
        let bytes = disk
            .files
            .get_mut(&addr.path)
            .ok_or_else(|| StorageError::NotFound(addr.path.clone()))?;
        if let Some(b) = bytes.get_mut(offset) {
            *b ^= 0xFF;
        }
        Ok(())
    }

    /// A fresh Object Persistent Address on the emptiest disk without
    /// writing anything (for two-phase Copy).
    pub fn reserve_address(&mut self, loid: &Loid) -> PersistentAddress {
        let disk = self
            .disks
            .iter()
            .enumerate()
            .max_by_key(|(_, d)| d.free())
            .map(|(i, _)| i as u32)
            .unwrap_or(0);
        self.seq += 1;
        PersistentAddress {
            jurisdiction: self.jurisdiction,
            disk,
            path: format!("opr/{}-{}.lopr", loid, self.seq),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opr(seq: u64) -> Opr {
        Opr::new(
            Loid::instance(16, seq),
            Loid::class_object(16),
            7,
            vec![1, 2, 3, 4],
        )
    }

    fn storage() -> JurisdictionStorage {
        JurisdictionStorage::new(3, 2, 10_000)
    }

    #[test]
    fn store_load_roundtrip() {
        let mut s = storage();
        let o = opr(1);
        let addr = s.store_opr(&o).unwrap();
        assert_eq!(addr.jurisdiction, 3);
        assert!(s.exists(&addr));
        assert_eq!(s.load_opr(&addr).unwrap(), o);
        assert_eq!(s.file_count(), 1);
        assert!(s.used() > 0);
    }

    #[test]
    fn foreign_jurisdiction_is_refused() {
        let mut s = storage();
        let addr = s.store_opr(&opr(1)).unwrap();
        let mut foreign = addr.clone();
        foreign.jurisdiction = 99;
        assert!(matches!(
            s.load_opr(&foreign),
            Err(StorageError::ForeignJurisdiction {
                ours: 3,
                theirs: 99
            })
        ));
        assert!(!s.exists(&foreign));
    }

    #[test]
    fn missing_file_and_disk() {
        let s = storage();
        let addr = PersistentAddress {
            jurisdiction: 3,
            disk: 0,
            path: "nope".into(),
        };
        assert!(matches!(s.load_opr(&addr), Err(StorageError::NotFound(_))));
        let bad_disk = PersistentAddress {
            jurisdiction: 3,
            disk: 9,
            path: "nope".into(),
        };
        assert!(matches!(
            s.load_opr(&bad_disk),
            Err(StorageError::NoSuchDisk(9))
        ));
    }

    #[test]
    fn delete_frees_space() {
        let mut s = storage();
        let addr = s.store_opr(&opr(1)).unwrap();
        let used = s.used();
        assert!(used > 0);
        s.delete(&addr).unwrap();
        assert_eq!(s.used(), 0);
        assert!(!s.exists(&addr));
        assert!(matches!(s.delete(&addr), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn disk_full_is_reported() {
        let mut s = JurisdictionStorage::new(0, 1, 16);
        let o = opr(1); // encoded OPR far exceeds 16 bytes
        assert!(matches!(
            s.store_opr(&o),
            Err(StorageError::DiskFull { .. })
        ));
        assert_eq!(s.used(), 0, "failed store consumes nothing");
    }

    #[test]
    fn store_spreads_to_emptiest_disk() {
        let mut s = storage();
        let a1 = s.store_opr(&opr(1)).unwrap();
        let a2 = s.store_opr(&opr(2)).unwrap();
        assert_ne!(a1.disk, a2.disk, "second OPR lands on the emptier disk");
    }

    #[test]
    fn corruption_detected_on_load() {
        let mut s = storage();
        let addr = s.store_opr(&opr(1)).unwrap();
        s.corrupt(&addr, 10).unwrap();
        assert!(matches!(s.load_opr(&addr), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn raw_shipping_between_jurisdictions() {
        // Fig. 11 migration path: read raw from one jurisdiction, store at
        // a reserved address in another, load there.
        let mut src = JurisdictionStorage::new(1, 1, 10_000);
        let mut dst = JurisdictionStorage::new(2, 1, 10_000);
        let o = opr(5);
        let a_src = src.store_opr(&o).unwrap();
        let bytes = src.read_raw(&a_src).unwrap();
        let a_dst = dst.reserve_address(&o.loid);
        assert_eq!(a_dst.jurisdiction, 2);
        dst.store_at(&a_dst, bytes).unwrap();
        assert_eq!(dst.load_opr(&a_dst).unwrap(), o);
        src.delete(&a_src).unwrap();
        assert_eq!(src.file_count(), 0);
        assert_eq!(dst.file_count(), 1);
    }

    #[test]
    fn overwrite_accounts_correctly() {
        let mut s = JurisdictionStorage::new(0, 1, 1000);
        let addr = PersistentAddress {
            jurisdiction: 0,
            disk: 0,
            path: "f".into(),
        };
        s.store_at(&addr, vec![0; 100]).unwrap();
        assert_eq!(s.used(), 100);
        s.store_at(&addr, vec![0; 40]).unwrap();
        assert_eq!(s.used(), 40);
        s.store_at(&addr, vec![0; 999]).unwrap();
        assert_eq!(s.used(), 999);
        // Replacing with something that doesn't fit fails cleanly.
        let r = s.store_at(&addr, vec![0; 2000]);
        assert!(matches!(r, Err(StorageError::DiskFull { .. })));
        assert_eq!(s.used(), 999);
    }

    #[test]
    fn identical_checkpoints_dedup_to_one_blob() {
        let mut s = storage();
        let o = opr(1);
        let a1 = s.store_opr(&o).unwrap();
        let used_once = s.used();
        let a2 = s.store_opr(&o).unwrap();
        assert_eq!(a1, a2, "identical content shares one address");
        assert_eq!(s.used(), used_once, "second checkpoint wrote nothing");
        assert_eq!(s.file_count(), 1);
        assert_eq!(s.dedup_hits(), 1);
        assert_eq!(s.logical_bytes(), 2 * used_once);
        // A different checkpoint is a different blob.
        let a3 = s.store_opr(&opr(2)).unwrap();
        assert_ne!(a1, a3);
        assert_eq!(s.file_count(), 2);
    }

    #[test]
    fn dedup_refcount_frees_blob_on_last_delete() {
        let mut s = storage();
        let o = opr(1);
        let a1 = s.store_opr(&o).unwrap();
        let a2 = s.store_opr(&o).unwrap();
        s.delete(&a1).unwrap();
        assert!(s.exists(&a2), "blob survives while a reference remains");
        assert_eq!(s.load_opr(&a2).unwrap(), o);
        s.delete(&a2).unwrap();
        assert!(!s.exists(&a2));
        assert_eq!(s.used(), 0);
        assert!(matches!(s.delete(&a2), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn display_formats() {
        let addr = PersistentAddress {
            jurisdiction: 1,
            disk: 2,
            path: "opr/x".into(),
        };
        assert_eq!(addr.to_string(), "jur1:disk2:opr/x");
        assert!(StorageError::NoSuchDisk(2).to_string().contains("disk 2"));
    }
}
