//! Property-based tests: codec and OPR roundtrips over arbitrary values,
//! and corruption detection over arbitrary byte flips.

use legion_core::address::{AddressKind, AddressSemantics, ObjectAddress, ObjectAddressElement};
use legion_core::binding::Binding;
use legion_core::loid::Loid;
use legion_core::time::{Expiry, SimTime};
use legion_core::value::LegionValue;
use legion_persist::codec::{decode_value, encode_value, CodecError};
use legion_persist::opr::Opr;
use legion_persist::storage::JurisdictionStorage;
use proptest::prelude::*;

fn arb_loid() -> impl Strategy<Value = Loid> {
    (any::<u64>(), any::<u64>()).prop_map(|(c, s)| Loid::instance(c, s))
}

fn arb_element() -> impl Strategy<Value = ObjectAddressElement> {
    prop_oneof![
        any::<u64>().prop_map(ObjectAddressElement::sim),
        (any::<[u8; 4]>(), any::<u16>()).prop_map(|(a, p)| ObjectAddressElement::ipv4(a, p)),
        (any::<[u8; 4]>(), any::<u16>(), any::<u32>())
            .prop_map(|(a, p, n)| ObjectAddressElement::ipv4_node(a, p, n)),
        (any::<u32>(), any::<[u8; 32]>()).prop_map(|(tag, info)| ObjectAddressElement {
            kind: AddressKind::from_tag(tag),
            info,
        }),
    ]
}

fn arb_semantics() -> impl Strategy<Value = AddressSemantics> {
    prop_oneof![
        Just(AddressSemantics::Single),
        Just(AddressSemantics::SendToAll),
        Just(AddressSemantics::PickRandom),
        any::<u32>().prop_map(AddressSemantics::KOfN),
        Just(AddressSemantics::FirstReachable),
        any::<u32>().prop_map(AddressSemantics::User),
    ]
}

fn arb_address() -> impl Strategy<Value = ObjectAddress> {
    (
        proptest::collection::vec(arb_element(), 0..5),
        arb_semantics(),
    )
        .prop_map(|(elements, semantics)| ObjectAddress {
            elements,
            semantics,
        })
}

fn arb_expiry() -> impl Strategy<Value = Expiry> {
    prop_oneof![
        Just(Expiry::Never),
        any::<u64>().prop_map(|t| Expiry::At(SimTime(t))),
    ]
}

fn arb_binding() -> impl Strategy<Value = Binding> {
    (arb_loid(), arb_address(), arb_expiry()).prop_map(|(loid, address, expiry)| Binding {
        loid,
        address,
        expiry,
    })
}

fn arb_value() -> impl Strategy<Value = LegionValue> {
    let leaf = prop_oneof![
        Just(LegionValue::Void),
        any::<bool>().prop_map(LegionValue::Bool),
        any::<i64>().prop_map(LegionValue::Int),
        any::<u64>().prop_map(LegionValue::Uint),
        any::<f64>().prop_map(LegionValue::Float),
        ".{0,24}".prop_map(LegionValue::Str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(LegionValue::Bytes),
        arb_loid().prop_map(LegionValue::Loid),
        arb_address().prop_map(LegionValue::Address),
        arb_binding().prop_map(|b| LegionValue::Binding(Box::new(b))),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(LegionValue::List)
    })
}

/// Structural equality that treats NaN floats as equal (the codec is
/// bit-preserving but `PartialEq` on f64 is not reflexive for NaN).
fn eq_mod_nan(a: &LegionValue, b: &LegionValue) -> bool {
    match (a, b) {
        (LegionValue::Float(x), LegionValue::Float(y)) => {
            x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan())
        }
        (LegionValue::List(xs), LegionValue::List(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| eq_mod_nan(x, y))
        }
        _ => a == b,
    }
}

proptest! {
    /// Any value encodes and decodes to itself.
    #[test]
    fn codec_roundtrip(v in arb_value()) {
        let bytes = encode_value(&v);
        let back = decode_value(&bytes).expect("decode");
        prop_assert!(eq_mod_nan(&v, &back), "{v:?} != {back:?}");
    }

    /// Every strict prefix of an encoding fails to decode (no silent
    /// truncation), except prefixes that are themselves complete — which
    /// cannot happen because decode_value demands full consumption.
    #[test]
    fn codec_prefixes_fail(v in arb_value()) {
        let bytes = encode_value(&v);
        for cut in 0..bytes.len() {
            prop_assert!(decode_value(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    /// Garbage after a valid encoding is rejected.
    #[test]
    fn codec_trailing_garbage_fails(v in arb_value(), junk in 1u8..) {
        let mut bytes = encode_value(&v).to_vec();
        bytes.push(junk);
        prop_assert!(matches!(
            decode_value(&bytes),
            Err(CodecError::Truncated) | Err(CodecError::BadTag(_)) | Err(CodecError::LengthTooLarge(_))
        ));
    }

    /// OPRs roundtrip for arbitrary state payloads and LOIDs.
    #[test]
    fn opr_roundtrip(
        class_id in 1u64..,
        seq in 1u64..,
        hash in any::<u64>(),
        state in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let opr = Opr::new(
            Loid::instance(class_id, seq),
            Loid::class_object(class_id),
            hash,
            state,
        );
        let back = Opr::decode(&opr.encode()).expect("decode");
        prop_assert_eq!(back, opr);
    }

    /// Flipping any single byte of an encoded OPR is detected.
    #[test]
    fn opr_detects_any_single_byte_flip(
        state in proptest::collection::vec(any::<u8>(), 0..128),
        pos_seed in any::<usize>(),
        flip in 1u8..,
    ) {
        let opr = Opr::new(Loid::instance(5, 6), Loid::class_object(5), 1, state);
        let mut bytes = opr.encode().to_vec();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip;
        prop_assert!(Opr::decode(&bytes).is_err(), "flip at {pos} undetected");
    }

    /// Every strict prefix of an encoded OPR fails to decode cleanly —
    /// a truncated vault record (torn write, short read during crash
    /// recovery) is always an `Err`, never a panic and never a silently
    /// shortened object state.
    #[test]
    fn opr_truncation_always_errs(
        class_id in 1u64..,
        seq in 1u64..,
        state in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        let opr = Opr::new(
            Loid::instance(class_id, seq),
            Loid::class_object(class_id),
            7,
            state,
        );
        let bytes = opr.encode();
        for cut in 0..bytes.len() {
            prop_assert!(Opr::decode(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    /// Decoding arbitrary byte soup as an OPR returns an error rather
    /// than panicking (no index-out-of-bounds, no allocation from a
    /// corrupt length prefix).
    #[test]
    fn opr_decode_of_garbage_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // The checksum makes an accidental pass astronomically unlikely,
        // but the property under test is "no panic", so a rare Ok on
        // adversarially-shaped input is tolerated by construction.
        let _ = Opr::decode(&bytes);
    }

    /// Multi-byte corruption (not just single flips) of a valid OPR is
    /// rejected without panicking.
    #[test]
    fn opr_multi_flip_errs_or_roundtrips(
        state in proptest::collection::vec(any::<u8>(), 0..128),
        flips in proptest::collection::vec((any::<usize>(), 1u8..), 1..8),
    ) {
        let opr = Opr::new(Loid::instance(5, 6), Loid::class_object(5), 1, state);
        let original = opr.encode().to_vec();
        let mut bytes = original.clone();
        for (pos_seed, flip) in flips {
            let pos = pos_seed % bytes.len();
            bytes[pos] ^= flip;
        }
        // Flips at the same position can cancel out; only a net change
        // must be detected.
        if bytes != original {
            prop_assert!(Opr::decode(&bytes).is_err(), "corruption undetected");
        }
    }

    /// The value codec also never panics on arbitrary input (the OPR
    /// state payload may embed encoded values).
    #[test]
    fn value_decode_of_garbage_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = decode_value(&bytes);
    }

    /// Storage: store → load returns the same OPR; delete frees exactly
    /// what was used.
    #[test]
    fn storage_roundtrip_and_accounting(
        states in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..8),
    ) {
        let mut s = JurisdictionStorage::new(1, 2, 1 << 20);
        let mut addrs = Vec::new();
        for (i, state) in states.iter().enumerate() {
            let opr = Opr::new(
                Loid::instance(9, i as u64 + 1),
                Loid::class_object(9),
                0,
                state.clone(),
            );
            let addr = s.store_opr(&opr).expect("store");
            prop_assert_eq!(s.load_opr(&addr).expect("load"), opr);
            addrs.push(addr);
        }
        prop_assert_eq!(s.file_count(), states.len());
        for addr in &addrs {
            s.delete(addr).expect("delete");
        }
        prop_assert_eq!(s.used(), 0);
        prop_assert_eq!(s.file_count(), 0);
    }
}
