//! Burn-driven auto-scaling: §5.2.2 hot-class cloning as a control loop.
//!
//! The paper's answer to a hot class is organizational — "a class which
//! becomes a bottleneck can be cloned, and the clones can share the
//! load" (§5.2.2) — but it never says *when*. This module closes the
//! loop: the SLO tracker's incremental burn monitor
//! ([`legion_obs::slo`]) turns sustained latency-objective violations
//! into [`BurnEvent`]s, and the [`AutoScaler`] endpoint turns those into
//! `Derive()` calls against the overloaded class — the same E6 cloning
//! machinery a human operator would drive, minus the human.
//!
//! Three pieces, separable on purpose:
//!
//! * [`HysteresisState`] — the pure decision kernel. Clone only after
//!   `burn_streak_to_clone` consecutive burning poll ticks, never while
//!   a previous clone is in flight, never inside the cooldown, never
//!   past `max_clones`. A streak of calm ticks resets the burn streak,
//!   so an isolated spike (one bad window during convergence) cannot
//!   flap the system into an extra clone. Pure state machine, no I/O —
//!   unit-testable without a kernel.
//! * [`AutoScaler`] — a sim endpoint that polls the kernel's burn-event
//!   queue on a timer, feeds the hysteresis, issues `Derive()` when it
//!   says go, and registers each landed clone with the router.
//! * [`ReplicaRouter`] — the front door. Clients address the class
//!   through it; it forwards round-robin over the replica set (the
//!   original class plus every landed clone), preserving `reply_to` so
//!   replies flow directly back to the caller — the router is one hop
//!   on the request path and zero on the reply path.
//!
//! Everything is driven by kernel timers and messages, so the whole
//! loop is bit-deterministic per seed and survives journal replay.

use crate::protocol::AddReplicaArgs;
use legion_core::address::ObjectAddressElement;
use legion_core::dispatch::FromArgs;
use legion_core::env::InvocationEnv;
use legion_core::loid::Loid;
use legion_core::symbol::{self, Sym};
use legion_core::value::LegionValue;
use legion_net::message::{Body, CallId, Message};
use legion_net::sim::{Ctx, Endpoint};

/// Method name the [`AutoScaler`] uses to register a landed clone with
/// the [`ReplicaRouter`] (a control-plane call, not part of the paper's
/// object protocol).
pub const ROUTER_ADD_REPLICA: &str = "Router.AddReplica";

/// Knobs for the burn→clone control loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoScalePolicy {
    /// Poll period for the burn-event queue, virtual ns.
    pub poll_interval_ns: u64,
    /// Consecutive burning ticks required before cloning (≥ 1).
    pub burn_streak_to_clone: u32,
    /// Consecutive calm ticks that reset the burn streak (≥ 1).
    pub calm_streak_to_reset: u32,
    /// Minimum virtual time between clone decisions.
    pub cooldown_ns: u64,
    /// Hard ceiling on clones this scaler will ever create.
    pub max_clones: u32,
}

impl Default for AutoScalePolicy {
    fn default() -> Self {
        AutoScalePolicy {
            poll_interval_ns: 50_000_000, // one SLO window
            burn_streak_to_clone: 2,
            calm_streak_to_reset: 3,
            cooldown_ns: 200_000_000,
            max_clones: 3,
        }
    }
}

/// The pure clone-decision state machine (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct HysteresisState {
    burn_streak: u32,
    calm_streak: u32,
    last_decision_ns: Option<u64>,
    clones: u32,
    pending: bool,
}

impl HysteresisState {
    /// A fresh state: no streaks, no clones, nothing pending.
    pub fn new() -> Self {
        HysteresisState::default()
    }

    /// Clones landed so far.
    pub fn clones(&self) -> u32 {
        self.clones
    }

    /// Is a clone request currently in flight?
    pub fn pending(&self) -> bool {
        self.pending
    }

    /// Current consecutive burning-tick count.
    pub fn burn_streak(&self) -> u32 {
        self.burn_streak
    }

    /// Feed one poll tick. `burning` = at least one burn event arrived
    /// since the last tick. Returns `true` when the policy says to
    /// issue a clone *now* — the caller must follow up with
    /// [`begin_clone`](Self::begin_clone) once the request is actually
    /// sent (the decision and the send can fail independently).
    pub fn observe(&mut self, policy: &AutoScalePolicy, now_ns: u64, burning: bool) -> bool {
        if !burning {
            self.calm_streak += 1;
            if self.calm_streak >= policy.calm_streak_to_reset.max(1) {
                self.burn_streak = 0;
            }
            return false;
        }
        self.calm_streak = 0;
        self.burn_streak = self.burn_streak.saturating_add(1);
        if self.pending || self.clones >= policy.max_clones {
            return false;
        }
        if self.burn_streak < policy.burn_streak_to_clone.max(1) {
            return false;
        }
        if let Some(t) = self.last_decision_ns {
            if now_ns.saturating_sub(t) < policy.cooldown_ns {
                return false;
            }
        }
        true
    }

    /// A clone request went on the wire: start the cooldown and block
    /// further decisions until it resolves.
    pub fn begin_clone(&mut self, now_ns: u64) {
        self.pending = true;
        self.last_decision_ns = Some(now_ns);
    }

    /// The clone landed: count it and restart the burn streak (the new
    /// capacity deserves a fresh chance before the next decision).
    pub fn clone_landed(&mut self, now_ns: u64) {
        self.pending = false;
        self.clones += 1;
        self.burn_streak = 0;
        self.last_decision_ns = Some(now_ns);
    }

    /// The clone request failed: unblock (the cooldown still applies).
    pub fn clone_failed(&mut self) {
        self.pending = false;
    }
}

/// One landed clone, for the experiment's timeline.
#[derive(Debug, Clone)]
pub struct CloneRecord {
    /// Virtual time the clone's binding arrived.
    pub at_ns: u64,
    /// The clone's class LOID.
    pub loid: Loid,
}

const TIMER_POLL: u64 = 1;

/// The policy-loop endpoint: polls burn events, drives [`HysteresisState`],
/// issues `Derive()` against the watched class, registers landed clones
/// with the [`ReplicaRouter`].
pub struct AutoScaler {
    policy: AutoScalePolicy,
    state: HysteresisState,
    me: Loid,
    /// The class being watched (and cloned).
    class_loid: Loid,
    class_element: ObjectAddressElement,
    /// Front door to register clones with (`None` = decide-only mode).
    router: Option<ObjectAddressElement>,
    router_method: Sym,
    /// Stop polling at this virtual time so the kernel can go quiescent.
    stop_at_ns: u64,
    pending_derive: Option<CallId>,
    /// Burn events drained over the scaler's lifetime.
    pub burn_events_seen: u64,
    /// Poll ticks that saw at least one burn event.
    pub burning_ticks: u64,
    /// Landed clones, in landing order.
    pub clone_log: Vec<CloneRecord>,
}

impl AutoScaler {
    /// A scaler watching `class_loid` at `class_element`, registering
    /// clones with `router`, polling until `stop_at_ns`.
    pub fn new(
        me: Loid,
        class_loid: Loid,
        class_element: ObjectAddressElement,
        router: Option<ObjectAddressElement>,
        policy: AutoScalePolicy,
        stop_at_ns: u64,
    ) -> Self {
        AutoScaler {
            policy,
            state: HysteresisState::new(),
            me,
            class_loid,
            class_element,
            router,
            router_method: Sym::intern(ROUTER_ADD_REPLICA),
            stop_at_ns,
            pending_derive: None,
            burn_events_seen: 0,
            burning_ticks: 0,
            clone_log: Vec::new(),
        }
    }

    /// The decision state (tests, experiments).
    pub fn state(&self) -> &HysteresisState {
        &self.state
    }

    fn issue_derive(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now().as_nanos();
        let name = format!("auto{}", self.state.clones() + 1);
        match ctx.call(
            self.class_element,
            self.class_loid,
            symbol::DERIVE,
            vec![LegionValue::Str(name)],
            InvocationEnv::solo(self.me),
            Some(self.me),
        ) {
            Some(id) => {
                ctx.count("policy.derive_issued");
                self.pending_derive = Some(id);
                self.state.begin_clone(now);
            }
            None => ctx.count("policy.derive_refused"),
        }
    }
}

impl Endpoint for AutoScaler {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.policy.poll_interval_ns, TIMER_POLL);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag != TIMER_POLL {
            return;
        }
        let events = ctx.drain_burn_events();
        let burning = !events.is_empty();
        self.burn_events_seen += events.len() as u64;
        if burning {
            self.burning_ticks += 1;
        }
        let now = ctx.now().as_nanos();
        if self.state.observe(&self.policy, now, burning) {
            self.issue_derive(ctx);
        }
        if now < self.stop_at_ns {
            ctx.set_timer(self.policy.poll_interval_ns, TIMER_POLL);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let Body::Reply {
            in_reply_to,
            result,
        } = &msg.body
        else {
            return;
        };
        if Some(*in_reply_to) != self.pending_derive {
            return;
        }
        self.pending_derive = None;
        let now = ctx.now().as_nanos();
        match result {
            Ok(LegionValue::Binding(b)) => {
                ctx.count_n_sym(symbol::POLICY_AUTOSCALE_CLONE, 1);
                self.clone_log.push(CloneRecord {
                    at_ns: now,
                    loid: b.loid,
                });
                if let (Some(router), Some(_)) = (self.router, b.address.primary()) {
                    ctx.call(
                        router,
                        self.class_loid,
                        self.router_method,
                        vec![LegionValue::Binding(b.clone())],
                        InvocationEnv::solo(self.me),
                        Some(self.me),
                    );
                }
                self.state.clone_landed(now);
            }
            Ok(_) | Err(_) => {
                ctx.count("policy.derive_failed");
                self.state.clone_failed();
            }
        }
    }
}

/// The front-door endpoint: round-robin over the replica set, request
/// path only (see the module docs).
pub struct ReplicaRouter {
    replicas: Vec<ObjectAddressElement>,
    next: usize,
    add_replica: Sym,
    /// Data-plane calls forwarded.
    pub forwarded: u64,
    /// Replicas registered after construction.
    pub adds: u64,
}

impl ReplicaRouter {
    /// A router starting with the original class as its only replica.
    pub fn new(class_element: ObjectAddressElement) -> Self {
        ReplicaRouter {
            replicas: vec![class_element],
            next: 0,
            add_replica: Sym::intern(ROUTER_ADD_REPLICA),
            forwarded: 0,
            adds: 0,
        }
    }

    /// Current replica count (original class included).
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }
}

impl Endpoint for ReplicaRouter {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        if msg.is_reply() {
            ctx.recycle_message(msg);
            return;
        }
        if msg.method_sym() == Some(self.add_replica) {
            let verdict = match AddReplicaArgs::from_args(msg.args()) {
                Ok(a) => match a.binding.address.primary() {
                    Some(el) => {
                        self.replicas.push(*el);
                        self.adds += 1;
                        ctx.count("router.replica_added");
                        Ok(LegionValue::Uint(self.replicas.len() as u64))
                    }
                    None => Err("AddReplica: binding has an empty address".into()),
                },
                Err(e) => Err(format!("AddReplica: {e}")),
            };
            ctx.reply(&msg, verdict);
            ctx.recycle_message(msg);
            return;
        }
        // Forward, preserving the caller's reply_to: the reply skips us.
        let el = self.replicas[self.next % self.replicas.len()];
        self.next += 1;
        self.forwarded += 1;
        ctx.send(el, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AutoScalePolicy {
        AutoScalePolicy {
            poll_interval_ns: 10,
            burn_streak_to_clone: 3,
            calm_streak_to_reset: 2,
            cooldown_ns: 100,
            max_clones: 2,
        }
    }

    #[test]
    fn clone_requires_a_sustained_streak() {
        let p = policy();
        let mut h = HysteresisState::new();
        assert!(!h.observe(&p, 0, true));
        assert!(!h.observe(&p, 10, true));
        assert!(h.observe(&p, 20, true), "third burning tick fires");
    }

    #[test]
    fn isolated_spikes_do_not_flap() {
        let p = policy();
        let mut h = HysteresisState::new();
        // Two burning ticks, then enough calm to reset the streak.
        assert!(!h.observe(&p, 0, true));
        assert!(!h.observe(&p, 10, true));
        assert!(!h.observe(&p, 20, false));
        assert!(!h.observe(&p, 30, false));
        assert_eq!(h.burn_streak(), 0, "calm streak resets the burn streak");
        // The streak must rebuild from scratch.
        assert!(!h.observe(&p, 40, true));
        assert!(!h.observe(&p, 50, true));
        assert!(h.observe(&p, 60, true));
    }

    #[test]
    fn a_single_calm_tick_does_not_reset() {
        let p = policy();
        let mut h = HysteresisState::new();
        assert!(!h.observe(&p, 0, true));
        assert!(!h.observe(&p, 10, true));
        assert!(!h.observe(&p, 20, false), "calm tick never fires");
        assert_eq!(h.burn_streak(), 2, "one calm tick < calm_streak_to_reset");
        assert!(h.observe(&p, 30, true), "streak resumes and fires");
    }

    #[test]
    fn pending_blocks_further_decisions() {
        let p = policy();
        let mut h = HysteresisState::new();
        for t in 0..3 {
            h.observe(&p, t * 10, true);
        }
        h.begin_clone(20);
        // Burning hard while the derive is in flight: no second decision.
        for t in 3..10 {
            assert!(!h.observe(&p, t * 10, true), "pending blocks at t={t}");
        }
        h.clone_landed(100);
        assert_eq!(h.clones(), 1);
        assert_eq!(h.burn_streak(), 0, "landing restarts the streak");
    }

    #[test]
    fn cooldown_spaces_decisions() {
        let p = policy();
        let mut h = HysteresisState::new();
        for t in 0..3 {
            h.observe(&p, t * 10, true);
        }
        h.begin_clone(20);
        h.clone_landed(30);
        // Streak rebuilds immediately but the 100 ns cooldown holds.
        assert!(!h.observe(&p, 40, true));
        assert!(!h.observe(&p, 50, true));
        assert!(!h.observe(&p, 60, true), "streak met but inside cooldown");
        assert!(h.observe(&p, 140, true), "cooldown expired");
    }

    #[test]
    fn max_clones_is_a_hard_ceiling() {
        let p = policy();
        let mut h = HysteresisState::new();
        for round in 0..2u64 {
            let base = round * 1000;
            let mut fired = false;
            for t in 0..10u64 {
                if h.observe(&p, base + t * 10, true) {
                    h.begin_clone(base + t * 10);
                    h.clone_landed(base + t * 10 + 5);
                    fired = true;
                    break;
                }
            }
            assert!(fired, "round {round} should clone");
        }
        assert_eq!(h.clones(), 2);
        // At the ceiling: burn forever, never clone again.
        for t in 0..50u64 {
            assert!(!h.observe(&p, 10_000 + t * 10, true));
        }
    }

    #[test]
    fn failed_clone_unblocks_but_keeps_cooldown() {
        let p = policy();
        let mut h = HysteresisState::new();
        for t in 0..3 {
            h.observe(&p, t * 10, true);
        }
        h.begin_clone(20);
        h.clone_failed();
        assert_eq!(h.clones(), 0);
        // Still burning; the cooldown from the failed attempt applies.
        assert!(!h.observe(&p, 30, true));
        assert!(h.observe(&p, 130, true), "retry after cooldown");
    }
}
