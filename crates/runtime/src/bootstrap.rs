//! Bootstrap: bringing up the core objects (paper §4.2.1).
//!
//! "The creation and activation of this set of objects must be carried out
//! by mechanisms different from those used for normal Legion objects ...
//! The core objects, including the core Abstract classes (LegionObject,
//! LegionClass, etc.), Host Objects, and Magistrates, are intended to be
//! started from the command line or shell script in the host operating
//! system. ... The Abstract class objects are started exactly once — when
//! the Legion system comes alive."
//!
//! [`CoreSystem`] performs that once-only bring-up on a kernel: the
//! LegionClass endpoint, class endpoints for the core Abstract classes,
//! and helpers for attaching externally started Hosts and Magistrates.

use crate::class_endpoint::{ClassConfig, ClassEndpoint, LegionClassEndpoint};
use crate::host::{HostConfig, HostObjectEndpoint, ObjectFactory};
use crate::magistrate::{MagistrateConfig, MagistrateEndpoint};
use legion_core::address::{ObjectAddress, ObjectAddressElement};
use legion_core::binding::Binding;
use legion_core::class::{class_mandatory_interface, ClassKind, ClassObject};
use legion_core::loid::Loid;
use legion_core::object::object_mandatory_interface;
use legion_core::wellknown::{
    LEGION_BINDING_AGENT, LEGION_CLASS, LEGION_HOST, LEGION_MAGISTRATE, LEGION_OBJECT,
};
use legion_net::sim::{EndpointId, SimKernel};
use legion_net::topology::Location;

/// Handles to the core endpoints after bootstrap.
pub struct CoreSystem {
    /// The LegionClass metaclass endpoint.
    pub legion_class: EndpointId,
    /// The LegionObject class endpoint.
    pub legion_object: EndpointId,
    /// The LegionHost class endpoint (Host Objects announce here).
    pub legion_host: EndpointId,
    /// The LegionMagistrate class endpoint.
    pub legion_magistrate: EndpointId,
    /// The LegionBindingAgent class endpoint.
    pub legion_binding_agent: EndpointId,
}

impl CoreSystem {
    /// Start the core Abstract class objects exactly once, at `location`.
    pub fn bootstrap(kernel: &mut SimKernel, location: Location) -> CoreSystem {
        // The metaclass endpoint is created first so everyone can know its
        // address; class bindings for the core classes are registered as
        // they come up.
        let legion_class_id = kernel.endpoint_count() as u64;
        let legion_class_element = ObjectAddressElement::sim(legion_class_id);

        let cfg = ClassConfig {
            legion_class: legion_class_element,
            magistrates: Vec::new(),
            binding_agent: None,
            binding_ttl_ns: None,
            admission: None,
        };

        // Build the Abstract core classes with their paper interfaces.
        let mk = |loid: Loid, name: &str, with_class_mandatory: bool| {
            let mut c = ClassObject::new(loid, name, ClassKind::ABSTRACT);
            c.interface = object_mandatory_interface(LEGION_OBJECT);
            if with_class_mandatory {
                c.interface
                    .merge_from_with_owner(&class_mandatory_interface(LEGION_CLASS), loid)
                    .expect("core interfaces cannot conflict");
            }
            c.superclass = if loid == LEGION_OBJECT {
                None
            } else if loid == LEGION_CLASS {
                Some(LEGION_OBJECT)
            } else {
                Some(LEGION_CLASS)
            };
            ClassEndpoint::new(c, cfg.clone())
        };

        let legion_object_ep = mk(LEGION_OBJECT, "LegionObject", false);
        let legion_host_ep = mk(LEGION_HOST, "LegionHost", true);
        let legion_magistrate_ep = mk(LEGION_MAGISTRATE, "LegionMagistrate", true);
        let legion_binding_agent_ep = mk(LEGION_BINDING_AGENT, "LegionBindingAgent", true);

        // Attach: LegionClass first (its id must match the element above).
        let legion_class = kernel.add_endpoint(
            Box::new(LegionClassEndpoint::new()),
            location,
            "LegionClass",
        );
        assert_eq!(
            legion_class.0, legion_class_id,
            "metaclass id must be stable"
        );
        let legion_object =
            kernel.add_endpoint(Box::new(legion_object_ep), location, "class:LegionObject");
        let legion_host =
            kernel.add_endpoint(Box::new(legion_host_ep), location, "class:LegionHost");
        let legion_magistrate = kernel.add_endpoint(
            Box::new(legion_magistrate_ep),
            location,
            "class:LegionMagistrate",
        );
        let legion_binding_agent = kernel.add_endpoint(
            Box::new(legion_binding_agent_ep),
            location,
            "class:LegionBindingAgent",
        );

        // Register the core class bindings with the metaclass: for these,
        // the responsibility chain "can end ... when the responsible class
        // is LegionClass itself".
        let live = kernel
            .endpoint_mut::<LegionClassEndpoint>(legion_class)
            .expect("just added");
        for (loid, ep) in [
            (LEGION_OBJECT, legion_object),
            (LEGION_HOST, legion_host),
            (LEGION_MAGISTRATE, legion_magistrate),
            (LEGION_BINDING_AGENT, legion_binding_agent),
            (LEGION_CLASS, legion_class),
        ] {
            live.register_class_binding(Binding::forever(
                loid,
                ObjectAddress::single(ep.element()),
            ));
        }

        CoreSystem {
            legion_class,
            legion_object,
            legion_host,
            legion_magistrate,
            legion_binding_agent,
        }
    }

    /// The metaclass's address element (bootstrap knowledge for agents and
    /// classes).
    pub fn legion_class_element(&self) -> ObjectAddressElement {
        self.legion_class.element()
    }

    /// Start a Host Object "from outside Legion": it announces itself to
    /// LegionHost on start (§4.2.1).
    pub fn start_host(
        &self,
        kernel: &mut SimKernel,
        loid: Loid,
        location: Location,
        capacity: u32,
        magistrate: Option<Loid>,
        factory: Option<ObjectFactory>,
    ) -> EndpointId {
        let cfg = HostConfig {
            loid,
            capacity,
            magistrate,
            class_addr: Some(self.legion_host.element()),
        };
        let host = match factory {
            Some(f) => HostObjectEndpoint::with_factory(cfg, f),
            None => HostObjectEndpoint::new(cfg),
        };
        kernel.add_endpoint(Box::new(host), location, format!("host:{loid}"))
    }

    /// Start a Magistrate "from outside Legion": it announces itself to
    /// LegionMagistrate on start.
    pub fn start_magistrate(
        &self,
        kernel: &mut SimKernel,
        loid: Loid,
        location: Location,
        jurisdiction: u32,
        disks: usize,
        disk_capacity: u64,
    ) -> EndpointId {
        let cfg = MagistrateConfig {
            loid,
            jurisdiction,
            class_addr: Some(self.legion_magistrate.element()),
            disks,
            disk_capacity,
        };
        kernel.add_endpoint(
            Box::new(MagistrateEndpoint::new(cfg)),
            location,
            format!("magistrate:{loid}"),
        )
    }
}
