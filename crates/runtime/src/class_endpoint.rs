//! Class objects as live endpoints (paper §3.7, §4.1, §4.2).
//!
//! A class object is "responsible for creating and locating its instances
//! and subclasses". The [`ClassEndpoint`] owns the per-class state
//! ([`ClassObject`]: interface, LOID allocator, logical table) and serves
//! the class-mandatory member functions over messages:
//!
//! * `Create()` — pick a Magistrate (a scheduling decision "left up to the
//!   class"), hand it an activation spec, record the new row;
//! * `GetBinding(loid)` — answer from the logical table's Object Address
//!   column, or consult a Magistrate from the row's Current Magistrate
//!   List via `Activate()` — "referring to the LOID of an Inert object can
//!   cause the object to be activated" (§4.1.2);
//! * `Derive(name[, flags])` — obtain a Class Identifier from LegionClass,
//!   then spawn the new class object with this class's interface;
//! * `InheritFrom(base)` — resolve the base (through the class's own
//!   Binding Agent — classes are objects too), fetch its interface as IDL
//!   text, and merge it;
//! * table-maintenance notifications (`SetAddress`, `Add/RemoveMagistrate`,
//!   `Announce`).
//!
//! [`LegionClassEndpoint`] is the metaclass: the Class Identifier
//! authority and the keeper of responsibility pairs (§4.1.3).

use crate::protocol::{class as class_proto, magistrate as mag_proto, ActivationSpec};
use legion_core::address::{ObjectAddress, ObjectAddressElement};
use legion_core::binding::Binding;
use legion_core::class::{ClassKind, ClassObject, TableEntry};
use legion_core::env::InvocationEnv;
use legion_core::idl;
use legion_core::loid::Loid;
use legion_core::metaclass::LegionClassAuthority;
use legion_core::value::LegionValue;
use legion_naming::protocol::{
    self as naming_proto, BindingArg, FIND_RESPONSIBLE, GET_BINDING, ISSUE_CLASS_ID,
};
use legion_naming::resolver::{ClientResolver, Lookup};
use legion_net::message::{Body, CallId, Message};
use legion_net::sim::{Ctx, Endpoint};
use std::collections::HashMap;

/// Shared configuration for class endpoints (inherited by subclasses
/// spawned through `Derive`).
#[derive(Clone)]
pub struct ClassConfig {
    /// Address of the LegionClass endpoint.
    pub legion_class: ObjectAddressElement,
    /// Candidate Magistrates available for object placement.
    pub magistrates: Vec<(Loid, ObjectAddressElement)>,
    /// The class's Binding Agent, for resolving base classes.
    pub binding_agent: Option<ObjectAddressElement>,
    /// Expiry stamped on served bindings (§3.5's "time that the binding
    /// becomes invalid"). `None` serves never-expiring bindings; a TTL
    /// bounds downstream cache staleness at the price of re-resolution.
    pub binding_ttl_ns: Option<u64>,
}

enum Pending {
    /// Magistrate is creating an instance.
    Create { requester: Box<Message> },
    /// Magistrate is activating `target` for a GetBinding.
    ActivateForBinding {
        target: Loid,
        /// The magistrate consulted — dropped from the row's list if it
        /// disclaims the object, so the class heals its own stale state.
        magistrate: Loid,
    },
    /// LegionClass is issuing a Class Identifier for a Derive.
    IssueId {
        requester: Box<Message>,
        name: String,
        kind: ClassKind,
    },
    /// The base class is returning its interface for an InheritFrom.
    BaseInterface { requester: Box<Message>, base: Loid },
    /// A magistrate is deleting a child object.
    DeleteChild {
        requester: Box<Message>,
        target: Loid,
    },
}

/// A live class object.
pub struct ClassEndpoint {
    class: ClassObject,
    cfg: ClassConfig,
    resolver: Option<ClientResolver>,
    pending: HashMap<CallId, Pending>,
    /// GetBinding requests combined while a Magistrate activates a target.
    binding_waiters: HashMap<Loid, Vec<Message>>,
    /// InheritFrom requests waiting on base resolution.
    inherit_waiters: HashMap<Loid, Vec<Message>>,
    /// Round-robin cursor over candidate magistrates.
    next_magistrate: usize,
}

impl ClassEndpoint {
    /// Wrap a class object.
    pub fn new(class: ClassObject, cfg: ClassConfig) -> Self {
        let resolver = cfg
            .binding_agent
            .map(|agent| ClientResolver::new(class.loid, agent, 128));
        ClassEndpoint {
            class,
            cfg,
            resolver,
            pending: HashMap::new(),
            binding_waiters: HashMap::new(),
            inherit_waiters: HashMap::new(),
            next_magistrate: 0,
        }
    }

    /// Read access to the wrapped class object (tests, experiments).
    pub fn class(&self) -> &ClassObject {
        &self.class
    }

    /// Mutable access (bootstrap wiring).
    pub fn class_mut(&mut self) -> &mut ClassObject {
        &mut self.class
    }

    fn env(&self) -> InvocationEnv {
        InvocationEnv::solo(self.class.loid)
    }

    fn pick_magistrate(&mut self) -> Option<(Loid, ObjectAddressElement)> {
        if self.cfg.magistrates.is_empty() {
            return None;
        }
        let pick = self.cfg.magistrates[self.next_magistrate % self.cfg.magistrates.len()];
        self.next_magistrate += 1;
        Some(pick)
    }

    fn magistrate_element(&self, loid: &Loid) -> Option<ObjectAddressElement> {
        self.cfg
            .magistrates
            .iter()
            .find(|(l, _)| l == loid)
            .map(|(_, e)| *e)
    }

    // ----- handlers -------------------------------------------------------

    fn handle_create(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let state = match msg.args() {
            [] => Vec::new(),
            [LegionValue::Bytes(b)] => b.clone(),
            _ => {
                ctx.reply(&msg, Err("Create([state]) expected".into()));
                return;
            }
        };
        let loid = match self.class.create_instance() {
            Ok(l) => l,
            Err(e) => {
                ctx.count("class.create_refused");
                ctx.reply(&msg, Err(e.to_string()));
                return;
            }
        };
        let Some((mag_loid, mag_element)) = self.pick_magistrate() else {
            self.class.table.remove(&loid);
            ctx.reply(&msg, Err("class has no candidate magistrates".into()));
            return;
        };
        self.class.table.add_magistrate(&loid, mag_loid);
        let spec = ActivationSpec {
            loid,
            class: self.class.loid,
            state,
            class_addr: Some(ctx.self_element()),
            magistrate_addr: Some(mag_element),
        };
        let env = self.env();
        let me = self.class.loid;
        match ctx.call(
            mag_element,
            mag_loid,
            mag_proto::CREATE_OBJECT,
            spec.to_args(),
            env,
            Some(me),
        ) {
            Some(call_id) => {
                ctx.count("class.creates");
                self.pending.insert(
                    call_id,
                    Pending::Create {
                        requester: Box::new(msg),
                    },
                );
            }
            None => {
                self.class.table.remove(&loid);
                ctx.reply(&msg, Err(format!("magistrate {mag_loid} unreachable")));
            }
        }
    }

    fn handle_get_binding(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let (target, refresh) = match naming_proto::parse_binding_arg(&msg) {
            Some(BindingArg::Loid(l)) => (l, false),
            Some(BindingArg::Binding(b)) => (b.loid, true),
            None => {
                ctx.reply(&msg, Err("GetBinding: expected loid or binding".into()));
                return;
            }
        };
        ctx.count("class.get_binding");
        let Some(entry) = self.class.table.get(&target) else {
            ctx.reply(
                &msg,
                Err(format!("{}: unknown object {target}", self.class.loid)),
            );
            return;
        };
        if !refresh {
            if let Some(addr) = &entry.address {
                let b = self.stamp(ctx, Binding::forever(target, addr.clone()));
                ctx.reply(&msg, Ok(LegionValue::from(b)));
                return;
            }
        }
        // The address column is NIL (or suspect): consult a Magistrate
        // from the Current Magistrate List via Activate (§4.1.2).
        let Some(mag_loid) = entry.current_magistrates.first().copied() else {
            ctx.reply(
                &msg,
                Err(format!("{target} is Inert and has no magistrate on record")),
            );
            return;
        };
        let Some(_mag_element) = self.magistrate_element(&mag_loid) else {
            ctx.reply(
                &msg,
                Err(format!("magistrate {mag_loid} has no known address")),
            );
            return;
        };
        let first = !self.binding_waiters.contains_key(&target);
        self.binding_waiters.entry(target).or_default().push(msg);
        if !first {
            return;
        }
        ctx.count("class.activates_for_binding");
        self.consult_magistrate(ctx, target, mag_loid);
    }

    /// Ask `magistrate` to activate `target` for a pending GetBinding.
    fn consult_magistrate(&mut self, ctx: &mut Ctx<'_>, target: Loid, magistrate: Loid) {
        let Some(mag_element) = self.magistrate_element(&magistrate) else {
            self.finish_binding(
                ctx,
                target,
                Err(format!("magistrate {magistrate} has no known address")),
            );
            return;
        };
        let env = self.env();
        let me = self.class.loid;
        match ctx.call(
            mag_element,
            magistrate,
            mag_proto::ACTIVATE,
            vec![LegionValue::Loid(target)],
            env,
            Some(me),
        ) {
            Some(call_id) => {
                self.pending
                    .insert(call_id, Pending::ActivateForBinding { target, magistrate });
            }
            None => {
                self.finish_binding(
                    ctx,
                    target,
                    Err(format!("magistrate {magistrate} unreachable")),
                );
            }
        }
    }

    /// Apply the configured TTL to an outgoing binding (§3.5: bindings
    /// carry "the time that the binding becomes invalid").
    fn stamp(&self, ctx: &Ctx<'_>, mut b: Binding) -> Binding {
        if let Some(ttl) = self.cfg.binding_ttl_ns {
            b.expiry = legion_core::time::Expiry::after(ctx.now(), ttl);
        }
        b
    }

    fn finish_binding(&mut self, ctx: &mut Ctx<'_>, target: Loid, result: Result<Binding, String>) {
        if let Ok(b) = &result {
            self.class
                .table
                .set_address(&target, Some(b.address.clone()));
        }
        let result = result.map(|b| self.stamp(ctx, b));
        for msg in self.binding_waiters.remove(&target).unwrap_or_default() {
            ctx.reply(&msg, result.clone().map(LegionValue::from));
        }
    }

    fn handle_derive(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let (name, kind) = match msg.args() {
            [LegionValue::Str(n)] => (n.clone(), ClassKind::NORMAL),
            [LegionValue::Str(n), LegionValue::Str(flags)] => {
                let kind = ClassKind {
                    is_abstract: flags.contains("abstract"),
                    is_private: flags.contains("private"),
                    is_fixed: flags.contains("fixed"),
                };
                (n.clone(), kind)
            }
            _ => {
                ctx.reply(&msg, Err("Derive(name[, flags]) expected".into()));
                return;
            }
        };
        if self.class.kind.is_private {
            ctx.count("class.derive_refused");
            ctx.reply(
                &msg,
                Err(format!(
                    "class {} is Private: Derive() is empty",
                    self.class.loid
                )),
            );
            return;
        }
        let env = self.env();
        let me = self.class.loid;
        let lc = self.cfg.legion_class;
        match ctx.call(
            lc,
            legion_core::wellknown::LEGION_CLASS,
            ISSUE_CLASS_ID,
            vec![LegionValue::Loid(me)],
            env,
            Some(me),
        ) {
            Some(call_id) => {
                ctx.count("class.derives");
                self.pending.insert(
                    call_id,
                    Pending::IssueId {
                        requester: Box::new(msg),
                        name,
                        kind,
                    },
                );
            }
            None => {
                ctx.reply(&msg, Err("LegionClass unreachable".into()));
            }
        }
    }

    fn spawn_subclass(
        &mut self,
        ctx: &mut Ctx<'_>,
        class_id: u64,
        name: String,
        kind: ClassKind,
    ) -> Binding {
        let loid = Loid::class_object(class_id);
        let mut sub = ClassObject::new(loid, name.clone(), kind);
        sub.superclass = Some(self.class.loid);
        // "A class that is derived from another class inherits the
        // superclass's member functions" — copy the interface wholesale.
        sub.interface = self.class.interface.clone();
        sub.default_scheduling_agent = self.class.default_scheduling_agent;
        let endpoint = ClassEndpoint::new(sub, self.cfg.clone());
        let loc = ctx.location();
        let ep = ctx.spawn(Box::new(endpoint), loc, format!("class:{name}"));
        // Record responsibility: our table row + its address.
        self.class
            .record_subclass(loid)
            .expect("Private checked earlier");
        let address = ObjectAddress::single(ep.element());
        self.class.table.set_address(&loid, Some(address.clone()));
        Binding::forever(loid, address)
    }

    fn handle_inherit_from(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let Some(base) = naming_proto::parse_loid_arg(&msg) else {
            ctx.reply(&msg, Err("InheritFrom(base) expected".into()));
            return;
        };
        if self.class.kind.is_fixed {
            ctx.count("class.inherit_refused");
            ctx.reply(
                &msg,
                Err(format!(
                    "class {} is Fixed: InheritFrom() is empty",
                    self.class.loid
                )),
            );
            return;
        }
        if base == self.class.loid {
            ctx.reply(&msg, Err("a class cannot inherit from itself".into()));
            return;
        }
        // Resolve the base class, preferring our own table (it may be our
        // subclass), then the Binding Agent.
        let known = self
            .class
            .table
            .get(&base)
            .and_then(|e| e.address.clone())
            .map(|address| Binding::forever(base, address));
        match known {
            Some(b) => self.fetch_base_interface(ctx, &b, msg),
            None => match &mut self.resolver {
                Some(resolver) => match resolver.lookup(ctx, base) {
                    Lookup::Cached(b) => self.fetch_base_interface(ctx, &b, msg),
                    Lookup::Requested(_) => {
                        self.inherit_waiters.entry(base).or_default().push(msg);
                    }
                    Lookup::AgentUnreachable => {
                        ctx.reply(&msg, Err("binding agent unreachable".into()));
                    }
                },
                None => {
                    ctx.reply(
                        &msg,
                        Err(format!(
                            "cannot locate base {base}: no binding agent configured"
                        )),
                    );
                }
            },
        }
    }

    fn fetch_base_interface(&mut self, ctx: &mut Ctx<'_>, base_binding: &Binding, msg: Message) {
        let Some(primary) = base_binding.address.primary().copied() else {
            ctx.reply(&msg, Err("base class has an empty address".into()));
            return;
        };
        let env = self.env();
        let me = self.class.loid;
        match ctx.call(
            primary,
            base_binding.loid,
            legion_core::object::methods::GET_INTERFACE,
            vec![],
            env,
            Some(me),
        ) {
            Some(call_id) => {
                self.pending.insert(
                    call_id,
                    Pending::BaseInterface {
                        requester: Box::new(msg),
                        base: base_binding.loid,
                    },
                );
            }
            None => {
                ctx.reply(
                    &msg,
                    Err(format!("base class {} unreachable", base_binding.loid)),
                );
            }
        }
    }

    fn handle_delete(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let Some(target) = naming_proto::parse_loid_arg(&msg) else {
            ctx.reply(&msg, Err("Delete(target) expected".into()));
            return;
        };
        let Some(entry) = self.class.table.get(&target) else {
            ctx.reply(
                &msg,
                Err(format!("{}: unknown object {target}", self.class.loid)),
            );
            return;
        };
        match entry.current_magistrates.first().copied() {
            Some(mag_loid) => {
                let Some(mag_element) = self.magistrate_element(&mag_loid) else {
                    ctx.reply(
                        &msg,
                        Err(format!("magistrate {mag_loid} has no known address")),
                    );
                    return;
                };
                let env = self.env();
                let me = self.class.loid;
                match ctx.call(
                    mag_element,
                    mag_loid,
                    mag_proto::DELETE,
                    vec![LegionValue::Loid(target)],
                    env,
                    Some(me),
                ) {
                    Some(call_id) => {
                        self.pending.insert(
                            call_id,
                            Pending::DeleteChild {
                                requester: Box::new(msg),
                                target,
                            },
                        );
                    }
                    None => {
                        // Magistrate gone; drop the row anyway.
                        let _ = self.class.delete_child(&target);
                        ctx.reply(&msg, Ok(LegionValue::Void));
                    }
                }
            }
            None => {
                let _ = self.class.delete_child(&target);
                ctx.reply(&msg, Ok(LegionValue::Void));
            }
        }
    }

    fn handle_table_notification(&mut self, ctx: &mut Ctx<'_>, msg: &Message, method: &str) {
        let ok = match (method, msg.args()) {
            (class_proto::SET_ADDRESS, [LegionValue::Loid(l), LegionValue::Address(a)]) => {
                self.class.table.set_address(l, Some(a.clone()))
            }
            (class_proto::SET_ADDRESS, [LegionValue::Loid(l), LegionValue::Void]) => {
                self.class.table.set_address(l, None)
            }
            (class_proto::ADD_MAGISTRATE, [LegionValue::Loid(l), LegionValue::Loid(m)]) => {
                self.class.table.add_magistrate(l, *m)
            }
            (class_proto::REMOVE_MAGISTRATE, [LegionValue::Loid(l), LegionValue::Loid(m)]) => {
                self.class.table.remove_magistrate(l, *m)
            }
            _ => {
                ctx.reply(msg, Err(format!("{method}: bad arguments")));
                return;
            }
        };
        ctx.reply(
            msg,
            if ok {
                Ok(LegionValue::Void)
            } else {
                Err(format!("{method}: no such row"))
            },
        );
    }

    /// §4.2.1 announcement from an externally started instance (Host
    /// Object or Magistrate): record (or refresh) its row with its address.
    fn handle_announce(&mut self, ctx: &mut Ctx<'_>, msg: &Message) {
        let (loid, address) = match msg.args() {
            [LegionValue::Loid(l), LegionValue::Address(a)] => (*l, a.clone()),
            _ => {
                ctx.reply(msg, Err("Announce(loid, address) expected".into()));
                return;
            }
        };
        ctx.count("class.announcements");
        if self.class.table.get(&loid).is_none() {
            self.class.table.insert(loid, TableEntry::new(false));
        }
        self.class.table.set_address(&loid, Some(address));
        ctx.reply(msg, Ok(LegionValue::Void));
    }

    fn handle_reply(&mut self, ctx: &mut Ctx<'_>, msg: &Message) {
        // Binding-agent replies feed the resolver first.
        if let Some((base, result)) = self.resolver.as_mut().and_then(|r| r.handle_reply(msg)) {
            let waiters = self.inherit_waiters.remove(&base).unwrap_or_default();
            match result {
                Ok(binding) => {
                    for m in waiters {
                        self.fetch_base_interface(ctx, &binding, m);
                    }
                }
                Err(e) => {
                    for m in waiters {
                        ctx.reply(&m, Err(format!("cannot locate base {base}: {e}")));
                    }
                }
            }
            return;
        }
        let Body::Reply {
            in_reply_to,
            result,
        } = &msg.body
        else {
            return;
        };
        let Some(p) = self.pending.remove(in_reply_to) else {
            return;
        };
        match p {
            Pending::Create { requester } => match naming_proto::binding_from_result(result) {
                Some(b) => {
                    self.class
                        .table
                        .set_address(&b.loid, Some(b.address.clone()));
                    let b = self.stamp(ctx, b);
                    ctx.reply(&requester, Ok(LegionValue::from(b)));
                }
                None => {
                    let e = match result {
                        Err(e) => e.clone(),
                        Ok(v) => format!("unexpected magistrate reply {v}"),
                    };
                    ctx.reply(&requester, Err(format!("Create failed: {e}")));
                }
            },
            Pending::ActivateForBinding { target, magistrate } => {
                match naming_proto::binding_from_result(result) {
                    Some(b) => self.finish_binding(ctx, target, Ok(b)),
                    None => {
                        let e = match result {
                            Err(e) => e.clone(),
                            Ok(v) => format!("unexpected magistrate reply {v}"),
                        };
                        // Self-healing (§3.7 list semantics): a magistrate
                        // that disclaims the object leaves the row's
                        // Current Magistrate List; try the next one.
                        if e.contains("not managed") {
                            ctx.count("class.magistrate_disclaimed");
                            self.class.table.remove_magistrate(&target, magistrate);
                            let next = self
                                .class
                                .table
                                .get(&target)
                                .and_then(|row| row.current_magistrates.first().copied());
                            if let Some(next_mag) = next {
                                self.consult_magistrate(ctx, target, next_mag);
                                return;
                            }
                        }
                        self.finish_binding(ctx, target, Err(e));
                    }
                }
            }
            Pending::IssueId {
                requester,
                name,
                kind,
            } => match result {
                Ok(LegionValue::Uint(class_id)) => {
                    let b = self.spawn_subclass(ctx, *class_id, name, kind);
                    ctx.reply(&requester, Ok(LegionValue::from(b)));
                }
                Ok(v) => {
                    ctx.reply(&requester, Err(format!("unexpected LegionClass reply {v}")));
                }
                Err(e) => {
                    ctx.reply(&requester, Err(format!("Derive failed: {e}")));
                }
            },
            Pending::BaseInterface { requester, base } => match result {
                Ok(LegionValue::Str(text)) => match idl::parse_one(text) {
                    Ok(parsed) => {
                        let base_if = parsed.into_interface(base);
                        match self.class.inherit_from(base, &base_if) {
                            Ok(()) => {
                                ctx.count("class.inherits");
                                ctx.reply(&requester, Ok(LegionValue::Void));
                            }
                            Err(e) => {
                                ctx.reply(&requester, Err(e.to_string()));
                            }
                        }
                    }
                    Err(e) => {
                        ctx.reply(&requester, Err(format!("base interface unparseable: {e}")));
                    }
                },
                Ok(v) => {
                    ctx.reply(
                        &requester,
                        Err(format!("unexpected GetInterface reply {v}")),
                    );
                }
                Err(e) => {
                    ctx.reply(&requester, Err(format!("GetInterface failed: {e}")));
                }
            },
            Pending::DeleteChild { requester, target } => match result {
                Ok(_) => {
                    let _ = self.class.delete_child(&target);
                    ctx.count("class.deletes");
                    ctx.reply(&requester, Ok(LegionValue::Void));
                }
                Err(e) => {
                    ctx.reply(&requester, Err(format!("Delete failed: {e}")));
                }
            },
        }
    }
}

impl Endpoint for ClassEndpoint {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        if msg.is_reply() {
            self.handle_reply(ctx, &msg);
            return;
        }
        let Some(method) = msg.method().map(str::to_owned) else {
            return;
        };
        match method.as_str() {
            class_proto::CREATE => self.handle_create(ctx, msg),
            GET_BINDING => self.handle_get_binding(ctx, msg),
            class_proto::DERIVE => self.handle_derive(ctx, msg),
            class_proto::INHERIT_FROM => self.handle_inherit_from(ctx, msg),
            class_proto::DELETE => self.handle_delete(ctx, msg),
            class_proto::SET_ADDRESS
            | class_proto::ADD_MAGISTRATE
            | class_proto::REMOVE_MAGISTRATE => self.handle_table_notification(ctx, &msg, &method),
            class_proto::ANNOUNCE => self.handle_announce(ctx, &msg),
            legion_core::object::methods::GET_INTERFACE => {
                // Class names may contain characters illegal in IDL
                // identifiers (clones are named "X#clone"); sanitize.
                let safe: String = self
                    .class
                    .name
                    .chars()
                    .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                    .collect();
                let text = idl::render(&safe, &self.class.interface);
                ctx.reply(&msg, Ok(LegionValue::Str(text)));
            }
            legion_core::object::methods::PING => {
                ctx.reply(&msg, Ok(LegionValue::Uint(self.class.table.len() as u64)));
            }
            legion_core::object::methods::IAM => {
                ctx.reply(&msg, Ok(LegionValue::Loid(self.class.loid)));
            }
            other => {
                ctx.reply(
                    &msg,
                    Err(format!("class {}: no method {other}", self.class.loid)),
                );
            }
        }
    }
}

/// The LegionClass metaclass endpoint: Class Identifier authority and
/// responsibility-pair keeper (§3.2, §4.1.3).
pub struct LegionClassEndpoint {
    authority: LegionClassAuthority,
    class_bindings: HashMap<Loid, Binding>,
}

impl Default for LegionClassEndpoint {
    fn default() -> Self {
        Self::new()
    }
}

impl LegionClassEndpoint {
    /// A fresh metaclass endpoint.
    pub fn new() -> Self {
        LegionClassEndpoint {
            authority: LegionClassAuthority::new(),
            class_bindings: HashMap::new(),
        }
    }

    /// Register a class binding LegionClass maintains directly (core
    /// classes at bootstrap).
    pub fn register_class_binding(&mut self, b: Binding) {
        self.class_bindings.insert(b.loid, b);
    }

    /// Adopt an externally started class (§4.2.1): LegionClass becomes the
    /// end of its responsibility chain, maintains its binding directly,
    /// and reserves its Class Identifier against future `IssueClassId`
    /// collisions.
    pub fn adopt_class(&mut self, binding: Binding) {
        let loid = binding.loid;
        self.authority
            .adopt(loid, legion_core::wellknown::LEGION_CLASS)
            .expect("adopting a class object");
        self.class_bindings.insert(loid, binding);
    }

    /// Authority access (experiment counters).
    pub fn authority(&self) -> &LegionClassAuthority {
        &self.authority
    }

    /// Mutable authority access.
    pub fn authority_mut(&mut self) -> &mut LegionClassAuthority {
        &mut self.authority
    }
}

impl Endpoint for LegionClassEndpoint {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        if msg.is_reply() {
            return;
        }
        let Some(method) = msg.method() else {
            return;
        };
        let result: Result<LegionValue, String> = match method {
            ISSUE_CLASS_ID => match naming_proto::parse_loid_arg(&msg) {
                Some(creator) => {
                    ctx.count("legion_class.issue");
                    self.authority
                        .issue_class_id(creator)
                        .map(|(id, _)| LegionValue::Uint(id.0))
                        .map_err(|e| e.to_string())
                }
                None => Err("IssueClassId(creator) expected".into()),
            },
            FIND_RESPONSIBLE => match naming_proto::parse_loid_arg(&msg) {
                Some(target) => {
                    ctx.count("legion_class.find");
                    self.authority
                        .find_responsible(&target)
                        .map(LegionValue::Loid)
                        .map_err(|e| e.to_string())
                }
                None => Err("FindResponsible(loid) expected".into()),
            },
            GET_BINDING => {
                ctx.count("legion_class.get_binding");
                match naming_proto::parse_binding_arg(&msg) {
                    Some(arg) => match self.class_bindings.get(&arg.loid()) {
                        Some(b) => Ok(LegionValue::from(b.clone())),
                        None => Err(format!("LegionClass has no binding for {}", arg.loid())),
                    },
                    None => Err("GetBinding: bad argument".into()),
                }
            }
            other => Err(format!("LegionClass: no method {other}")),
        };
        ctx.reply(&msg, result);
    }
}
